//! Serving study: continuous batching of mixed-length traffic.
//!
//! The decode study shows what one request costs per token; real serving
//! runs a *scheduler* — requests of mixed prompt/output lengths admitted
//! into a fixed number of decode slots, one token per active request per
//! step, slots refilled as requests retire. This example runs the full
//! study (mix shapes x occupancy regimes, photonic vs digital, both
//! scaling corners), then walks one schedule step by step to show the
//! occupancy dynamics and why the trace is affordable: steps dedupe by
//! bucketed active-set composition, so hundreds of steps cost a few
//! dozen mapping searches.
//!
//! Run with: `cargo run --release --example serving_study`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::serving::serving_sweep;
use lumen::core::{EvalSession, NetworkOptions};
use lumen::workload::{BatchSchedule, RequestMix, ServingModel};

fn main() {
    // The headline study at both corners: the decode-regime utilization
    // gap persists under continuous batching, and occupancy is the lever
    // that decides how much of the uniform-batch energy photonics keep.
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        println!(
            "{}",
            experiments::serving_study(scaling).expect("study evaluates")
        );
    }

    // One schedule under the microscope: a bimodal mix through 4 slots.
    // Short requests retire early, long ones keep their slots, and the
    // scheduler backfills from the queue — watch occupancy and energy
    // per token move step by step.
    let mix = RequestMix::bimodal(7, 10, (64, 12), (512, 40), 30);
    let schedule = BatchSchedule::build(&mix, 4);
    let session = EvalSession::new(AlbireoConfig::new(ScalingProfile::Aggressive).build_system());
    let result = serving_sweep(
        &session,
        &ServingModel::gpt2_small(),
        &schedule,
        experiments::SERVING_KV_BUCKET,
        &NetworkOptions::baseline(),
    )
    .expect("schedule evaluates");

    println!(
        "== {} through 4 slots, albireo-aggressive: {} steps, {} tokens ==",
        mix.name(),
        schedule.total_steps(),
        schedule.total_tokens()
    );
    for point in result.points.iter().step_by(8) {
        println!(
            "  step {:>3}: occupancy {}/4, {:.1} mJ, {:5.2} mJ/token",
            point.step,
            point.occupancy,
            point.energy.picojoules() / 1e9,
            point.energy.picojoules() / 1e9 / point.occupancy as f64,
        );
    }
    let stats = session.cache_stats();
    println!(
        "trace cost: {} mapping searches for {} layer evaluations \
         ({:.1}% served from cache — steps share bucketed compositions)",
        stats.misses,
        stats.hits + stats.misses,
        100.0 * stats.hit_rate(),
    );
}
