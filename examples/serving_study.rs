//! Serving study: continuous batching of mixed-length traffic.
//!
//! The decode study shows what one request costs per token; real serving
//! runs a *scheduler* — requests of mixed prompt/output lengths admitted
//! into a fixed number of decode slots, one token per active request per
//! step, slots refilled as requests retire. This example runs the full
//! study (mix shapes x occupancy regimes, photonic vs digital, both
//! scaling corners), then walks one schedule step by step to show the
//! occupancy dynamics and why the trace is affordable: steps dedupe by
//! bucketed active-set composition, so hundreds of steps cost a few
//! dozen mapping searches. Finally it runs one *open-loop* trace —
//! Poisson arrivals, prefill charged on admission — and prints the
//! TTFT/TBT percentiles the closed-loop study cannot see.
//!
//! Run with: `cargo run --release --example serving_study`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::serving::{serving_sweep, serving_trace};
use lumen::core::{EvalSession, NetworkOptions};
use lumen::workload::serving::{ArrivalProcess, PrefillMode, ServingConfig, ServingSchedule};
use lumen::workload::{BatchSchedule, RequestMix, ServingModel};

fn main() {
    // The headline study at both corners: the decode-regime utilization
    // gap persists under continuous batching, and occupancy is the lever
    // that decides how much of the uniform-batch energy photonics keep.
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        println!(
            "{}",
            experiments::serving_study(scaling).expect("study evaluates")
        );
    }

    // One schedule under the microscope: a bimodal mix through 4 slots.
    // Short requests retire early, long ones keep their slots, and the
    // scheduler backfills from the queue — watch occupancy and energy
    // per token move step by step.
    let mix = RequestMix::bimodal(7, 10, (64, 12), (512, 40), 30);
    let schedule = BatchSchedule::build(&mix, 4);
    let session = EvalSession::new(AlbireoConfig::new(ScalingProfile::Aggressive).build_system());
    let result = serving_sweep(
        &session,
        &ServingModel::gpt2_small(),
        &schedule,
        experiments::SERVING_KV_BUCKET,
        &NetworkOptions::baseline(),
    )
    .expect("schedule evaluates");

    println!(
        "== {} through 4 slots, albireo-aggressive: {} steps, {} tokens ==",
        mix.name(),
        schedule.total_steps(),
        schedule.total_tokens()
    );
    for point in result.points.iter().step_by(8) {
        println!(
            "  step {:>3}: occupancy {}/4, {:.1} mJ, {:5.2} mJ/token",
            point.step,
            point.occupancy,
            point.energy.picojoules() / 1e9,
            point.energy.picojoules() / 1e9 / point.occupancy as f64,
        );
    }
    let stats = session.cache_stats();
    println!(
        "trace cost: {} mapping searches for {} layer evaluations \
         ({:.1}% served from cache — steps share bucketed compositions)",
        stats.misses,
        stats.hits + stats.misses,
        100.0 * stats.hit_rate(),
    );

    // The same mix open-loop: Poisson arrivals drip requests in instead
    // of queueing them all at step zero, and each admission pays for its
    // prompt through the dense prefill path before the first token.
    // With per-request arrival times the latency distribution exists:
    // time-to-first-token (arrival -> first decode step done) and
    // time-between-tokens (gaps between completions).
    let config = ServingConfig::new(4)
        .with_arrival(ArrivalProcess::poisson(0.1, 0xFEED_F00D))
        .with_prefill(PrefillMode::OnAdmission { chunk: Some(256) });
    let schedule = ServingSchedule::build(&mix, &config);
    let open = serving_trace(
        &session,
        &ServingModel::gpt2_small(),
        &schedule,
        experiments::SERVING_KV_BUCKET,
        &NetworkOptions::baseline(),
    )
    .expect("open-loop trace evaluates");

    let clock = session.system().arch().clock();
    let ttft = open.ttft_percentiles(clock);
    let tbt = open.tbt_percentiles(clock);
    println!(
        "== open-loop: {} with {} through 4 slots ==",
        mix.name(),
        config.arrival()
    );
    println!(
        "  {} steps ({} prefill tokens charged on admission, {} decode tokens)",
        schedule.total_steps(),
        open.total_prefill_tokens(),
        open.total_tokens()
    );
    println!(
        "  TTFT p50/p95/p99: {:.1}/{:.1}/{:.1} ms, TBT p50/p99: {:.2}/{:.2} ms",
        ttft.p50 * 1e3,
        ttft.p95 * 1e3,
        ttft.p99 * 1e3,
        tbt.p50 * 1e3,
        tbt.p99 * 1e3,
    );
}
