//! Throughput study (the paper's Fig. 3, extended to all workloads).
//!
//! Evaluates every built-in network on conservative Albireo and reports
//! per-layer utilization, highlighting the two shapes that starve
//! photonic sliding-window dataflows: strided convolutions and
//! fully-connected layers.
//!
//! Run with: `cargo run --example throughput_study`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::report::Table;
use lumen::core::NetworkOptions;
use lumen::workload::networks;

fn main() {
    // The paper's figure first.
    println!(
        "{}",
        experiments::fig3_throughput().expect("fig3 evaluates")
    );

    // Then the per-layer story behind it.
    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    for name in networks::NAMES {
        let net = networks::by_name(name).expect("built-in network");
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .expect("network maps");
        let mut table = Table::new(vec![
            "layer".into(),
            "shape class".into(),
            "utilization".into(),
            "cycles".into(),
        ]);
        for layer_eval in &eval.per_layer {
            let layer = net
                .layers()
                .iter()
                .find(|l| l.name() == layer_eval.layer_name)
                .expect("evaluated layer exists");
            let class = if !layer.is_unit_stride() {
                "strided conv"
            } else if layer.kind() == lumen::workload::LayerKind::FullyConnected {
                "fully connected"
            } else {
                "unit-stride conv"
            };
            table.row(vec![
                layer_eval.layer_name.clone(),
                class.into(),
                format!("{:.1}%", 100.0 * layer_eval.analysis.utilization),
                layer_eval.analysis.cycles.to_string(),
            ]);
        }
        println!("== {name} ==");
        print!("{}", table.render());
        println!(
            "network throughput: {:.0} MACs/cycle ({:.1}% of peak)\n",
            eval.throughput_macs_per_cycle(),
            100.0 * eval.throughput_macs_per_cycle() / system.arch().peak_parallelism() as f64
        );
    }
}
