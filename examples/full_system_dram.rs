//! Full-system exploration (the paper's Fig. 4, plus a batch-size sweep).
//!
//! Shows how DRAM dominates the aggressively-scaled photonic system and
//! how batching and fused-layer dataflows recover the scaling benefits,
//! then sweeps the batch size to find the point of diminishing returns.
//!
//! Run with: `cargo run --example full_system_dram`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::report::Table;
use lumen::core::NetworkOptions;
use lumen::workload::networks;

fn main() {
    // The paper's eight bars.
    println!(
        "{}",
        experiments::fig4_memory_exploration().expect("fig4 evaluates")
    );

    // Extension: how much batch is enough? Weight traffic amortizes as
    // 1/B, so the curve flattens once activations dominate.
    let net = networks::resnet18();
    let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let mut table = Table::new(vec![
        "batch".into(),
        "energy/inference (mJ)".into(),
        "DRAM share".into(),
    ]);
    for batch in [1usize, 2, 4, 8, 16, 32, 64] {
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline().with_batch(batch))
            .expect("network maps");
        let total = eval.energy.total().millijoules();
        let dram = eval.energy.by_label("dram").millijoules();
        table.row(vec![
            batch.to_string(),
            format!("{total:.3}"),
            format!("{:.1}%", 100.0 * dram / total),
        ]);
    }
    println!("batch-size sweep (aggressive Albireo, ResNet18, not fused):");
    print!("{}", table.render());
}
