//! Analog/optical reuse exploration (the paper's Fig. 5, plus a Pareto
//! view).
//!
//! Sweeps the Albireo variants that convert once and reuse spatially —
//! weight-sharing windows, input broadcast fan-out and analog output
//! accumulation — and shows which variants are Pareto-optimal in
//! (energy/MAC, peak-normalized latency).
//!
//! Run with: `cargo run --example reuse_exploration`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile, WeightReuse};
use lumen::core::dse::pareto_front;
use lumen::core::NetworkOptions;
use lumen::workload::networks;

fn main() {
    let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
    println!("{result}");

    // Extension: energy vs latency Pareto front across the same sweep.
    let net = networks::resnet18();
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for weight_reuse in [WeightReuse::Original, WeightReuse::More] {
        for or in [3usize, 9, 15] {
            for ir in [9usize, 27, 45] {
                let system = AlbireoConfig::new(ScalingProfile::Aggressive)
                    .with_weight_reuse(weight_reuse)
                    .with_output_reuse(or)
                    .with_input_reuse(ir)
                    .build_system();
                let eval = system
                    .evaluate_network(&net, &NetworkOptions::baseline())
                    .expect("network maps");
                labels.push(format!("{weight_reuse:?} OR={or} IR={ir}"));
                points.push((
                    eval.energy_per_mac().picojoules(),
                    eval.cycles, // per-inference latency in cycles
                ));
            }
        }
    }
    let front = pareto_front(&points);
    println!("Pareto-optimal variants (minimize full-system energy/MAC and cycles):");
    for &i in &front {
        println!(
            "  {:<24} {:.4} pJ/MAC (incl. DRAM), {:.0} cycles",
            labels[i], points[i].0, points[i].1
        );
    }
    println!(
        "{} of {} swept variants are Pareto-optimal",
        front.len(),
        points.len()
    );
}
