//! Co-design-space exploration across memory technology, buffer sizing
//! and mapping strategy.
//!
//! Demonstrates the tool's DSE surface: named design points built from
//! [`AlbireoConfig`] variants are swept over ResNet-18 and ranked; a
//! random-search mapper is compared against the hand-built Albireo
//! dataflow on a probe layer.
//!
//! Run with: `cargo run --example design_space`

use lumen::albireo::{AlbireoConfig, ScalingProfile};
use lumen::components::DramKind;
use lumen::core::dse::{sweep, DesignPoint};
use lumen::core::report::Table;
use lumen::core::{MappingStrategy, System};
use lumen::mapper::search::SearchConfig;
use lumen::workload::{networks, Layer};

fn main() {
    // --- Sweep 1: memory technology x global-buffer size ---
    let net = networks::resnet18();
    let mut points = Vec::new();
    for (dram_name, dram) in [
        ("lpddr4", DramKind::Lpddr4),
        ("ddr4", DramKind::Ddr4),
        ("hbm2", DramKind::Hbm2),
    ] {
        for glb_mib in [2usize, 4, 8] {
            let system = AlbireoConfig::new(ScalingProfile::Aggressive)
                .with_dram(dram)
                .with_glb_mebibytes(glb_mib)
                .build_system();
            points.push(DesignPoint::new(
                format!("{dram_name}/glb{glb_mib}MiB"),
                system,
            ));
        }
    }
    let results = sweep(points, &net).expect("all design points evaluate");
    let mut table = Table::new(vec![
        "design point".into(),
        "energy/inference (mJ)".into(),
        "pJ/MAC".into(),
        "DRAM share".into(),
    ]);
    for entry in &results {
        let e = &entry.evaluation;
        table.row(vec![
            entry.label.clone(),
            format!("{:.3}", e.energy.total().millijoules()),
            format!("{:.4}", e.energy_per_mac().picojoules()),
            format!("{:.1}%", 100.0 * e.energy.share_of_label("dram")),
        ]);
    }
    println!("memory co-design sweep (aggressive Albireo, ResNet18):");
    print!("{}", table.render());

    // --- Sweep 2: mapping strategy quality on a probe layer ---
    let arch = AlbireoConfig::new(ScalingProfile::Aggressive).build_arch();
    let probe = Layer::conv2d("probe", 1, 256, 128, 14, 14, 3, 3);
    let albireo = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let random = System::new(
        arch,
        MappingStrategy::RandomSearch(SearchConfig {
            iterations: 300,
            seed: 2024,
        }),
    );
    let hand = albireo
        .evaluate_layer(&probe)
        .expect("albireo dataflow maps");
    let searched = random.evaluate_layer(&probe).expect("random search maps");
    println!("\nmapping strategy on {probe}:");
    println!(
        "  albireo dataflow : {:.4} pJ/MAC",
        hand.energy_per_mac().picojoules()
    );
    println!(
        "  random search    : {:.4} pJ/MAC",
        searched.energy_per_mac().picojoules()
    );
    let winner = if hand.energy.total() <= searched.energy.total() {
        "hand-built dataflow"
    } else {
        "random search"
    };
    println!("  winner           : {winner}");
}
