//! Transformer study: the paper's methodology applied beyond CNNs.
//!
//! Evaluates the three transformer workloads (BERT-base encoder, GPT-2
//! small prefill, ViT-B/16) on the photonic Albireo model and the
//! matched digital baseline, then breaks one BERT encoder block down
//! layer by layer to show where attention spends energy on a photonic
//! system: the K/V operands of the `logits`/`attend` matmuls convert
//! like weights, so conversion cost per MAC rises exactly where
//! arithmetic intensity falls.
//!
//! Run with: `cargo run --release --example transformer_study`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::report::{network_table_deduped, Table};
use lumen::core::{EvalSession, NetworkOptions};
use lumen::workload::networks;

fn main() {
    // The headline comparison at two corners: conservative photonics lose
    // on matmuls outright; aggressive scaling restores the energy edge
    // but not the throughput edge.
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        println!(
            "{}",
            experiments::transformer_study(scaling).expect("study evaluates")
        );
    }

    // Per-layer anatomy of one BERT-base encoder block, evaluated through
    // the content-addressed pipeline: the 96 layers collapse to 5 unique
    // signatures, so mapping search runs five times, not ninety-six.
    let session = EvalSession::new(AlbireoConfig::new(ScalingProfile::Aggressive).build_system());
    let net = networks::bert_base();
    let eval = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("bert-base maps");
    let mut table = Table::new(vec![
        "layer".into(),
        "role".into(),
        "utilization".into(),
        "pJ/MAC".into(),
    ]);
    for layer_eval in eval.per_layer.iter().take(8) {
        let layer = net
            .layers()
            .iter()
            .find(|l| l.name() == layer_eval.layer_name)
            .expect("evaluated layer exists");
        let role = if layer.groups() > 1 {
            "per-head attention (K/V stationary)"
        } else if layer.name().contains("mlp") {
            "MLP projection"
        } else {
            "QKV/output projection"
        };
        table.row(vec![
            layer_eval.layer_name.clone(),
            role.into(),
            format!("{:.1}%", 100.0 * layer_eval.analysis.utilization),
            format!("{:.3}", layer_eval.energy_per_mac().picojoules()),
        ]);
    }
    println!("== bert-base encoder block 0 on albireo-aggressive ==");
    print!("{}", table.render());
    println!(
        "network: {:.3} pJ/MAC at {:.1}% utilization ({:.0} of {} peak MACs/cycle)",
        eval.energy_per_mac().picojoules(),
        100.0 * eval.average_utilization(),
        eval.throughput_macs_per_cycle(),
        session.system().arch().peak_parallelism(),
    );

    // The whole network, deduplicated: one row per unique layer shape
    // with a multiplicity column, plus the cache's accounting.
    println!("\n== bert-base, unique layers (x multiplicity) ==");
    print!("{}", network_table_deduped(&eval).render());
    let stats = session.cache_stats();
    println!(
        "eval cache: {} mapping searches for {} layers ({:.0}% served from cache)",
        stats.misses,
        eval.per_layer.len(),
        100.0 * stats.hit_rate(),
    );
}
