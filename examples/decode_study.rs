//! Decode study: autoregressive serving on a photonic accelerator.
//!
//! Prefill is the regime the transformer study covers; serving spends
//! most of its life in *decode* — one token per step, every matmul a
//! seq-1 GEMV, and the attention reduction running over a KV cache that
//! grows with the conversation. This example sweeps GPT-2 small's decode
//! step across KV lengths on the photonic Albireo model and the matched
//! digital baseline, then walks a 256-step decode trace through one
//! content-addressed `EvalSession` to show why the trace is affordable:
//! per-step layers dedupe by KV-length bucket, so thousands of layer
//! evaluations cost a handful of mapping searches.
//!
//! Run with: `cargo run --release --example decode_study`

use lumen::albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen::core::{EvalSession, NetworkOptions};
use lumen::workload::networks;

fn main() {
    // The headline sweep at two corners: prefill's aggressive-corner
    // energy edge (2.2x) collapses to parity at decode, and the
    // photonic/digital utilization gap widens several-fold.
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        println!(
            "{}",
            experiments::decode_study(scaling).expect("study evaluates")
        );
    }

    // A 256-step decode trace (kv 0..255) through one session, with the
    // attend length padded to 64-token buckets (hardware tile / KV-page
    // granularity): 256 x 97 layer evaluations, but only the first step
    // of each bucket costs mapping searches.
    let session = EvalSession::new(AlbireoConfig::new(ScalingProfile::Aggressive).build_system());
    let mut evals = 0usize;
    let mut tokens_pj = Vec::new();
    for (kv_len, net) in networks::gpt2_small_decode_trace(0, 256, 64) {
        let eval = session
            .evaluate_network(&net, &NetworkOptions::baseline())
            .expect("decode step maps");
        evals += eval.per_layer.len();
        if kv_len % 64 == 0 {
            tokens_pj.push((kv_len, eval.energy.total().picojoules()));
        }
    }
    let stats = session.cache_stats();
    println!("== 256-step decode trace, kv buckets of 64, albireo-aggressive ==");
    for (kv_len, pj) in tokens_pj {
        println!("  token at kv={kv_len:>3}: {:.2} uJ", pj / 1e6);
    }
    println!(
        "trace cost: {} mapping searches for {} layer evaluations \
         ({:.2}% served from cache; naive per-step mapping would search {} times)",
        stats.misses,
        evals,
        100.0 * stats.hit_rate(),
        evals,
    );
}
