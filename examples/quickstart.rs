//! Quickstart: model one DNN layer on a photonic accelerator.
//!
//! Builds the conservatively-scaled Albireo system (accelerator + DRAM),
//! maps a ResNet-18 convolution onto it, and prints the itemized energy
//! breakdown, throughput and utilization.
//!
//! Run with: `cargo run --example quickstart`

use lumen::albireo::{AlbireoConfig, ScalingProfile};
use lumen::core::report::breakdown_table;
use lumen::workload::networks;

fn main() {
    // 1. Build the system: architecture + its dataflow mapper.
    let config = AlbireoConfig::new(ScalingProfile::Conservative);
    let system = config.build_system();
    println!("{}", system.arch());

    // 2. Pick a workload layer.
    let net = networks::resnet18();
    let layer = &net.layers()[1]; // layer1.0.conv1: 3x3, 64->64, 56x56
    println!("layer: {layer}");

    // 3. Evaluate: the mapper finds the dataflow, the nest analysis counts
    //    every access and conversion, the energy model prices them.
    let eval = system
        .evaluate_layer(layer)
        .expect("layer maps onto Albireo");

    println!("\nmapping:\n{}", eval.mapping);
    println!("energy breakdown:");
    print!("{}", breakdown_table(&eval.energy).render());
    println!();
    println!("energy/MAC : {:.4} pJ", eval.energy_per_mac().picojoules());
    println!(
        "throughput : {:.0} MACs/cycle ({:.1}% of peak {})",
        eval.analysis.throughput_macs_per_cycle,
        100.0 * eval.analysis.utilization,
        system.arch().peak_parallelism()
    );
    println!(
        "cycles     : {} ({:.2} µs at {})",
        eval.analysis.cycles,
        (system.arch().clock().period() * eval.analysis.cycles as f64).microseconds(),
        system.arch().clock()
    );
}
