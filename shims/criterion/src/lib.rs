//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! shadows the registry package. Bench targets keep their upstream shape
//! (`criterion_group!` / `criterion_main!` with `harness = false`), and
//! this harness times each `bench_function` with a warmup pass followed
//! by a fixed measurement budget, printing mean iteration time. It does
//! none of criterion's statistics (no outlier analysis, no HTML reports,
//! no baseline comparison).

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which is what this forwards to).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Per-function measurement budget.
    measurement_time: Duration,
    /// Smoke mode: run each benchmark once to prove it works, skip
    /// timing. Mirrors upstream criterion's `--test` profile
    /// (`cargo bench -- --test`), which CI uses to gate the bench
    /// harnesses without timing flakiness.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            measurement_time: Duration::from_millis(300),
            smoke,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measurement_time, self.smoke, f);
        self
    }

    /// `true` when running under `-- --test` (smoke mode: one iteration
    /// per benchmark, no timing). Benches that emit timing artifacts
    /// check this to skip writing misleading numbers.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }
}

/// A named collection of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness uses a time budget,
    /// not a sample count, so the value is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.criterion.measurement_time,
            self.criterion.smoke,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    smoke: bool,
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`: one warmup call, then as many iterations as fit
    /// in the measurement budget (at least 10). In smoke mode the warmup
    /// call is the whole run — correctness is proven, timing skipped.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        hint::black_box(routine());
        if self.smoke {
            self.result = Some(Measurement {
                iters: 1,
                total: Duration::ZERO,
            });
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            hint::black_box(routine());
            iters += 1;
            if iters >= 10 && start.elapsed() >= self.budget {
                break;
            }
        }
        self.result = Some(Measurement {
            iters,
            total: start.elapsed(),
        });
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, smoke: bool, mut f: F) {
    let mut bencher = Bencher {
        budget,
        smoke,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(_) if smoke => println!("  {id:<44} ok (smoke)"),
        Some(m) => {
            let mean = m.total / u32::try_from(m.iters).unwrap_or(u32::MAX);
            println!("  {id:<44} {mean:>12.2?}/iter  ({} iters)", m.iters);
        }
        None => println!("  {id:<44} (no measurement: closure never called iter)"),
    }
}

/// Mirrors `criterion_group!`: bundles benchmark functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            smoke: false,
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 10, "at least warmup + 10 measured iterations");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            smoke: true,
        };
        assert!(c.is_smoke());
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 1, "smoke mode: warmup call only, no timing loop");
    }
}
