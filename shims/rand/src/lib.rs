//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: a seedable deterministic generator (`rngs::StdRng`), the
//! [`SeedableRng`] constructor trait and [`Rng::gen_range`] over integer
//! ranges.
//!
//! The build environment has no crates.io access, so this path crate
//! shadows the registry package. The generator is splitmix64 — not the
//! ChaCha stream the real `StdRng` wraps — so sequences differ from
//! upstream `rand`, but all workspace uses only require determinism for a
//! fixed seed, which splitmix64 provides.

use std::ops::{Bound, RangeBounds};

/// Seed-construction trait (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling trait (mirrors the used subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<R: RangeBounds<usize>>(&mut self, range: R) -> usize {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.checked_add(1).expect("range end overflows"),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => usize::MAX,
        };
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded sampling; bias is < 2^-64 * span, far
        // below what mapping-search reproducibility can observe.
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as u64) as usize
    }
}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush when used as a stream like this.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
