//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this path crate
//! shadows the registry package. It implements the pieces the test
//! suites rely on — the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, [`strategy::Strategy`] for numeric
//! ranges / tuples / `prop_map`, [`collection::vec`], and the
//! `prop_assert*` macros — with two simplifications relative to the real
//! crate: the RNG seed is fixed (every run exercises the same cases, so
//! CI is deterministic) and failing cases are reported without input
//! shrinking.

pub mod test_runner {
    //! Case-count configuration and the deterministic test RNG.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Mirrors `proptest::test_runner::Config` for the `cases` knob.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG handed to strategies while generating cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Fixed-seed generator: every test run sees the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(0x5EED_CA5E),
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.inner.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            self.inner.gen_range(lo..hi)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (mirrors `proptest::strategy`).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.start, self.end)
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(*self.start(), *self.end() + 1)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident => $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => a);
    tuple_strategy!(A => a, B => b);
    tuple_strategy!(A => a, B => b, C => c);
    tuple_strategy!(A => a, B => b, C => c, D => d);
    tuple_strategy!(A => a, B => b, C => c, D => d, E => e);
    tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f);
    tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f, G => g);
    tuple_strategy!(A => a, B => b, C => c, D => d, E => e, F => f, G => g, H => h);
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy drawing a length from `size`, then that many elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface (mirrors `proptest::prelude`).

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Property-test entry point. Each `#[test] fn name(arg in strategy, ..)`
/// item becomes a plain `#[test]` that draws `cases` random inputs and
/// runs the body on each. Failures panic with the case index (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{total} failed in `{name}`",
                            total = config.cases,
                            name = stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion inside a [`proptest!`] body (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a [`proptest!`] body (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn decade() -> impl Strategy<Value = f64> {
        (-3.0f64..3.0).prop_map(|exp| 10f64.powf(exp))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 2usize..=5, y in 0.5f64..2.0) {
            prop_assert!((2..=5).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn mapped_strategy_applies_function(v in decade()) {
            prop_assert!(v > 0.0);
            prop_assert!((1e-3..1e3).contains(&v));
        }

        #[test]
        fn vec_strategy_respects_length(values in crate::collection::vec(0usize..10, 0..7)) {
            prop_assert!(values.len() < 7);
            prop_assert!(values.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_generate_componentwise(pair in (1usize..=2, 0.0f64..1.0)) {
            let (a, b) = pair;
            prop_assert!(a == 1 || a == 2);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }
}
