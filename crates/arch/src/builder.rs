//! Fluent construction of validated architectures.

use crate::{ArchError, Architecture, Domain, Fanout, Level, LevelKind, PerCycleCost};
use lumen_units::{Area, Energy, Frequency, Power};
use lumen_workload::{TensorMap, TensorSet};

/// Builds an [`Architecture`] level by level, outermost first.
///
/// Storage and converter levels open a nested [`LevelBuilder`] for their
/// per-level knobs; `compute(...)` closes the hierarchy and `build()`
/// validates it.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct ArchBuilder {
    name: String,
    clock: Frequency,
    levels: Vec<Level>,
    per_cycle: Vec<PerCycleCost>,
    word_bits: TensorMap<u32>,
}

impl ArchBuilder {
    /// Starts a new architecture with the given name and clock.
    pub fn new(name: impl Into<String>, clock: Frequency) -> ArchBuilder {
        ArchBuilder {
            name: name.into(),
            clock,
            levels: Vec::new(),
            per_cycle: Vec::new(),
            word_bits: TensorMap::filled(8),
        }
    }

    /// Sets the element width (bits) for all tensors.
    #[must_use]
    pub fn word_bits(mut self, bits: u32) -> ArchBuilder {
        self.word_bits = TensorMap::filled(bits);
        self
    }

    /// Sets per-tensor element widths.
    #[must_use]
    pub fn word_bits_per_tensor(mut self, bits: TensorMap<u32>) -> ArchBuilder {
        self.word_bits = bits;
        self
    }

    /// Opens a storage level keeping `keep`.
    pub fn storage(self, name: impl Into<String>, domain: Domain, keep: TensorSet) -> LevelBuilder {
        LevelBuilder {
            arch: self,
            name: name.into(),
            domain,
            keep,
            kind_is_converter: false,
            capacity_bits: None,
            read_energy: Energy::ZERO,
            write_energy: Energy::ZERO,
            convert_energy: Energy::ZERO,
            fanout: Fanout::none(),
            static_power: Power::ZERO,
            area: Area::ZERO,
        }
    }

    /// Opens a converter level transducing `keep`.
    pub fn converter(
        self,
        name: impl Into<String>,
        domain: Domain,
        keep: TensorSet,
    ) -> LevelBuilder {
        LevelBuilder {
            arch: self,
            name: name.into(),
            domain,
            keep,
            kind_is_converter: true,
            capacity_bits: None,
            read_energy: Energy::ZERO,
            write_energy: Energy::ZERO,
            convert_energy: Energy::ZERO,
            fanout: Fanout::none(),
            static_power: Power::ZERO,
            area: Area::ZERO,
        }
    }

    /// Adds a per-cycle cost (laser, thermal tuning) charged independently
    /// of data movement.
    #[must_use]
    pub fn per_cycle(
        mut self,
        name: impl Into<String>,
        energy_per_cycle: Energy,
        gateable: bool,
    ) -> ArchBuilder {
        self.per_cycle.push(PerCycleCost {
            name: name.into(),
            energy_per_cycle,
            gateable,
        });
        self
    }

    /// Closes the hierarchy with the compute level and finalizes.
    pub fn compute(
        mut self,
        name: impl Into<String>,
        domain: Domain,
        energy_per_mac: Energy,
    ) -> FinishedArch {
        self.levels.push(Level {
            name: name.into(),
            domain,
            kind: LevelKind::Compute { energy_per_mac },
            keep: TensorSet::all(),
            fanout: Fanout::none(),
            static_power: Power::ZERO,
            area: Area::ZERO,
        });
        FinishedArch { arch: self }
    }
}

/// Configures one storage / converter level; call
/// [`LevelBuilder::done`] to return to the [`ArchBuilder`].
#[derive(Debug)]
pub struct LevelBuilder {
    arch: ArchBuilder,
    name: String,
    domain: Domain,
    keep: TensorSet,
    kind_is_converter: bool,
    capacity_bits: Option<u64>,
    read_energy: Energy,
    write_energy: Energy,
    convert_energy: Energy,
    fanout: Fanout,
    static_power: Power,
    area: Area,
}

impl LevelBuilder {
    /// Sets the per-element read energy (storage levels).
    #[must_use]
    pub fn read_energy(mut self, energy: Energy) -> LevelBuilder {
        self.read_energy = energy;
        self
    }

    /// Sets the per-element write energy (storage levels).
    #[must_use]
    pub fn write_energy(mut self, energy: Energy) -> LevelBuilder {
        self.write_energy = energy;
        self
    }

    /// Sets the per-element conversion energy (converter levels).
    #[must_use]
    pub fn convert_energy(mut self, energy: Energy) -> LevelBuilder {
        self.convert_energy = energy;
        self
    }

    /// Bounds the storage capacity in bits.
    #[must_use]
    pub fn capacity_bits(mut self, bits: u64) -> LevelBuilder {
        self.capacity_bits = Some(bits);
        self
    }

    /// Sets the spatial fan-out below this level.
    #[must_use]
    pub fn fanout(mut self, fanout: Fanout) -> LevelBuilder {
        self.fanout = fanout;
        self
    }

    /// Sets the static power of one instance.
    #[must_use]
    pub fn static_power(mut self, power: Power) -> LevelBuilder {
        self.static_power = power;
        self
    }

    /// Sets the area of one instance.
    #[must_use]
    pub fn area(mut self, area: Area) -> LevelBuilder {
        self.area = area;
        self
    }

    /// Closes this level and returns to the architecture builder.
    pub fn done(self) -> ArchBuilder {
        let kind = if self.kind_is_converter {
            LevelKind::Converter {
                convert_energy: self.convert_energy,
            }
        } else {
            LevelKind::Storage {
                capacity_bits: self.capacity_bits,
                read_energy: self.read_energy,
                write_energy: self.write_energy,
            }
        };
        let mut arch = self.arch;
        arch.levels.push(Level {
            name: self.name,
            domain: self.domain,
            kind,
            keep: self.keep,
            fanout: self.fanout,
            static_power: self.static_power,
            area: self.area,
        });
        arch
    }
}

/// The terminal state after [`ArchBuilder::compute`]; only `build()`
/// remains.
#[derive(Debug)]
pub struct FinishedArch {
    arch: ArchBuilder,
}

impl FinishedArch {
    /// Validates and returns the architecture.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] describing the first structural problem
    /// found (see [`Architecture`] validation rules).
    pub fn build(self) -> Result<Architecture, ArchError> {
        let arch = Architecture {
            name: self.arch.name,
            clock: self.arch.clock,
            levels: self.arch.levels,
            per_cycle: self.arch.per_cycle,
            word_bits: self.arch.word_bits,
        };
        arch.validate()?;
        Ok(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_workload::{Dim, DimSet};

    fn base() -> ArchBuilder {
        ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
    }

    #[test]
    fn minimal_valid_architecture() {
        let arch = base()
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(1.0),
            )
            .build()
            .unwrap();
        assert_eq!(arch.levels().len(), 2);
    }

    #[test]
    fn outermost_must_keep_all() {
        let err = base()
            .storage(
                "dram",
                Domain::DigitalElectrical,
                TensorSet::only(lumen_workload::TensorKind::Weight),
            )
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::BadOutermost);
    }

    #[test]
    fn converter_cannot_be_outermost() {
        let err = base()
            .converter("dac", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap_err();
        // Outermost check fires first (converter is not storage).
        assert_eq!(err, ArchError::BadOutermost);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = base()
            .storage("x", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("x", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::DuplicateName("x".into()));
    }

    #[test]
    fn useless_fanout_rejected() {
        let err = base()
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(4).allow(DimSet::EMPTY))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::UselessFanout("dram".into()));
    }

    #[test]
    fn converter_between_levels_is_fine() {
        let arch = base()
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .converter("dac", Domain::AnalogElectrical, TensorSet::all())
            .convert_energy(Energy::from_picojoules(0.5))
            .done()
            .compute("mac", Domain::AnalogOptical, Energy::ZERO)
            .build()
            .unwrap();
        assert_eq!(arch.converter_levels(), vec![1]);
        assert_eq!(arch.mapping_levels(), vec![0, 2]);
    }

    #[test]
    fn fanout_dims_restrict() {
        let arch = base()
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M, Dim::Q])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        assert_eq!(arch.peak_parallelism(), 4);
        assert!(arch.levels()[0].fanout().allowed().contains(Dim::Q));
    }
}
