//! Architecture validation errors.

use std::fmt;

/// An invalid architecture specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The hierarchy has fewer than two levels.
    TooFewLevels,
    /// The outermost level must be storage keeping all three tensors.
    BadOutermost,
    /// The hierarchy must end in exactly one compute level.
    BadCompute(String),
    /// A converter level may not be first or last.
    MisplacedConverter(String),
    /// Two levels share a name.
    DuplicateName(String),
    /// A level name is empty.
    EmptyName,
    /// A converter or storage level keeps no tensors.
    NothingKept(String),
    /// A fan-out larger than one allows no dimensions.
    UselessFanout(String),
    /// A fan-out was constructed with zero instances.
    ZeroFanout,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::TooFewLevels => {
                write!(
                    f,
                    "architecture needs at least a backing store and a compute level"
                )
            }
            ArchError::BadOutermost => write!(
                f,
                "the outermost level must be a storage level keeping all tensors"
            ),
            ArchError::BadCompute(name) => write!(
                f,
                "the hierarchy must end in exactly one compute level (offending level: {name})"
            ),
            ArchError::MisplacedConverter(name) => {
                write!(f, "converter `{name}` may not be the first or last level")
            }
            ArchError::DuplicateName(name) => write!(f, "duplicate level name `{name}`"),
            ArchError::EmptyName => write!(f, "level names must be nonempty"),
            ArchError::NothingKept(name) => {
                write!(f, "level `{name}` keeps no tensors and would be dead")
            }
            ArchError::UselessFanout(name) => write!(
                f,
                "level `{name}` has a fan-out larger than one but allows no dimensions"
            ),
            ArchError::ZeroFanout => write!(f, "fanout must be at least 1"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let samples: Vec<ArchError> = vec![
            ArchError::TooFewLevels,
            ArchError::BadOutermost,
            ArchError::BadCompute("x".into()),
            ArchError::MisplacedConverter("dac".into()),
            ArchError::DuplicateName("glb".into()),
            ArchError::EmptyName,
            ArchError::NothingKept("buf".into()),
            ArchError::UselessFanout("pe".into()),
            ArchError::ZeroFanout,
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
