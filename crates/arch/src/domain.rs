//! Signal domains: the digital/analog × electrical/optical quadrants.

use std::fmt;

/// The signal domain a component operates in.
///
/// The paper's framing: data moves between four domains, each with its own
/// movement / reuse / compute cost structure, and every crossing pays a
/// converter (DAC, ADC, modulator, photodetector). Where to cross is *the*
/// key photonic-system design decision.
///
/// # Examples
///
/// ```
/// use lumen_arch::Domain;
/// assert!(Domain::AnalogOptical.is_analog());
/// assert!(Domain::AnalogOptical.is_optical());
/// assert!(!Domain::DigitalElectrical.is_optical());
/// assert_eq!(format!("{}", Domain::AnalogElectrical), "AE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Digital electrical (`DE`): conventional logic, SRAM, DRAM.
    DigitalElectrical,
    /// Analog electrical (`AE`): charge/current-domain computation.
    AnalogElectrical,
    /// Analog optical (`AO`): light-intensity/phase-domain computation.
    AnalogOptical,
    /// Digital optical (`DO`): optical on-off-keyed interconnect.
    DigitalOptical,
}

impl Domain {
    /// All four domains.
    pub const ALL: [Domain; 4] = [
        Domain::DigitalElectrical,
        Domain::AnalogElectrical,
        Domain::AnalogOptical,
        Domain::DigitalOptical,
    ];

    /// `true` for analog domains.
    pub const fn is_analog(self) -> bool {
        matches!(self, Domain::AnalogElectrical | Domain::AnalogOptical)
    }

    /// `true` for optical domains.
    pub const fn is_optical(self) -> bool {
        matches!(self, Domain::AnalogOptical | Domain::DigitalOptical)
    }

    /// The conventional `X/Y` converter notation for a crossing from
    /// `self` to `to` (e.g. `"DE/AE"` is a DAC).
    pub fn crossing_label(self, to: Domain) -> String {
        format!("{self}/{to}")
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::DigitalElectrical => "DE",
            Domain::AnalogElectrical => "AE",
            Domain::AnalogOptical => "AO",
            Domain::DigitalOptical => "DO",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_flags() {
        assert!(!Domain::DigitalElectrical.is_analog());
        assert!(!Domain::DigitalElectrical.is_optical());
        assert!(Domain::AnalogElectrical.is_analog());
        assert!(!Domain::AnalogElectrical.is_optical());
        assert!(Domain::DigitalOptical.is_optical());
        assert!(!Domain::DigitalOptical.is_analog());
    }

    #[test]
    fn crossing_labels_match_paper_notation() {
        assert_eq!(
            Domain::DigitalElectrical.crossing_label(Domain::AnalogElectrical),
            "DE/AE"
        );
        assert_eq!(
            Domain::AnalogOptical.crossing_label(Domain::AnalogElectrical),
            "AO/AE"
        );
    }
}
