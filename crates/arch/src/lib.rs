//! # lumen-arch
//!
//! Hierarchical architecture specifications for electro-photonic DNN
//! accelerators.
//!
//! An [`Architecture`] is an ordered list of [`Level`]s from the outermost
//! backing store (DRAM) down to the innermost compute units. Each level:
//!
//! * lives in a signal [`Domain`] (digital/analog × electrical/optical);
//! * is a storage buffer, a cross-domain converter, or the compute stage
//!   ([`LevelKind`]);
//! * *keeps* a subset of the three operand tensors (others bypass);
//! * fans out spatially to the next level ([`Fanout`]), optionally
//!   restricted to a set of problem dimensions and to unit-stride layers
//!   (photonic sliding-window broadcast structures only work for stride-1
//!   convolutions);
//! * carries per-action energies, static power and area, typically derived
//!   from `lumen-components` models.
//!
//! Architectures are built with [`ArchBuilder`], which validates the
//! hierarchy (outermost level must keep all tensors, exactly one compute
//! level at the bottom, converters strictly between levels, ...).
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::{Dim, DimSet, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("buffer", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(16).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.1))
//!     .build()
//!     .unwrap();
//!
//! assert_eq!(arch.peak_parallelism(), 16);
//! assert!(arch.level_named("buffer").is_some());
//! ```

mod arch;
mod builder;
mod domain;
mod error;
mod fanout;
mod level;

pub use arch::{Architecture, PerCycleCost};
pub use builder::{ArchBuilder, LevelBuilder};
pub use domain::Domain;
pub use error::ArchError;
pub use fanout::Fanout;
pub use level::{Level, LevelKind};
