//! The validated architecture and its derived quantities.

use crate::{ArchError, Level, LevelKind};
use lumen_units::{Area, Energy, Frequency, Power};
use lumen_workload::{TensorKind, TensorMap};
use std::fmt;

/// An energy charged on every active cycle, independent of data movement —
/// lasers and microring thermal tuning are the photonic examples.
///
/// If `gateable`, the cost scales with spatial utilization (idle lanes can
/// be powered down); otherwise it is charged in full whenever the
/// accelerator runs, so underutilized layers pay it across more cycles per
/// MAC.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCycleCost {
    /// Display name (e.g. `"laser"`).
    pub name: String,
    /// Energy charged per cycle (whole accelerator).
    pub energy_per_cycle: Energy,
    /// Whether idle lanes can avoid this cost.
    pub gateable: bool,
}

/// A validated accelerator hierarchy.
///
/// Construct with [`crate::ArchBuilder`]. Levels are ordered outermost
/// (index 0, the backing store) to innermost (the compute level).
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    pub(crate) name: String,
    pub(crate) clock: Frequency,
    pub(crate) levels: Vec<Level>,
    pub(crate) per_cycle: Vec<PerCycleCost>,
    pub(crate) word_bits: TensorMap<u32>,
}

impl Architecture {
    pub(crate) fn validate(&self) -> Result<(), ArchError> {
        if self.levels.len() < 2 {
            return Err(ArchError::TooFewLevels);
        }
        let first = &self.levels[0];
        if !first.kind().is_storage() || first.keep() != lumen_workload::TensorSet::all() {
            return Err(ArchError::BadOutermost);
        }
        // Length checked above: >= 2 levels, so last exists.
        let Some(last) = self.levels.last() else {
            return Err(ArchError::TooFewLevels);
        };
        if !last.kind().is_compute() {
            return Err(ArchError::BadCompute(last.name().to_string()));
        }
        for level in &self.levels[..self.levels.len() - 1] {
            if level.kind().is_compute() {
                return Err(ArchError::BadCompute(level.name().to_string()));
            }
        }
        for (i, level) in self.levels.iter().enumerate() {
            if level.name().is_empty() {
                return Err(ArchError::EmptyName);
            }
            if level.kind().is_converter() && (i == 0 || i == self.levels.len() - 1) {
                return Err(ArchError::MisplacedConverter(level.name().to_string()));
            }
            if !level.kind().is_compute() && level.keep().is_empty() {
                return Err(ArchError::NothingKept(level.name().to_string()));
            }
            if level.fanout().size() > 1 && level.fanout().allowed().is_empty() {
                return Err(ArchError::UselessFanout(level.name().to_string()));
            }
        }
        let mut names: Vec<&str> = self.levels.iter().map(Level::name).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(ArchError::DuplicateName(pair[0].to_string()));
            }
        }
        Ok(())
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accelerator clock (symbol rate for photonic stages).
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// All levels, outermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The level with the given name.
    pub fn level_named(&self, name: &str) -> Option<&Level> {
        self.levels.iter().find(|l| l.name() == name)
    }

    /// Index of the level with the given name.
    pub fn level_index(&self, name: &str) -> Option<usize> {
        self.levels.iter().position(|l| l.name() == name)
    }

    /// The compute level (always the last).
    pub fn compute_level(&self) -> &Level {
        self.levels.last().expect("validated: has compute level")
    }

    /// Per-cycle (data-independent) energy costs.
    pub fn per_cycle_costs(&self) -> &[PerCycleCost] {
        &self.per_cycle
    }

    /// Element width in bits for each tensor.
    pub fn word_bits(&self) -> TensorMap<u32> {
        self.word_bits
    }

    /// Element width of one tensor.
    pub fn word_bits_of(&self, tensor: TensorKind) -> u32 {
        self.word_bits[tensor]
    }

    /// Number of hardware instances of level `index` (product of fan-outs
    /// above it).
    pub fn instances_of(&self, index: usize) -> u64 {
        self.levels[..index]
            .iter()
            .map(|l| l.fanout().size() as u64)
            .product()
    }

    /// Peak spatial parallelism: MACs per cycle with every lane busy.
    pub fn peak_parallelism(&self) -> u64 {
        self.instances_of(self.levels.len() - 1)
    }

    /// Total die area (all levels × instances).
    pub fn total_area(&self) -> Area {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| l.area() * self.instances_of(i) as f64)
            .sum()
    }

    /// Total static power (all levels × instances).
    pub fn total_static_power(&self) -> Power {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| l.static_power() * self.instances_of(i) as f64)
            .sum()
    }

    /// Indices of levels that take part in mapping (storage + compute);
    /// converters transduce traffic but hold no loops.
    pub fn mapping_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.kind().is_converter())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of converter levels.
    pub fn converter_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind().is_converter())
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-MAC compute energy of the innermost stage.
    pub fn mac_energy(&self) -> Energy {
        match self.compute_level().kind() {
            LevelKind::Compute { energy_per_mac } => *energy_per_mac,
            _ => unreachable!("validated: last level is compute"),
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "architecture {} @ {} (peak {} MACs/cycle)",
            self.name,
            self.clock,
            self.peak_parallelism()
        )?;
        for level in &self.levels {
            writeln!(f, "  {level}")?;
        }
        for cost in &self.per_cycle {
            writeln!(
                f,
                "  per-cycle: {} = {}{}",
                cost.name,
                cost.energy_per_cycle,
                if cost.gateable { " (gateable)" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{Dim, DimSet, TensorSet};

    fn toy() -> crate::Architecture {
        ArchBuilder::new("toy", Frequency::from_gigahertz(2.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(50.0))
            .write_energy(Energy::from_picojoules(50.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(2.0))
            .write_energy(Energy::from_picojoules(2.2))
            .capacity_bits(1 << 20)
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M])))
            .done()
            .compute(
                "pe",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.2),
            )
            .build()
            .expect("valid toy architecture")
    }

    #[test]
    fn instances_multiply_down_the_hierarchy() {
        let arch = toy();
        assert_eq!(arch.instances_of(0), 1);
        assert_eq!(arch.instances_of(1), 1);
        assert_eq!(arch.instances_of(2), 8);
        assert_eq!(arch.peak_parallelism(), 8);
    }

    #[test]
    fn lookups() {
        let arch = toy();
        assert_eq!(arch.level_index("glb"), Some(1));
        assert!(arch.level_named("nope").is_none());
        assert_eq!(arch.compute_level().name(), "pe");
        assert_eq!(arch.mac_energy(), Energy::from_picojoules(0.2));
    }

    #[test]
    fn mapping_levels_exclude_converters() {
        let arch = toy();
        assert_eq!(arch.mapping_levels(), vec![0, 1, 2]);
        assert!(arch.converter_levels().is_empty());
    }

    #[test]
    fn display_lists_levels() {
        let shown = format!("{}", toy());
        assert!(shown.contains("dram") && shown.contains("peak 8 MACs/cycle"));
    }
}
