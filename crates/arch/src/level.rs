//! One level of the accelerator hierarchy.

use crate::{Domain, Fanout};
use lumen_units::{Area, Energy, Power};
use lumen_workload::TensorSet;
use std::fmt;

/// What a [`Level`] does with the data that reaches it.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelKind {
    /// A buffer that stores tiles of its kept tensors.
    Storage {
        /// Capacity in bits, if bounded (mappings must fit); `None` models
        /// an unbounded backing store such as DRAM.
        capacity_bits: Option<u64>,
        /// Energy to read one element.
        read_energy: Energy,
        /// Energy to write one element.
        write_energy: Energy,
    },
    /// A cross-domain converter transducing every kept-tensor element that
    /// crosses its position in the hierarchy.
    Converter {
        /// Energy per converted element.
        convert_energy: Energy,
    },
    /// The innermost multiply-accumulate stage.
    Compute {
        /// Energy per multiply-accumulate.
        energy_per_mac: Energy,
    },
}

impl LevelKind {
    /// `true` for storage levels.
    pub fn is_storage(&self) -> bool {
        matches!(self, LevelKind::Storage { .. })
    }

    /// `true` for converter levels.
    pub fn is_converter(&self) -> bool {
        matches!(self, LevelKind::Converter { .. })
    }

    /// `true` for the compute level.
    pub fn is_compute(&self) -> bool {
        matches!(self, LevelKind::Compute { .. })
    }
}

/// One level of the hierarchy: a storage buffer, converter or compute
/// stage, with its signal domain, kept tensors, spatial fan-out and costs.
///
/// Levels are constructed through [`crate::ArchBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    pub(crate) name: String,
    pub(crate) domain: Domain,
    pub(crate) kind: LevelKind,
    pub(crate) keep: TensorSet,
    pub(crate) fanout: Fanout,
    pub(crate) static_power: Power,
    pub(crate) area: Area,
}

impl Level {
    /// The level's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level's signal domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// What the level does.
    pub fn kind(&self) -> &LevelKind {
        &self.kind
    }

    /// The tensors this level stores (storage) or transduces (converter).
    pub fn keep(&self) -> TensorSet {
        self.keep
    }

    /// Spatial fan-out to the next level down.
    pub fn fanout(&self) -> &Fanout {
        &self.fanout
    }

    /// Static power of one instance.
    pub fn static_power(&self) -> Power {
        self.static_power
    }

    /// Area of one instance.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Read energy per element (storage levels; zero otherwise).
    pub fn read_energy(&self) -> Energy {
        match &self.kind {
            LevelKind::Storage { read_energy, .. } => *read_energy,
            _ => Energy::ZERO,
        }
    }

    /// Write energy per element (storage levels; zero otherwise).
    pub fn write_energy(&self) -> Energy {
        match &self.kind {
            LevelKind::Storage { write_energy, .. } => *write_energy,
            _ => Energy::ZERO,
        }
    }

    /// Conversion energy per element (converter levels; zero otherwise).
    pub fn convert_energy(&self) -> Energy {
        match &self.kind {
            LevelKind::Converter { convert_energy } => *convert_energy,
            _ => Energy::ZERO,
        }
    }

    /// Capacity in bits, if this is a bounded storage level.
    pub fn capacity_bits(&self) -> Option<u64> {
        match &self.kind {
            LevelKind::Storage { capacity_bits, .. } => *capacity_bits,
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            LevelKind::Storage { .. } => "storage",
            LevelKind::Converter { .. } => "converter",
            LevelKind::Compute { .. } => "compute",
        };
        write!(
            f,
            "{:<16} [{}] {:<9} keep={} fanout={}",
            self.name, self.domain, kind, self.keep, self.fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage_level() -> Level {
        Level {
            name: "glb".into(),
            domain: Domain::DigitalElectrical,
            kind: LevelKind::Storage {
                capacity_bits: Some(1024),
                read_energy: Energy::from_picojoules(1.0),
                write_energy: Energy::from_picojoules(1.2),
            },
            keep: TensorSet::all(),
            fanout: Fanout::new(4),
            static_power: Power::ZERO,
            area: Area::ZERO,
        }
    }

    #[test]
    fn accessors_dispatch_on_kind() {
        let level = storage_level();
        assert_eq!(level.read_energy(), Energy::from_picojoules(1.0));
        assert_eq!(level.convert_energy(), Energy::ZERO);
        assert_eq!(level.capacity_bits(), Some(1024));
        assert!(level.kind().is_storage());
        assert!(!level.kind().is_compute());
    }

    #[test]
    fn display_mentions_name_and_domain() {
        let shown = format!("{}", storage_level());
        assert!(shown.contains("glb") && shown.contains("[DE]"));
    }
}
