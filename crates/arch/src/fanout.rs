//! Spatial fan-out between adjacent hierarchy levels.

use crate::ArchError;
use lumen_workload::{DimSet, Layer};
use std::fmt;

/// The spatial fan-out from one level to `size` instances of the next
/// level down.
///
/// `allowed` restricts which problem dimensions may be parallelized across
/// this fan-out (hardware wiring is dimension-specific: a star coupler that
/// broadcasts an input across filter positions parallelizes `R`/`S`, not
/// `M`). `unit_stride_dims` marks dimensions that additionally require the
/// layer to have stride 1 — the Albireo-style optical sliding-window
/// structures share input samples between adjacent output columns, which
/// only exists when windows overlap.
///
/// # Examples
///
/// ```
/// use lumen_arch::Fanout;
/// use lumen_workload::{Dim, DimSet, Layer};
///
/// let f = Fanout::new(3)
///     .allow(DimSet::from_dims(&[Dim::Q]))
///     .require_unit_stride(DimSet::from_dims(&[Dim::Q]));
///
/// let stride1 = Layer::conv2d("a", 1, 8, 8, 16, 16, 3, 3);
/// let stride2 = stride1.clone().with_stride(2, 2);
/// assert!(f.usable_dims(&stride1).contains(Dim::Q));
/// assert!(f.usable_dims(&stride2).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanout {
    size: usize,
    allowed: DimSet,
    unit_stride_dims: DimSet,
}

impl Fanout {
    /// A degenerate fan-out of one (no parallelism).
    pub fn none() -> Fanout {
        Fanout::new(1)
    }

    /// Builds a fan-out of `size` instances allowing all dimensions,
    /// rejecting a zero size with a typed error — the non-aborting
    /// construction path that `lumen check` reports through.
    ///
    /// # Errors
    ///
    /// [`ArchError::ZeroFanout`] if `size` is zero.
    pub fn try_new(size: usize) -> Result<Fanout, ArchError> {
        if size == 0 {
            return Err(ArchError::ZeroFanout);
        }
        Ok(Fanout {
            size,
            allowed: DimSet::all(),
            unit_stride_dims: DimSet::EMPTY,
        })
    }

    /// Builds a fan-out of `size` instances allowing all dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero; use [`Fanout::try_new`] to handle that
    /// case as a value.
    pub fn new(size: usize) -> Fanout {
        Fanout::try_new(size).expect("fanout must be at least 1")
    }

    /// Restricts the dimensions that may map to this fan-out
    /// (builder style).
    #[must_use]
    pub fn allow(mut self, dims: DimSet) -> Fanout {
        self.allowed = dims;
        self
    }

    /// Marks `dims` as usable only for unit-stride layers (builder style).
    #[must_use]
    pub fn require_unit_stride(mut self, dims: DimSet) -> Fanout {
        self.unit_stride_dims = dims;
        self
    }

    /// Number of child instances.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Dimensions allowed to map here (before stride checks).
    pub fn allowed(&self) -> DimSet {
        self.allowed
    }

    /// Dimensions that demand a unit-stride layer.
    pub fn unit_stride_dims(&self) -> DimSet {
        self.unit_stride_dims
    }

    /// The dimensions a given layer may actually parallelize across this
    /// fan-out (stride requirements applied).
    pub fn usable_dims(&self, layer: &Layer) -> DimSet {
        if layer.is_unit_stride() {
            self.allowed
        } else {
            // Strided layers lose the window-sharing dims.
            self.allowed
                .iter()
                .filter(|d| !self.unit_stride_dims.contains(*d))
                .collect()
        }
    }
}

impl Default for Fanout {
    fn default() -> Self {
        Fanout::none()
    }
}

impl fmt::Display for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{} over {}", self.size, self.allowed)?;
        if !self.unit_stride_dims.is_empty() {
            write!(f, " (stride-1 only: {})", self.unit_stride_dims)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_workload::Dim;

    #[test]
    fn default_allows_everything() {
        let f = Fanout::new(8);
        let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 3, 3);
        assert_eq!(f.usable_dims(&layer), DimSet::all());
    }

    #[test]
    fn stride_requirement_gates_dims() {
        let f = Fanout::new(3)
            .allow(DimSet::from_dims(&[Dim::Q, Dim::M]))
            .require_unit_stride(DimSet::from_dims(&[Dim::Q]));
        let strided = Layer::conv2d("l", 1, 4, 4, 4, 4, 3, 3).with_stride(2, 2);
        let usable = f.usable_dims(&strided);
        assert!(usable.contains(Dim::M), "M unaffected by stride");
        assert!(!usable.contains(Dim::Q), "Q gated by stride");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_fanout_panics() {
        let _ = Fanout::new(0);
    }

    #[test]
    fn try_new_reports_zero_as_a_value() {
        assert_eq!(Fanout::try_new(0), Err(ArchError::ZeroFanout));
        assert_eq!(Fanout::try_new(3).unwrap().size(), 3);
    }

    #[test]
    fn none_is_size_one() {
        assert_eq!(Fanout::none().size(), 1);
        assert_eq!(Fanout::default(), Fanout::none());
    }

    #[test]
    fn display() {
        let f = Fanout::new(4).allow(DimSet::from_dims(&[Dim::M]));
        assert_eq!(format!("{f}"), "x4 over {M}");
    }
}
