//! `lumen` — command-line driver for the photonic-accelerator model.
//!
//! Regenerates every figure of the paper, inspects architectures and
//! workloads, and runs per-layer utilization reports:
//!
//! ```text
//! lumen fig2                 # energy-breakdown validation
//! lumen fig3                 # throughput (ideal / reported / modeled)
//! lumen fig4                 # full-system memory exploration
//! lumen fig5                 # analog/optical reuse exploration
//! lumen all                  # everything above
//! lumen arch --scaling aggressive
//! lumen layers --network bert-base
//! lumen networks             # workload inventory (CNNs + transformers)
//! lumen transformers         # photonic vs digital on attention workloads
//! lumen decode               # autoregressive decode vs KV length
//! lumen serving              # continuous batching of mixed-length traffic
//! lumen fleet --instances 3  # fleet-scale capacity planning across instances
//! lumen components           # component library report
//! lumen check                # static pre-flight lint of the whole matrix
//! ```

use lumen_albireo::{compare_with_digital, experiments, AlbireoConfig, ScalingProfile};
use lumen_components::NoiseBudget;
use lumen_components::{
    Adc, ComponentCatalog, Dac, DigitalMac, Dram, DramKind, MachZehnder, Microring, NocLink,
    Photodiode, RegisterFile, SampleAndHold, Sram, StarCoupler, Waveguide,
};
use lumen_core::report::{network_table, network_table_deduped, Table};
use lumen_core::{EvalSession, NetworkOptions};
use lumen_units::{Frequency, Power};
use lumen_workload::networks;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Global flags may appear anywhere, including before the subcommand;
    // strip them so dispatch sees only the command and its options.
    let args = match apply_global_flags(&raw) {
        Ok(rest) => rest,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let command = args.first().map_or("help", String::as_str);
    let result = match command {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "all" => fig2()
            .and_then(|()| fig3())
            .and_then(|()| fig4())
            .and_then(|()| fig5()),
        "arch" => arch(&args),
        "layers" => layers(&args),
        "networks" => networks_cmd(),
        "transformers" => transformers_cmd(&args),
        "decode" => decode_cmd(&args),
        "serving" => serving_cmd(&args),
        "fleet" => fleet_cmd(&args),
        "components" => components_cmd(),
        "cache" => cache_cmd(&args),
        "check" => check_cmd(&args),
        "baseline" => baseline(&args),
        "precision" => precision(&args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `lumen help`)")),
    };
    // The persistent cache configured by --cache-dir / LUMEN_CACHE_DIR
    // lives in a process-wide static whose Drop never runs; flush it
    // here so this run's evaluations warm-start the next process.
    if let Err(e) = lumen_core::flush_persistent_cache() {
        eprintln!("warning: failed to save the persistent eval cache: {e}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Applies and strips the flags every subcommand honors: `--threads N`
/// forces the sweep/eval worker count (the `LUMEN_SWEEP_THREADS`
/// override made reachable), `--no-cache` disables the
/// content-addressed evaluation cache for A/B debugging
/// (`LUMEN_EVAL_CACHE=0`), and `--cache-dir DIR` persists the cache to
/// a snapshot in `DIR` so repeated runs warm-start across processes
/// (`LUMEN_CACHE_DIR`). All work by setting the corresponding
/// environment variable before any evaluation starts — the knobs are
/// resolved once per process, so this must run first. Returns the
/// remaining arguments (command + per-command options), so the global
/// flags are position-independent.
fn apply_global_flags(args: &[String]) -> Result<Vec<String>, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let Some(threads) = iter.next() else {
                    return Err("--threads expects a worker count".to_string());
                };
                let n: usize = threads
                    .parse()
                    .map_err(|_| format!("--threads expects a whole number, got `{threads}`"))?;
                if n == 0 || n > lumen_core::sweep::MAX_FORCED_THREADS {
                    return Err(format!(
                        "--threads must be in 1..={} (got {n})",
                        lumen_core::sweep::MAX_FORCED_THREADS
                    ));
                }
                std::env::set_var("LUMEN_SWEEP_THREADS", n.to_string());
            }
            "--no-cache" => std::env::set_var("LUMEN_EVAL_CACHE", "0"),
            "--cache-dir" => {
                let Some(dir) = iter.next() else {
                    return Err("--cache-dir expects a directory".to_string());
                };
                if dir.is_empty() {
                    return Err("--cache-dir expects a non-empty directory".to_string());
                }
                std::env::set_var("LUMEN_CACHE_DIR", dir);
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok(rest)
}

fn print_help() {
    println!("lumen — architecture-level modeling of photonic DNN accelerators");
    println!();
    println!("USAGE: lumen <COMMAND> [OPTIONS]");
    println!();
    println!("COMMANDS:");
    println!("  fig2        Fig. 2: best-case energy-breakdown validation");
    println!("  fig3        Fig. 3: throughput for VGG16 and AlexNet");
    println!("  fig4        Fig. 4: full-system memory exploration (batching, fusion)");
    println!("  fig5        Fig. 5: analog/optical reuse exploration");
    println!("  all         run all four figures");
    println!("  arch        print the Albireo hierarchy  [--scaling <corner>]");
    println!("  layers      per-layer utilization report [--network <name>] [--scaling <corner>]");
    println!("  networks    list the built-in DNN workloads (CNNs + transformers)");
    println!("  transformers  photonic vs digital on transformer workloads [--scaling <corner>]");
    println!("  decode      GPT-2 small autoregressive decode vs KV length [--scaling <corner>]");
    println!("  serving     continuous batching of mixed-length traffic [--scaling <corner>]");
    println!("              [--arrival closed-loop|poisson[:rate]|bursty|diurnal]");
    println!("              [--policy fifo|shortest-prompt|slo]   (open-loop SLO study)");
    println!("              [--kv-page N [--shared-prefix L]]     (paged KV residency study)");
    println!("  fleet       fleet-scale capacity planning [--scaling <corner>]");
    println!(
        "              [--instances N] [--router round-robin|join-shortest-queue|least-loaded-kv]"
    );
    println!("              [--arrival closed-loop|poisson[:rate]|bursty|diurnal]");
    println!("              [--slo p99-ttft:MS]  (search the smallest fleet meeting the SLO)");
    println!("  components  print the component library report");
    println!("  cache       inspect the persistent eval cache [--clear] (needs --cache-dir)");
    println!("  check       static pre-flight lint of architectures x workloads x strategies");
    println!("              [--arch albireo|digital] [--network <name>] [--scaling <corner>]");
    println!(
        "              [--format text|json] [--deny warnings] [--allow <code>] [--deny <code>]"
    );
    println!("  baseline    photonic vs digital-electronic comparison [--scaling <corner>]");
    println!("  precision   noise-limited analog resolution vs received optical power");
    println!("  help        show this message");
    println!();
    println!("GLOBAL OPTIONS:");
    println!("  --threads N   force the evaluation worker count (default: machine parallelism)");
    println!("  --no-cache    disable the content-addressed evaluation cache (A/B debugging)");
    println!("  --cache-dir D persist the eval cache to a snapshot in D (warm-start reruns)");
    println!();
    println!("Corners: conservative | moderate | aggressive");
    println!("Networks: {}", networks::NAMES.join(" | "));
    println!("`layers` also takes --dedup to collapse identical layers into one xN row");
}

fn option_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_scaling(args: &[String]) -> Result<ScalingProfile, String> {
    match option_value(args, "--scaling") {
        None => Ok(ScalingProfile::Conservative),
        Some("conservative") => Ok(ScalingProfile::Conservative),
        Some("moderate") => Ok(ScalingProfile::Moderate),
        Some("aggressive") => Ok(ScalingProfile::Aggressive),
        Some(other) => Err(format!("unknown scaling corner `{other}`")),
    }
}

fn fig2() -> Result<(), String> {
    let result = experiments::fig2_energy_breakdown().map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn fig3() -> Result<(), String> {
    let result = experiments::fig3_throughput().map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn fig4() -> Result<(), String> {
    let result = experiments::fig4_memory_exploration().map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn fig5() -> Result<(), String> {
    let result = experiments::fig5_reuse_exploration().map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn arch(args: &[String]) -> Result<(), String> {
    let scaling = parse_scaling(args)?;
    let config = AlbireoConfig::new(scaling);
    let arch = config.build_arch();
    println!("{arch}");
    println!("total area: {}", arch.total_area());
    println!(
        "link budget: launch {} / wall {}",
        config.link_budget().required_launch_power(),
        config.link_budget().required_wall_power()
    );
    Ok(())
}

fn layers(args: &[String]) -> Result<(), String> {
    let scaling = parse_scaling(args)?;
    let name = option_value(args, "--network").unwrap_or("resnet18");
    let net = networks::by_name(name).ok_or_else(|| {
        format!(
            "unknown network `{name}` (try: {})",
            networks::NAMES.join(", ")
        )
    })?;
    let session = EvalSession::new(AlbireoConfig::new(scaling).build_system());
    let eval = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .map_err(|e| e.to_string())?;
    println!("{name} on albireo-{scaling}:");
    // Opt-in deduplicated rendering: one row per unique layer with an
    // xN multiplicity column (12 identical encoder blocks -> x12).
    if args.iter().any(|a| a == "--dedup") {
        print!("{}", network_table_deduped(&eval).render());
    } else {
        print!("{}", network_table(&eval).render());
    }
    let peak = session.system().arch().peak_parallelism();
    println!(
        "throughput {:.0} MACs/cycle ({:.1}% of the {} peak)",
        eval.throughput_macs_per_cycle(),
        100.0 * eval.throughput_macs_per_cycle() / peak as f64,
        peak
    );
    let stats = session.cache_stats();
    if stats.hits > 0 {
        println!(
            "eval cache: {} unique layer evaluations, {} served from cache ({:.0}% hit rate)",
            stats.misses,
            stats.hits,
            100.0 * stats.hit_rate()
        );
    }
    Ok(())
}

fn networks_cmd() -> Result<(), String> {
    let mut table = Table::new(vec![
        "network".into(),
        "layers".into(),
        "GMACs".into(),
        "Mweights".into(),
        "strided".into(),
        "fc".into(),
        "matmul".into(),
        // GEMM share counts matmul + fully-connected MACs together.
        "gemm MAC %".into(),
    ]);
    for name in networks::NAMES {
        let net = networks::by_name(name).expect("built-in networks resolve");
        let stats = net.stats();
        let strided = net.layers().iter().filter(|l| !l.is_unit_stride()).count();
        let count_kind = |kind: lumen_workload::LayerKind| {
            net.layers().iter().filter(|l| l.kind() == kind).count()
        };
        table.row(vec![
            name.to_string(),
            stats.layers.to_string(),
            format!("{:.2}", stats.total_macs as f64 / 1e9),
            format!("{:.1}", stats.total_weights as f64 / 1e6),
            strided.to_string(),
            count_kind(lumen_workload::LayerKind::FullyConnected).to_string(),
            count_kind(lumen_workload::LayerKind::Matmul).to_string(),
            format!("{:.0}%", 100.0 * net.gemm_mac_fraction()),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn transformers_cmd(args: &[String]) -> Result<(), String> {
    let scaling = parse_scaling(args)?;
    let result = experiments::transformer_study(scaling).map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

fn decode_cmd(args: &[String]) -> Result<(), String> {
    let scaling = parse_scaling(args)?;
    let result = experiments::decode_study(scaling).map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}

/// Shared lint pre-flight for the serving and fleet paths: print every
/// diagnostic, abort only on errors (an overloaded arrival rate is a
/// legitimate thing to study, so L0403/L0409 warn).
fn preflight(
    scenario: &lumen_workload::ServingScenario,
    fleet: Option<(usize, lumen_workload::FleetRouter)>,
) -> Result<(), String> {
    use lumen_lint::{FleetSpec, LintRegistry, LintTarget, ServingSpec};
    let mut spec = ServingSpec::from_scenario(scenario);
    // Study scenarios leave the context window unset (it belongs to the
    // served model, not the traffic); pin GPT-2 small's window here so
    // L0404 still guards every CLI path.
    if spec.max_context.is_none() {
        spec.max_context = lumen_workload::ServingModel::gpt2_small().max_context();
    }
    let router_name = fleet.map(|(_, router)| router.to_string());
    let fleet_spec = fleet.map(|(instances, _)| FleetSpec {
        stream: spec.clone(),
        instances,
        aggregate_capacity: instances * scenario.capacity(),
        router: router_name.as_deref().unwrap_or(""),
    });
    let mut target = LintTarget::new().with_serving(&spec);
    if let Some(fleet_spec) = &fleet_spec {
        target = target.with_fleet(fleet_spec);
    }
    let report = LintRegistry::with_default_lints().run(&target);
    if !report.is_empty() {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "serving pre-flight found {} error(s)",
            report.errors()
        ))
    }
}

fn serving_cmd(args: &[String]) -> Result<(), String> {
    use lumen_albireo::flags::{parse_serving_flags, ServingPlan};
    let scaling = parse_scaling(args)?;
    match parse_serving_flags(args).map_err(|e| e.to_string())? {
        ServingPlan::ClosedLoopStudy => {
            // Legacy closed-loop study: capacity sweep over the three mixes.
            let result = experiments::serving_study(scaling).map_err(|e| e.to_string())?;
            println!("{result}");
        }
        ServingPlan::Scenario(scenario) => {
            preflight(&scenario, None)?;
            let result = experiments::serving_scenario_study(
                scaling,
                &[(scenario.arrival().clone(), scenario.policy())],
            )
            .map_err(|e| e.to_string())?;
            println!("{result}");
        }
        ServingPlan::Paged(scenario) => {
            preflight(&scenario, None)?;
            let result = experiments::paged_serving_scenario_study(scaling, &scenario)
                .map_err(|e| e.to_string())?;
            println!("{result}");
        }
    }
    Ok(())
}

/// `lumen fleet`: route one arrival stream across N serving instances
/// and report fleet-wide percentiles — or, with `--slo p99-ttft:MS`,
/// sweep the instance count upward to the smallest fleet meeting the
/// target.
fn fleet_cmd(args: &[String]) -> Result<(), String> {
    use lumen_albireo::flags::parse_fleet_flags;
    let scaling = parse_scaling(args)?;
    let plan = parse_fleet_flags(args).map_err(|e| e.to_string())?;
    let template = experiments::fleet_template(plan.arrival.clone());
    preflight(&template, Some((plan.instances, plan.router)))?;
    match plan.slo_p99_ttft_ms {
        Some(slo) => {
            let result = experiments::fleet_slo_search(scaling, slo, plan.router, plan.arrival)
                .map_err(|e| e.to_string())?;
            println!("{result}");
        }
        None => {
            let result = experiments::capacity_plan_study(
                scaling,
                plan.instances,
                plan.router,
                plan.arrival,
            )
            .map_err(|e| e.to_string())?;
            println!("{result}");
        }
    }
    Ok(())
}

fn components_cmd() -> Result<(), String> {
    let mut catalog = ComponentCatalog::new();
    catalog.insert(
        "sram-glb-4MiB",
        Sram::new(4 * 1024 * 1024 * 8, 256).with_banks(32),
    );
    catalog.insert("dram-lpddr4", Dram::new(DramKind::Lpddr4, 8));
    catalog.insert("dram-ddr4", Dram::new(DramKind::Ddr4, 8));
    catalog.insert("regfile-16x8", RegisterFile::new(16, 8));
    catalog.insert("adc-8b", Adc::new(8));
    catalog.insert("dac-8b", Dac::new(8));
    catalog.insert("sample-and-hold", SampleAndHold::new());
    catalog.insert("digital-mac-8b", DigitalMac::new(8));
    catalog.insert("noc-link-8b-1mm", NocLink::new(8, 1.0));
    catalog.insert("microring", Microring::new());
    catalog.insert("mach-zehnder", MachZehnder::new());
    catalog.insert("photodiode", Photodiode::new());
    catalog.insert("star-coupler-1x8", StarCoupler::new(8));
    catalog.insert("waveguide-10mm", Waveguide::new(10.0));
    print!("{catalog}");
    let sc = StarCoupler::new(8);
    println!(
        "star-coupler-1x8 optical loss: {} ({} splitting + {} excess)",
        sc.total_loss(),
        sc.splitting_loss(),
        sc.excess_loss()
    );
    Ok(())
}

fn cache_cmd(args: &[String]) -> Result<(), String> {
    let dir = std::env::var_os("LUMEN_CACHE_DIR")
        .filter(|d| !d.is_empty())
        .ok_or_else(|| {
            "no cache directory configured (pass --cache-dir DIR or set LUMEN_CACHE_DIR)"
                .to_string()
        })?;
    let dir = std::path::PathBuf::from(dir);
    if args.iter().any(|a| a == "--clear") {
        return match lumen_core::clear_cache_dir(&dir).map_err(|e| e.to_string())? {
            true => {
                println!("cleared persistent eval cache in {}", dir.display());
                Ok(())
            }
            false => {
                println!("no persistent eval cache in {}", dir.display());
                Ok(())
            }
        };
    }
    let Some(info) = lumen_core::inspect_cache_dir(&dir) else {
        println!(
            "no persistent eval cache in {} (missing or invalid snapshot)",
            dir.display()
        );
        return Ok(());
    };
    println!("persistent eval cache: {}", info.path.display());
    println!("  entries: {}", info.entries);
    println!("  size:    {} bytes", info.bytes);
    if !info.per_system.is_empty() {
        let mut table = Table::new(vec![
            "arch fingerprint".into(),
            "strategy fingerprint".into(),
            "entries".into(),
        ]);
        for (arch, strategy, count) in &info.per_system {
            table.row(vec![
                format!("{arch:016x}"),
                format!("{strategy:016x}"),
                count.to_string(),
            ]);
        }
        print!("{}", table.render());
    }
    Ok(())
}

fn check_cmd(args: &[String]) -> Result<(), String> {
    use lumen_albireo::{check, DigitalBaseline};
    use lumen_lint::{LintConfig, Report};

    // `--deny warnings` escalates every warning; `--deny L####` escalates
    // one code; `--allow L####` drops one code. The flags repeat, so walk
    // the argument list instead of using `option_value`.
    let mut config = LintConfig::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--allow" => {
                let Some(code) = iter.next() else {
                    return Err("--allow expects a lint code".to_string());
                };
                config = config.allow(code);
            }
            "--deny" => {
                let Some(what) = iter.next() else {
                    return Err("--deny expects `warnings` or a lint code".to_string());
                };
                config = if what == "warnings" {
                    config.deny_warnings()
                } else {
                    config.deny(what)
                };
            }
            _ => {}
        }
    }

    let format = option_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown format `{format}` (expected text or json)"));
    }

    // No `--scaling` means both figure corners, matching the CI gate.
    let corners = match option_value(args, "--scaling") {
        None => vec![ScalingProfile::Conservative, ScalingProfile::Aggressive],
        Some(_) => vec![parse_scaling(args)?],
    };
    let (photonic, digital) = match option_value(args, "--arch") {
        None => (true, true),
        Some("albireo") => (true, false),
        Some("digital") => (false, true),
        Some(other) => {
            return Err(format!(
                "unknown arch `{other}` (expected albireo or digital)"
            ));
        }
    };
    let nets = match option_value(args, "--network") {
        None => check::check_networks(),
        Some(name) => vec![networks::by_name(name).ok_or_else(|| {
            format!(
                "unknown network `{name}` (try: {})",
                networks::NAMES.join(", ")
            )
        })?],
    };

    let mut systems = Vec::new();
    if photonic {
        for corner in &corners {
            systems.push(AlbireoConfig::new(*corner).build_system());
        }
    }
    if digital {
        // The digital baseline has no scaling corners; check it once.
        systems.push(DigitalBaseline::new().build_system());
    }

    let mut report = Report::default();
    for system in &systems {
        for net in &nets {
            report.merge(check::check_system_with(system, net, &config));
        }
    }

    if format == "json" {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
        println!(
            "checked {} network(s) x {} system(s)",
            nets.len(),
            systems.len()
        );
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("check found {} error(s)", report.errors()))
    }
}

fn baseline(args: &[String]) -> Result<(), String> {
    let scaling = parse_scaling(args)?;
    let rows = compare_with_digital(scaling).map_err(|e| e.to_string())?;
    let mut table = Table::new(vec![
        "network".into(),
        "digital pJ/MAC".into(),
        format!("photonic pJ/MAC ({scaling})"),
        "energy advantage".into(),
        "throughput advantage".into(),
    ]);
    for row in &rows {
        table.row(vec![
            row.network.clone(),
            format!("{:.3}", row.digital_pj_per_mac),
            format!("{:.3}", row.photonic_pj_per_mac),
            format!("{:.2}x", row.energy_advantage()),
            format!("{:.2}x", row.throughput_advantage()),
        ]);
    }
    println!("photonic (Albireo) vs digital baseline, full system incl. DRAM:");
    print!("{}", table.render());
    Ok(())
}

fn precision(_args: &[String]) -> Result<(), String> {
    let budget = NoiseBudget::new(Frequency::from_gigahertz(5.0));
    let mut table = Table::new(vec![
        "received power".into(),
        "SNR (dB)".into(),
        "achievable bits".into(),
    ]);
    for dbm in [-40.0, -35.0, -30.0, -25.0, -20.0, -15.0, -10.0, -5.0, 0.0] {
        let p = Power::from_dbm(dbm);
        table.row(vec![
            format!("{dbm:.0} dBm"),
            format!("{:.1}", budget.snr_db(p)),
            format!("{:.2}", budget.achievable_bits(p)),
        ]);
    }
    println!(
        "direct-detection precision budget at 5 GS/s (1 A/W, NEP 2 pW/\u{221a}Hz, RIN -150 dB/Hz):"
    );
    print!("{}", table.render());
    for bits in [4.0, 6.0, 8.0] {
        match budget.required_power(bits) {
            Some(p) => println!("{bits:.0}-bit detection needs >= {p}"),
            None => println!("{bits:.0}-bit detection is RIN-limited (unreachable)"),
        }
    }
    Ok(())
}
