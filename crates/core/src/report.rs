//! ASCII-table and CSV rendering for evaluations.

use crate::{EnergyBreakdown, NetworkEvaluation};
use lumen_units::Energy;

/// A simple left-aligned-first-column ASCII table builder.
///
/// # Examples
///
/// ```
/// use lumen_core::report::Table;
/// let mut t = Table::new(vec!["config".into(), "energy".into()]);
/// t.row(vec!["baseline".into(), "1.00".into()]);
/// t.row(vec!["batched".into(), "0.41".into()]);
/// let s = t.render();
/// assert!(s.contains("baseline"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Table {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded / truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Table {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map_or("", String::as_str);
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}"));
                } else {
                    line.push_str(&format!("{cell:>width$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders an energy breakdown grouped by label as a table, with shares.
pub fn breakdown_table(breakdown: &EnergyBreakdown) -> Table {
    let mut t = Table::new(vec!["component".into(), "energy".into(), "share".into()]);
    for label in breakdown.labels() {
        t.row(vec![
            label.to_string(),
            format!("{}", breakdown.by_label(label)),
            format!("{:.1}%", 100.0 * breakdown.share_of_label(label)),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        format!("{}", breakdown.total()),
        "100.0%".into(),
    ]);
    t
}

/// Renders a per-layer summary of a network evaluation.
pub fn network_table(eval: &NetworkEvaluation) -> Table {
    let mut t = Table::new(vec![
        "layer".into(),
        "macs".into(),
        "cycles".into(),
        "util".into(),
        "energy".into(),
        "pJ/MAC".into(),
    ]);
    for layer in &eval.per_layer {
        t.row(vec![
            layer.layer_name.clone(),
            layer.analysis.macs.to_string(),
            layer.analysis.cycles.to_string(),
            format!("{:.1}%", 100.0 * layer.analysis.utilization),
            format!("{}", layer.energy.total()),
            format!("{:.4}", layer.energy_per_mac().picojoules()),
        ]);
    }
    t.row(vec![
        "TOTAL/inference".into(),
        eval.macs.to_string(),
        format!("{:.0}", eval.cycles),
        format!("{:.1}%", 100.0 * eval.average_utilization()),
        format!("{}", eval.energy.total()),
        format!("{:.4}", eval.energy_per_mac().picojoules()),
    ]);
    t
}

/// Renders a per-layer summary with identical layers collapsed into one
/// row carrying a multiplicity column (`x12` for the twelve copies of a
/// BERT encoder layer), instead of twelve duplicate rows.
///
/// Rows are grouped by [`lumen_workload::LayerSignature`] *and*
/// bit-equal results — layers whose signatures match but whose energies
/// differ (e.g. the fused first/last layers of a network) keep separate
/// rows. Display is opt-in: [`network_table`] keeps the one-row-per-layer
/// rendering the golden drivers pin.
pub fn network_table_deduped(eval: &NetworkEvaluation) -> Table {
    let mut t = Table::new(vec![
        "layer".into(),
        "mult".into(),
        "macs".into(),
        "cycles".into(),
        "util".into(),
        "energy".into(),
        "pJ/MAC".into(),
    ]);
    // (signature, cycles, energy bits) -> row index; first-occurrence order.
    let mut groups: Vec<(usize, usize)> = Vec::new(); // (first layer idx, count)
    for (i, layer) in eval.per_layer.iter().enumerate() {
        let key_of = |l: &crate::LayerEvaluation| {
            (
                l.signature,
                l.analysis.cycles,
                l.energy.total().picojoules().to_bits(),
            )
        };
        match groups
            .iter_mut()
            .find(|(first, _)| key_of(&eval.per_layer[*first]) == key_of(layer))
        {
            Some((_, count)) => *count += 1,
            None => groups.push((i, 1)),
        }
    }
    for (first, count) in groups {
        let layer = &eval.per_layer[first];
        t.row(vec![
            layer.layer_name.clone(),
            format!("x{count}"),
            layer.analysis.macs.to_string(),
            layer.analysis.cycles.to_string(),
            format!("{:.1}%", 100.0 * layer.analysis.utilization),
            format!("{}", layer.energy.total()),
            format!("{:.4}", layer.energy_per_mac().picojoules()),
        ]);
    }
    t.row(vec![
        "TOTAL/inference".into(),
        format!("x{}", eval.per_layer.len()),
        eval.macs.to_string(),
        format!("{:.0}", eval.cycles),
        format!("{:.1}%", 100.0 * eval.average_utilization()),
        format!("{}", eval.energy.total()),
        format!("{:.4}", eval.energy_per_mac().picojoules()),
    ]);
    t
}

/// Formats an energy as `pJ` with fixed decimals (for figure-style rows).
pub fn pj(e: Energy) -> String {
    format!("{:.4}", e.picojoules())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostCategory;

    #[test]
    fn table_alignment_and_separator() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["xx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a,b".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    fn row_pads_missing_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn deduped_table_collapses_identical_layers() {
        use crate::{MappingStrategy, NetworkOptions, System};
        use lumen_arch::{ArchBuilder, Domain, Fanout};
        use lumen_units::Frequency;
        use lumen_workload::{Dim, DimSet, Layer, Network, TensorSet};
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        let system = System::new(arch, MappingStrategy::default());
        let net = Network::new("n")
            .push(Layer::conv2d("a0", 1, 8, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("b", 1, 16, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("a1", 1, 8, 8, 8, 8, 3, 3));
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap();
        let plain = network_table(&eval);
        assert_eq!(plain.len(), 4, "3 layers + total");
        let deduped = network_table_deduped(&eval);
        assert_eq!(deduped.len(), 3, "2 unique rows + total");
        let s = deduped.render();
        assert!(s.contains("x2") && s.contains("x1") && s.contains("x3"));
        assert!(s.contains("a0") && !s.contains("a1"), "first name kept");
    }

    #[test]
    fn breakdown_table_has_total_row() {
        let mut b = EnergyBreakdown::new();
        b.add(
            "glb",
            CostCategory::Storage,
            None,
            Energy::from_picojoules(5.0),
        );
        let t = breakdown_table(&b);
        let s = t.render();
        assert!(s.contains("TOTAL") && s.contains("glb"));
    }
}
