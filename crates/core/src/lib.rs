//! # lumen-core
//!
//! The full-system evaluator: turns *(architecture, workload, mapping
//! strategy)* into energy, throughput and area estimates — the Rust
//! counterpart of the CiMLoop/Timeloop/Accelergy stack the paper builds
//! on, extended to photonic systems.
//!
//! * [`System`] couples an architecture with a [`MappingStrategy`] and
//!   evaluates layers ([`System::evaluate_layer`]) or whole networks
//!   ([`System::evaluate_network`]).
//! * [`EnergyBreakdown`] itemizes energy by level, tensor and
//!   [`CostCategory`] (storage access, conversion, compute, per-cycle
//!   laser/tuning, static leakage).
//! * [`NetworkOptions`] model the paper's full-system levers: **batching**
//!   (amortizes weight DRAM traffic) and **fused-layer dataflow**
//!   (inter-layer activations stay in the global buffer; Fig. 4).
//! * [`dse`] provides sweep and Pareto utilities for design-space
//!   exploration; [`report`] renders ASCII/CSV tables.
//! * [`SweepRunner`] fans independent sweep points out over worker
//!   threads (order-preserving, deterministic error selection); the
//!   Fig. 2–5 experiment drivers and [`dse::sweep`] run on it.
//! * [`EvalSession`] adds the content-addressed fast path: layer
//!   evaluations memoized in a shared [`EvalCache`] keyed by
//!   *(architecture fingerprint, strategy fingerprint,
//!   [`lumen_workload::LayerSignature`], reroute)*, with
//!   [`EvalSession::evaluate_network`] evaluating each unique layer
//!   signature once — bit-identical to the sequential path.
//! * [`decode`] sweeps autoregressive decode steps (seq-1 GEMV networks
//!   with a growing KV cache) through a session; the evaluator charges
//!   KV-cache residency costs (per-step cache append writes) for layers
//!   marked [`lumen_workload::Layer::with_kv_cache_residency`].
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_core::{MappingStrategy, System};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::{Dim, DimSet, Layer, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("buf", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(16).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.05))
//!     .build()
//!     .unwrap();
//!
//! let system = System::new(arch, MappingStrategy::default());
//! let layer = Layer::conv2d("conv", 1, 32, 16, 16, 16, 3, 3);
//! let eval = system.evaluate_layer(&layer).unwrap();
//! assert!(eval.energy.total().nanojoules() > 0.0);
//! assert!(eval.analysis.utilization > 0.0);
//! ```

pub mod cache;
pub mod decode;
pub mod dse;
mod energy;
mod evaluator;
pub mod fleet;
mod network;
mod persist;
pub mod report;
pub mod serving;
pub mod sweep;

pub use cache::{
    arch_fingerprint, clear_cache_dir, flush_persistent_cache, inspect_cache_dir, CacheStats,
    EvalCache, EvalSession, PersistentCacheInfo,
};
pub use decode::{decode_sweep, DecodePoint};
pub use energy::{CostCategory, EnergyBreakdown, EnergyItem};
pub use evaluator::{
    strategy_facts, LayerEvaluation, MappingFn, MappingStrategy, System, SystemError,
};
pub use fleet::{fleet_trace, scenario_trace, FleetEvaluation, FleetInstance, FleetInstanceTrace};
pub use network::{FusionConfig, NetworkEvaluation, NetworkOptions};
pub use serving::{
    serving_sweep, serving_trace, serving_trace_with, Percentiles, RequestLatency,
    ServingEvaluation, ServingStepPoint,
};
pub use sweep::SweepRunner;
