//! Design-space exploration drivers: sweeps and Pareto fronts.
//!
//! The paper motivates bringing a modeling tool to photonics with "rapid
//! design space exploration over the large co-design space"; these helpers
//! are the programmatic entry point: name a set of system variants, run a
//! workload over all of them, compare.

use crate::{
    EvalCache, EvalSession, NetworkEvaluation, NetworkOptions, SweepRunner, System, SystemError,
};
use lumen_workload::Network;
use std::sync::Arc;

/// One named design point: a system variant plus evaluation options.
pub struct DesignPoint {
    /// Label shown in sweep results.
    pub label: String,
    /// The system variant.
    pub system: System,
    /// Evaluation options (batching, fusion).
    pub options: NetworkOptions,
}

impl DesignPoint {
    /// Builds a design point with baseline options.
    pub fn new(label: impl Into<String>, system: System) -> DesignPoint {
        DesignPoint {
            label: label.into(),
            system,
            options: NetworkOptions::baseline(),
        }
    }

    /// Sets the evaluation options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: NetworkOptions) -> DesignPoint {
        self.options = options;
        self
    }
}

/// The evaluation of one design point in a sweep.
pub struct SweepEntry {
    /// The design point's label.
    pub label: String,
    /// The network evaluation.
    pub evaluation: NetworkEvaluation,
}

/// Evaluates `network` on every design point, in parallel, returning the
/// entries in the points' input order.
///
/// Every point runs through a content-addressed [`EvalSession`] backed by
/// one cache shared across the whole sweep: identical layers within a
/// point's network evaluate once, and points that share an architecture
/// and strategy (e.g. the same system under different batching options)
/// reuse each other's layer evaluations. Results are bit-identical to the
/// uncached sequential loop.
///
/// # Errors
///
/// Fails on the first (by input order) design point whose mapping fails,
/// exactly as the sequential loop this replaced did.
pub fn sweep(points: Vec<DesignPoint>, network: &Network) -> Result<Vec<SweepEntry>, SystemError> {
    let cache = EvalCache::shared();
    SweepRunner::new().try_run(points, |point| {
        // Points are already fanned out across the runner's threads, so
        // each session evaluates its unique layers on one thread.
        let session = EvalSession::new(point.system)
            .with_cache(Arc::clone(&cache))
            .with_runner(SweepRunner::with_threads(1));
        let evaluation = session.evaluate_network(network, &point.options)?;
        Ok(SweepEntry {
            label: point.label,
            evaluation,
        })
    })
}

/// Indices of the non-dominated points under *(minimize x, minimize y)*.
///
/// A point dominates another if it is no worse in both objectives and
/// strictly better in at least one.
///
/// # Examples
///
/// ```
/// use lumen_core::dse::pareto_front;
/// let pts = [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0), (5.0, 1.0)];
/// assert_eq!(pareto_front(&pts), vec![0, 1, 3]); // (3,3) dominated by (2,2)
/// ```
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &(xi, yi)) in points.iter().enumerate() {
        for (j, &(xj, yj)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = xj <= xi && yj <= yi;
            let strictly_better = xj < xi || yj < yi;
            if no_worse && strictly_better {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingStrategy;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{Dim, DimSet, Layer, TensorSet};

    fn system(mac_pj: f64) -> System {
        let arch = ArchBuilder::new("v", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(50.0))
            .write_energy(Energy::from_picojoules(50.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(mac_pj),
            )
            .build()
            .unwrap();
        System::new(arch, MappingStrategy::default())
    }

    fn net() -> Network {
        Network::new("n").push(Layer::conv2d("c", 1, 8, 4, 8, 8, 3, 3))
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let points = vec![
            DesignPoint::new("cheap-mac", system(0.01)),
            DesignPoint::new("pricey-mac", system(1.0)),
        ];
        let results = sweep(points, &net()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "cheap-mac");
        assert!(
            results[0].evaluation.energy.total() < results[1].evaluation.energy.total(),
            "cheaper MAC yields lower total energy"
        );
    }

    #[test]
    fn pareto_front_simple() {
        let pts = [(1.0, 1.0), (2.0, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn pareto_keeps_ties() {
        // Identical points do not dominate each other (no strict better).
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn pareto_empty() {
        assert!(pareto_front(&[]).is_empty());
    }
}
