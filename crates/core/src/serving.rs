//! Serving-trace evaluation: driving a continuous-batching schedule
//! through an [`EvalSession`].
//!
//! [`serving_sweep`] evaluates every step of a closed-loop
//! [`BatchSchedule`](lumen_workload::BatchSchedule) — each step lowered
//! to bucketed decode layers by a
//! [`ServingModel`](lumen_workload::ServingModel) — against one session,
//! and reduces the trace to per-step and aggregate serving metrics:
//! generated tokens per second, energy per token, slot occupancy and
//! MAC-weighted compute utilization. [`serving_trace`] does the same
//! for an event-driven
//! [`ServingSchedule`](lumen_workload::ServingSchedule), where prefill
//! chunks are lowered (and charged) alongside the decode groups, and
//! additionally folds the evaluated step durations into per-request
//! [`RequestLatency`] records — time-to-first-token and
//! time-between-tokens percentiles in real time at the system clock.
//!
//! The step networks are pure functions of each step's *bucketed
//! composition* (the multiset of padded attend lengths with group
//! sizes), so a thousand-step schedule revisits a handful of distinct
//! compositions and the session's content-addressed cache answers almost
//! every layer without a mapping search — the same economics that make
//! [`crate::decode::decode_sweep`] affordable, extended to mixed-length
//! traffic.
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_core::serving::serving_sweep;
//! use lumen_core::{EvalSession, MappingStrategy, NetworkOptions, System};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::serving::{BatchSchedule, RequestMix, ServingModel};
//! use lumen_workload::{Dim, DimSet, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("glb", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.05))
//!     .build()
//!     .unwrap();
//!
//! let session = EvalSession::new(System::new(arch, MappingStrategy::default()));
//! let schedule = BatchSchedule::build(&RequestMix::uniform(4, 100, 4), 2);
//! let result = serving_sweep(
//!     &session,
//!     &ServingModel::gpt2_small(),
//!     &schedule,
//!     64,
//!     &NetworkOptions::baseline(),
//! )
//! .unwrap();
//! assert_eq!(result.total_tokens(), 16);
//! assert!(result.pj_per_token() > 0.0);
//! ```

use crate::{EvalSession, NetworkEvaluation, NetworkOptions, SystemError};
use lumen_units::{Energy, Frequency};
use lumen_workload::serving::{BatchSchedule, KvLayout, ServingModel, ServingSchedule};

/// One scheduler step of a serving sweep, reduced to scalars so a long
/// trace stays cheap to hold.
#[derive(Debug, Clone)]
pub struct ServingStepPoint {
    /// Step index in the schedule.
    pub step: usize,
    /// Requests decoding this step (each generated one token).
    pub occupancy: usize,
    /// Prompt tokens prefilled this step (0 for the closed-loop
    /// resident-prefill path).
    pub prefill_tokens: usize,
    /// True MACs of the step's lowered network (padded accounting).
    pub macs: u64,
    /// Element accesses (reads + writes + conversions) at the
    /// outermost architecture level — the backing store's traffic, the
    /// quantity bucket padding inflates and paged residency trims.
    pub backing_accesses: f64,
    /// Total energy of the step.
    pub energy: Energy,
    /// Total cycles of the step.
    pub cycles: f64,
    /// MAC-weighted compute utilization of the step, in (0, 1].
    pub utilization: f64,
}

/// Nearest-rank percentiles over a latency sample, in seconds.
///
/// All three are 0.0 for an empty sample — consistent with the
/// guarded aggregate accessors on [`ServingEvaluation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `samples` (order irrelevant).
    ///
    /// Textbook nearest rank, computed in integers: the P-th percentile
    /// of `n` sorted samples is the one at rank `ceil(P·n/100)`
    /// (1-based). The previous float formulation (`(q * n).ceil()`)
    /// drifted off by one whenever `q·n` landed an ulp above an integer
    /// — `0.95 × 20 = 19.000000000000004` rounded up to rank 20 —
    /// which exact-value tests now pin.
    pub fn from_samples(mut samples: Vec<f64>) -> Percentiles {
        samples.sort_by(f64::total_cmp);
        let rank = |percent: usize| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let rank = (percent * samples.len()).div_ceil(100).max(1);
            samples[rank - 1]
        };
        Percentiles {
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
        }
    }
}

/// The latency record of one request through an evaluated trace, in
/// cycles at the evaluated system's clock. Cycle timestamps are
/// cumulative evaluated step durations: a step's tokens all complete
/// at the step's end, and the request clock starts at the beginning of
/// the first busy step at or after the request's arrival step (idle
/// gaps are fast-forwarded — a work-conserving server starts prefill
/// the moment a request reaches an idle machine).
#[derive(Debug, Clone)]
pub struct RequestLatency {
    /// Index of the request in its mix.
    pub request: usize,
    /// When the request arrived.
    pub arrival_cycles: f64,
    /// When the request first occupied a slot (prefill or decode).
    pub admission_cycles: f64,
    /// When the request's first generated token completed.
    pub first_token_cycles: f64,
    /// When the request's last token completed.
    pub retire_cycles: f64,
    /// Tokens the request generated.
    pub generated: usize,
    /// Gaps between consecutive token completions (length
    /// `generated - 1`).
    pub token_gap_cycles: Vec<f64>,
}

impl RequestLatency {
    /// Time to first token: arrival to first generated-token
    /// completion (queueing + prefill + the first decode step).
    pub fn ttft_cycles(&self) -> f64 {
        self.first_token_cycles - self.arrival_cycles
    }

    /// Time the request queued before taking a slot.
    pub fn queue_cycles(&self) -> f64 {
        self.admission_cycles - self.arrival_cycles
    }
}

/// The reduced result of a serving sweep: per-step points plus the
/// aggregates serving actually optimizes for.
#[derive(Debug, Clone)]
pub struct ServingEvaluation {
    /// Decode slots of the schedule the sweep evaluated.
    pub capacity: usize,
    /// The KV rounding quantum the steps were lowered with: the bucket
    /// for [`serving_sweep`]/[`serving_trace`], the page for a
    /// [`serving_trace_with`] under [`KvLayout::Paged`].
    pub kv_bucket: usize,
    /// One point per scheduler step, execution order.
    pub points: Vec<ServingStepPoint>,
    /// Per-request latency records, ordered by request index. For the
    /// closed-loop [`serving_sweep`] every arrival is step 0, so TTFT
    /// measures pure queueing + first decode.
    pub requests: Vec<RequestLatency>,
}

impl ServingEvaluation {
    /// Tokens generated over the whole trace.
    pub fn total_tokens(&self) -> u64 {
        self.points.iter().map(|p| p.occupancy as u64).sum()
    }

    /// Total MACs of the trace (padded accounting).
    pub fn total_macs(&self) -> u64 {
        self.points.iter().map(|p| p.macs).sum()
    }

    /// Total energy of the trace.
    pub fn total_energy(&self) -> Energy {
        self.points
            .iter()
            .fold(Energy::ZERO, |acc, p| acc + p.energy)
    }

    /// Total cycles of the trace.
    pub fn total_cycles(&self) -> f64 {
        self.points.iter().map(|p| p.cycles).sum()
    }

    /// Prompt tokens prefilled over the whole trace.
    pub fn total_prefill_tokens(&self) -> u64 {
        self.points.iter().map(|p| p.prefill_tokens as u64).sum()
    }

    /// Element accesses at the outermost (backing-store) architecture
    /// level over the whole trace — the DRAM-traffic axis of the
    /// bucketed-vs-paged comparison.
    pub fn total_backing_accesses(&self) -> f64 {
        self.points.iter().map(|p| p.backing_accesses).sum()
    }

    /// Aggregate serving throughput in generated tokens per second:
    /// every step's tokens over every step's wall time at `clock`.
    /// 0.0 for an empty or zero-cycle trace, like every other
    /// aggregate here — a degenerate trace reports zeros, never NaN.
    pub fn tokens_per_second(&self, clock: Frequency) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0.0 {
            return 0.0;
        }
        self.total_tokens() as f64 / (cycles * clock.period().seconds())
    }

    /// Aggregate energy per generated token, in picojoules; 0.0 for a
    /// trace that generated no tokens.
    pub fn pj_per_token(&self) -> f64 {
        let tokens = self.total_tokens();
        if tokens == 0 {
            return 0.0;
        }
        self.total_energy().picojoules() / tokens as f64
    }

    /// Aggregate energy per MAC, in picojoules; 0.0 for an empty
    /// trace.
    pub fn pj_per_mac(&self) -> f64 {
        let macs = self.total_macs();
        if macs == 0 {
            return 0.0;
        }
        self.total_energy().picojoules() / macs as f64
    }

    /// Mean decode-slot occupancy over the trace: in (0, 1] for a
    /// trace with steps, 0.0 for an empty one.
    pub fn mean_occupancy(&self) -> f64 {
        let steps = self.points.len();
        if steps == 0 {
            return 0.0;
        }
        self.total_tokens() as f64 / (steps * self.capacity) as f64
    }

    /// MAC-weighted compute utilization over the whole trace; 0.0 for
    /// an empty trace.
    pub fn average_utilization(&self) -> f64 {
        let total = self.total_macs() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.utilization * p.macs as f64 / total)
            .sum()
    }

    /// Time-to-first-token percentiles over all requests, in seconds
    /// of wall time at `clock`.
    pub fn ttft_percentiles(&self, clock: Frequency) -> Percentiles {
        let period = clock.period().seconds();
        Percentiles::from_samples(
            self.requests
                .iter()
                .map(|r| r.ttft_cycles() * period)
                .collect(),
        )
    }

    /// Time-between-tokens percentiles, pooled over every consecutive
    /// token pair of every request, in seconds at `clock`.
    pub fn tbt_percentiles(&self, clock: Frequency) -> Percentiles {
        let period = clock.period().seconds();
        Percentiles::from_samples(
            self.requests
                .iter()
                .flat_map(|r| r.token_gap_cycles.iter().map(|g| g * period))
                .collect(),
        )
    }
}

/// Step membership on the wall clock, the input latency accounting
/// needs alongside the evaluated per-step cycles.
struct StepMembers {
    wall: usize,
    decode: Vec<usize>,
    prefill: Vec<usize>,
}

/// Folds evaluated step durations into per-request latency records.
/// `arrivals` maps request index to arrival step; `None` means
/// everything arrived at step 0 (the closed loop).
fn request_latencies(
    arrivals: Option<&[usize]>,
    steps: &[StepMembers],
    cycles: &[f64],
) -> Vec<RequestLatency> {
    use std::collections::BTreeMap;
    // (wall, start-time) per emitted step, to resolve arrival steps —
    // which may fall in a fast-forwarded idle gap — onto the cycle
    // clock of the first busy step at or after them.
    let mut spans = Vec::with_capacity(steps.len());
    let mut records: BTreeMap<usize, RequestLatency> = BTreeMap::new();
    let mut now = 0.0;
    for (step, &dur) in steps.iter().zip(cycles) {
        let (start, end) = (now, now + dur);
        spans.push((step.wall, start));
        now = end;
        for &request in step.prefill.iter().chain(&step.decode) {
            records.entry(request).or_insert(RequestLatency {
                request,
                arrival_cycles: 0.0,
                admission_cycles: start,
                first_token_cycles: f64::NAN,
                retire_cycles: end,
                generated: 0,
                token_gap_cycles: Vec::new(),
            });
        }
        for &request in &step.decode {
            // Every decoding slot completes one token at step end.
            let record = records
                .get_mut(&request)
                .expect("decoding request was just inserted");
            if record.generated == 0 {
                record.first_token_cycles = end;
            } else {
                record.token_gap_cycles.push(end - record.retire_cycles);
            }
            record.generated += 1;
            record.retire_cycles = end;
        }
    }
    let mut records: Vec<RequestLatency> = records.into_values().collect();
    if let Some(arrivals) = arrivals {
        for record in &mut records {
            let wall = arrivals.get(record.request).copied().unwrap_or(0);
            // First emitted step at or after the arrival step: its
            // start is when the server could first see the request.
            record.arrival_cycles = spans
                .iter()
                .find(|&&(w, _)| w >= wall)
                .map_or(0.0, |&(_, start)| start);
        }
    }
    records
}

/// Element accesses at the outermost architecture level of one
/// evaluated step network: the backing store's read+write+conversion
/// traffic, summed over the step's layers. (`LayerAnalysis::levels` is
/// outermost-first, so index 0 is the DRAM-like level.)
fn step_backing_accesses(eval: &NetworkEvaluation) -> f64 {
    eval.per_layer
        .iter()
        .filter_map(|l| l.analysis.levels.first())
        .map(lumen_mapper::LevelTraffic::total_accesses)
        .sum()
}

/// Evaluates every step of `schedule` — lowered by `model` at
/// `kv_bucket` — through `session`, in execution order against the
/// session's shared cache.
///
/// Steps with the same bucketed active-set composition share every layer
/// signature, so the sweep's mapping-search cost is bounded by the
/// number of distinct *(padded attend length, group size)* pairs the
/// schedule visits, not its step count; check
/// [`cache_stats`](EvalSession::cache_stats) afterwards for the
/// accounting.
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first step (in execution order)
/// with an unmappable layer.
pub fn serving_sweep(
    session: &EvalSession,
    model: &ServingModel,
    schedule: &BatchSchedule,
    kv_bucket: usize,
    options: &NetworkOptions,
) -> Result<ServingEvaluation, SystemError> {
    let points = schedule
        .steps()
        .iter()
        .enumerate()
        .map(|(step, state)| {
            let net = model.lower_step(&state.kv_lens(), kv_bucket);
            let eval = session.evaluate_network(&net, options)?;
            Ok(ServingStepPoint {
                step,
                occupancy: state.occupancy(),
                prefill_tokens: 0,
                macs: eval.macs,
                backing_accesses: step_backing_accesses(&eval),
                energy: eval.energy.total(),
                cycles: eval.cycles,
                utilization: eval.average_utilization(),
            })
        })
        .collect::<Result<Vec<_>, SystemError>>()?;
    let members: Vec<StepMembers> = schedule
        .steps()
        .iter()
        .enumerate()
        .map(|(wall, state)| StepMembers {
            wall,
            decode: state.active().iter().map(|s| s.request).collect(),
            prefill: Vec::new(),
        })
        .collect();
    let cycles: Vec<f64> = points.iter().map(|p| p.cycles).collect();
    let requests = request_latencies(None, &members, &cycles);
    Ok(ServingEvaluation {
        capacity: schedule.capacity(),
        kv_bucket,
        points,
        requests,
    })
}

/// Evaluates every emitted step of an event-driven [`ServingSchedule`]
/// — decode groups *and* prefill chunks, lowered by
/// [`ServingModel::lower_serving_step`] — through `session`, and folds
/// the evaluated step durations into per-request latency records:
/// TTFT/TBT are read off [`ServingEvaluation::ttft_percentiles`] /
/// [`ServingEvaluation::tbt_percentiles`] in real time at the system
/// clock.
///
/// This is where the free-prefill bug dies: a request's prompt costs
/// MACs, energy and cycles in the step(s) that prefill it, so a
/// one-request trace's totals equal the prefill + decode closed forms
/// ([`ServingModel::prefill_macs`] + [`ServingModel::step_macs`]).
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first step (in execution order)
/// with an unmappable layer.
pub fn serving_trace(
    session: &EvalSession,
    model: &ServingModel,
    schedule: &ServingSchedule,
    kv_bucket: usize,
    options: &NetworkOptions,
) -> Result<ServingEvaluation, SystemError> {
    serving_trace_with(
        session,
        model,
        schedule,
        &KvLayout::Bucketed { bucket: kv_bucket },
        options,
    )
}

/// [`serving_trace`] under an explicit KV residency [`KvLayout`]:
/// [`KvLayout::Bucketed`] reproduces `serving_trace` exactly, while
/// [`KvLayout::Paged`] lowers every step through
/// [`ServingModel::lower_serving_step_with`] — attend lengths padded to
/// the page instead of the bucket, shared-prefix copy-on-write charged
/// on each sharer's first private chunk. Because a page divides the
/// usual bucket, the paged trace's backing-store traffic
/// ([`ServingEvaluation::total_backing_accesses`]) is bounded above by
/// the bucketed trace's — the delta is the padding waste the page
/// table eliminates.
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first step (in execution order)
/// with an unmappable layer.
pub fn serving_trace_with(
    session: &EvalSession,
    model: &ServingModel,
    schedule: &ServingSchedule,
    layout: &KvLayout,
    options: &NetworkOptions,
) -> Result<ServingEvaluation, SystemError> {
    let points = schedule
        .steps()
        .iter()
        .enumerate()
        .map(|(step, state)| {
            let net = model.lower_serving_step_with(state, layout);
            let eval = session.evaluate_network(&net, options)?;
            Ok(ServingStepPoint {
                step,
                occupancy: state.decode().len(),
                prefill_tokens: state.prefill_tokens(),
                macs: eval.macs,
                backing_accesses: step_backing_accesses(&eval),
                energy: eval.energy.total(),
                cycles: eval.cycles,
                utilization: eval.average_utilization(),
            })
        })
        .collect::<Result<Vec<_>, SystemError>>()?;
    let members: Vec<StepMembers> = schedule
        .steps()
        .iter()
        .map(|state| StepMembers {
            wall: state.wall(),
            decode: state.decode().iter().map(|s| s.request).collect(),
            prefill: state.prefill().iter().map(|s| s.request).collect(),
        })
        .collect();
    let cycles: Vec<f64> = points.iter().map(|p| p.cycles).collect();
    let requests = request_latencies(Some(schedule.arrivals()), &members, &cycles);
    Ok(ServingEvaluation {
        capacity: schedule.capacity(),
        kv_bucket: layout.quantum(),
        points,
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingStrategy, System};
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_workload::serving::RequestMix;
    use lumen_workload::{Dim, DimSet, TensorSet};

    fn session() -> EvalSession {
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        EvalSession::new(System::new(arch, MappingStrategy::default()))
    }

    #[test]
    fn sweep_aggregates_match_schedule() {
        let session = session();
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(4, 100, 4);
        let schedule = BatchSchedule::build(&mix, 2);
        let result =
            serving_sweep(&session, &model, &schedule, 64, &NetworkOptions::baseline()).unwrap();
        assert_eq!(result.points.len(), schedule.total_steps());
        assert_eq!(result.total_tokens(), mix.total_output_tokens());
        assert!((result.mean_occupancy() - schedule.mean_occupancy()).abs() < 1e-12);
        // Per-step MACs match the lowering's closed form.
        for (point, step) in result.points.iter().zip(schedule.steps()) {
            assert_eq!(point.macs, model.step_macs(&step.kv_lens(), 64));
            assert!(point.energy > Energy::ZERO);
            assert!(point.cycles > 0.0);
            assert!(point.utilization > 0.0 && point.utilization <= 1.0 + 1e-9);
        }
        assert!(result.pj_per_token() > 0.0);
        assert!(result.pj_per_mac() > 0.0);
        assert!(result.tokens_per_second(Frequency::from_gigahertz(1.0)) > 0.0);
        let util = result.average_utilization();
        assert!(util > 0.0 && util <= 1.0 + 1e-9);
        // The uniform full-occupancy trace revisits one composition:
        // mapping searches stay a tiny fraction of the layer evals.
        let stats = session.cache_stats();
        assert!(stats.hit_rate() > 0.8, "hit rate {:.3}", stats.hit_rate());
    }

    #[test]
    fn empty_and_degenerate_traces_report_zeros_not_nan() {
        let empty = ServingEvaluation {
            capacity: 4,
            kv_bucket: 64,
            points: Vec::new(),
            requests: Vec::new(),
        };
        let clock = Frequency::from_gigahertz(1.0);
        // All five aggregates guard the division the same way.
        assert_eq!(empty.tokens_per_second(clock), 0.0);
        assert_eq!(empty.pj_per_token(), 0.0);
        assert_eq!(empty.pj_per_mac(), 0.0);
        assert_eq!(empty.mean_occupancy(), 0.0);
        assert_eq!(empty.average_utilization(), 0.0);
        let p = empty.ttft_percentiles(clock);
        assert_eq!((p.p50, p.p95, p.p99), (0.0, 0.0, 0.0));
        assert_eq!(empty.tbt_percentiles(clock).p99, 0.0);

        // A trace whose steps carry no work (all-zero point) stays
        // finite too.
        let degenerate = ServingEvaluation {
            capacity: 1,
            kv_bucket: 64,
            points: vec![ServingStepPoint {
                step: 0,
                occupancy: 0,
                prefill_tokens: 0,
                macs: 0,
                backing_accesses: 0.0,
                energy: Energy::ZERO,
                cycles: 0.0,
                utilization: 0.0,
            }],
            requests: Vec::new(),
        };
        assert_eq!(degenerate.tokens_per_second(clock), 0.0);
        assert_eq!(degenerate.pj_per_token(), 0.0);
        assert_eq!(degenerate.pj_per_mac(), 0.0);
        assert_eq!(degenerate.mean_occupancy(), 0.0);
        assert_eq!(degenerate.average_utilization(), 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let p = Percentiles::from_samples((1..=100).map(f64::from).collect());
        assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
        let single = Percentiles::from_samples(vec![7.0]);
        assert_eq!((single.p50, single.p95, single.p99), (7.0, 7.0, 7.0));
        let two = Percentiles::from_samples(vec![3.0, 1.0]);
        assert_eq!(two.p50, 1.0);
        assert_eq!(two.p99, 3.0);
    }

    #[test]
    fn percentiles_match_the_textbook_ranks_exactly() {
        // n = 20 is the float-drift regression: 0.95 × 20 =
        // 19.000000000000004, whose ceil() is 20 — one rank too high.
        // Textbook nearest rank: ceil(95·20/100) = 19.
        let p = Percentiles::from_samples((1..=20).map(f64::from).collect());
        assert_eq!((p.p50, p.p95, p.p99), (10.0, 19.0, 20.0));
        // Same drift class at n = 40: ceil(0.95·40) must be 38, and
        // p50 of an even count is the lower of the middle pair.
        let p = Percentiles::from_samples((1..=40).map(f64::from).collect());
        assert_eq!((p.p50, p.p95, p.p99), (20.0, 38.0, 40.0));
        // Two samples: rank(50) = ceil(100/100) = 1, rank(95) =
        // ceil(190/100) = 2.
        let p = Percentiles::from_samples(vec![1.0, 3.0]);
        assert_eq!((p.p50, p.p95, p.p99), (1.0, 3.0, 3.0));
        // Three samples: p50 is the true median.
        let p = Percentiles::from_samples(vec![5.0, 1.0, 3.0]);
        assert_eq!((p.p50, p.p95, p.p99), (3.0, 5.0, 5.0));
        // Unsorted input and an exact-boundary count (n = 200, all
        // ranks integral before rounding).
        let mut v: Vec<f64> = (1..=200).map(f64::from).collect();
        v.reverse();
        let p = Percentiles::from_samples(v);
        assert_eq!((p.p50, p.p95, p.p99), (100.0, 190.0, 198.0));
    }

    #[test]
    fn paged_layout_trims_backing_traffic_and_macs() {
        use lumen_workload::serving::{PageTable, PrefillMode, ServingConfig};

        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(2, 100, 6);
        let config =
            ServingConfig::new(2).with_prefill(PrefillMode::OnAdmission { chunk: Some(64) });
        let schedule = ServingSchedule::build(&mix, &config);
        let options = NetworkOptions::baseline();

        let bucketed = serving_trace(&session(), &model, &schedule, 256, &options).unwrap();
        assert!(bucketed.total_backing_accesses() > 0.0);
        let paged = serving_trace_with(
            &session(),
            &model,
            &schedule,
            &KvLayout::Paged(PageTable::new(16)),
            &options,
        )
        .unwrap();
        assert_eq!(paged.kv_bucket, 16);
        // Page 16 divides bucket 256: every paged attend length is ≤
        // its bucketed counterpart, so MACs and backing traffic are
        // bounded by the bucketed trace's.
        assert!(paged.total_macs() <= bucketed.total_macs());
        assert!(paged.total_backing_accesses() <= bucketed.total_backing_accesses());
        assert!(
            paged.total_backing_accesses() < bucketed.total_backing_accesses(),
            "kv 100..106 pads to 256 under the bucket but to ≤112 under page 16"
        );
        // Same schedule, same tokens — only the residency accounting
        // moved.
        assert_eq!(paged.total_tokens(), bucketed.total_tokens());
        assert_eq!(
            paged.total_prefill_tokens(),
            bucketed.total_prefill_tokens()
        );

        // A bucketed trace through the explicit-layout entry point is
        // the legacy path exactly.
        let via_layout = serving_trace_with(
            &session(),
            &model,
            &schedule,
            &KvLayout::Bucketed { bucket: 256 },
            &options,
        )
        .unwrap();
        assert_eq!(via_layout.total_macs(), bucketed.total_macs());
        assert_eq!(
            via_layout.total_backing_accesses(),
            bucketed.total_backing_accesses()
        );
    }

    #[test]
    fn shared_prefix_saves_prefill_work_and_charges_cow() {
        use lumen_workload::serving::{PageTable, PrefillMode, ServingConfig};

        let model = ServingModel::gpt2_small();
        let config =
            ServingConfig::new(4).with_prefill(PrefillMode::OnAdmission { chunk: Some(64) });
        let options = NetworkOptions::baseline();
        // 42 is deliberately page-misaligned at page 16: 32 full shared
        // tokens + a 10-token tail each sharer copies.
        let table = PageTable::new(16).with_shared_prefix(42);
        let plain_mix = RequestMix::uniform(4, 128, 4);
        let shared_mix = RequestMix::uniform(4, 128, 4).with_shared_prefix(42);

        let plain = serving_trace_with(
            &session(),
            &model,
            &ServingSchedule::build(&plain_mix, &config),
            &KvLayout::Paged(PageTable::new(16)),
            &options,
        )
        .unwrap();
        let shared = serving_trace_with(
            &session(),
            &model,
            &ServingSchedule::build(&shared_mix, &config),
            &KvLayout::Paged(table),
            &options,
        )
        .unwrap();
        // Three sharers skip 42 prompt tokens each.
        assert_eq!(
            plain.total_prefill_tokens() - shared.total_prefill_tokens(),
            3 * 42
        );
        assert!(shared.total_macs() < plain.total_macs());
        assert!(shared.total_energy() < plain.total_energy());
        // Decode output is untouched.
        assert_eq!(shared.total_tokens(), plain.total_tokens());
    }

    #[test]
    fn trace_charges_prefill_and_records_latencies() {
        use lumen_workload::serving::{PrefillMode, ServingConfig};

        let session = session();
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(1, 100, 4);
        let config = ServingConfig::new(1).with_prefill(PrefillMode::OnAdmission { chunk: None });
        let schedule = ServingSchedule::build(&mix, &config);
        let result =
            serving_trace(&session, &model, &schedule, 64, &NetworkOptions::baseline()).unwrap();

        // One prefill step + four decode steps.
        assert_eq!(result.points.len(), 5);
        assert_eq!(result.total_prefill_tokens(), 100);
        assert_eq!(result.total_tokens(), 4);
        // The one-request totals are exactly prefill + decode closed
        // forms — the accounting the resident-prefill path never had.
        let expect = model.prefill_macs(100, None, 64)
            + model.step_macs(&[100], 64)
            + model.step_macs(&[101], 64)
            + model.step_macs(&[102], 64)
            + model.step_macs(&[103], 64);
        assert_eq!(result.total_macs(), expect);

        assert_eq!(result.requests.len(), 1);
        let r = &result.requests[0];
        assert_eq!(r.generated, 4);
        assert_eq!(r.arrival_cycles, 0.0);
        assert_eq!(r.admission_cycles, 0.0);
        // First token completes after prefill + one decode step.
        let prefill_cycles = result.points[0].cycles;
        assert!(r.ttft_cycles() > prefill_cycles);
        assert_eq!(r.token_gap_cycles.len(), 3);
        assert!(r.token_gap_cycles.iter().all(|&g| g > 0.0));
        assert!(r.retire_cycles <= result.total_cycles() + 1e-9);

        let clock = Frequency::from_gigahertz(1.0);
        let ttft = result.ttft_percentiles(clock);
        assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p99);
        let tbt = result.tbt_percentiles(clock);
        assert!(tbt.p50 > 0.0 && tbt.p99 >= tbt.p50);
    }

    #[test]
    fn resident_prefill_under_counts_the_same_mix() {
        // The bugfix demonstrated head-on: the same one-request trace
        // costs strictly more once prefill is charged, by exactly the
        // prefill closed form.
        use lumen_workload::serving::{PrefillMode, ServingConfig};

        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(1, 100, 4);
        let charged = serving_trace(
            &session(),
            &model,
            &ServingSchedule::build(
                &mix,
                &ServingConfig::new(1).with_prefill(PrefillMode::OnAdmission { chunk: None }),
            ),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        let resident = serving_trace(
            &session(),
            &model,
            &ServingSchedule::build(
                &mix,
                &ServingConfig::new(1).with_prefill(PrefillMode::Resident),
            ),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        assert_eq!(
            charged.total_macs() - resident.total_macs(),
            model.prefill_macs(100, None, 64),
            "the resident path under-counts by exactly the prefill work"
        );
        assert!(charged.total_energy() > resident.total_energy());
        assert!(charged.total_cycles() > resident.total_cycles());
    }

    #[test]
    fn occupancy_improves_energy_per_token() {
        // Same mix, one slot vs eight slots: higher occupancy shares the
        // projection weight traffic across the group, so energy per
        // token at capacity 8 must not exceed the serial schedule's.
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(8, 100, 2);
        let serial = serving_sweep(
            &session(),
            &model,
            &BatchSchedule::build(&mix, 1),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        let batched = serving_sweep(
            &session(),
            &model,
            &BatchSchedule::build(&mix, 8),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        assert_eq!(serial.total_tokens(), batched.total_tokens());
        assert!((serial.mean_occupancy() - 1.0).abs() < 1e-12);
        assert!((batched.mean_occupancy() - 1.0).abs() < 1e-12);
        assert!(
            batched.pj_per_token() <= serial.pj_per_token() * 1.0001,
            "batched {:.1} vs serial {:.1} pJ/token",
            batched.pj_per_token(),
            serial.pj_per_token()
        );
    }
}
