//! Serving-trace evaluation: driving a continuous-batching schedule
//! through an [`EvalSession`].
//!
//! [`serving_sweep`] evaluates every step of a
//! [`BatchSchedule`](lumen_workload::BatchSchedule) — each step lowered
//! to bucketed decode layers by a
//! [`ServingModel`](lumen_workload::ServingModel) — against one session,
//! and reduces the trace to per-step and aggregate serving metrics:
//! generated tokens per second, energy per token, slot occupancy and
//! MAC-weighted compute utilization.
//!
//! The step networks are pure functions of each step's *bucketed
//! composition* (the multiset of padded attend lengths with group
//! sizes), so a thousand-step schedule revisits a handful of distinct
//! compositions and the session's content-addressed cache answers almost
//! every layer without a mapping search — the same economics that make
//! [`crate::decode::decode_sweep`] affordable, extended to mixed-length
//! traffic.
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_core::serving::serving_sweep;
//! use lumen_core::{EvalSession, MappingStrategy, NetworkOptions, System};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::serving::{BatchSchedule, RequestMix, ServingModel};
//! use lumen_workload::{Dim, DimSet, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("glb", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.05))
//!     .build()
//!     .unwrap();
//!
//! let session = EvalSession::new(System::new(arch, MappingStrategy::default()));
//! let schedule = BatchSchedule::build(&RequestMix::uniform(4, 100, 4), 2);
//! let result = serving_sweep(
//!     &session,
//!     &ServingModel::gpt2_small(),
//!     &schedule,
//!     64,
//!     &NetworkOptions::baseline(),
//! )
//! .unwrap();
//! assert_eq!(result.total_tokens(), 16);
//! assert!(result.pj_per_token() > 0.0);
//! ```

use crate::{EvalSession, NetworkOptions, SystemError};
use lumen_units::{Energy, Frequency};
use lumen_workload::serving::{BatchSchedule, ServingModel};

/// One scheduler step of a serving sweep, reduced to scalars so a long
/// trace stays cheap to hold.
#[derive(Debug, Clone)]
pub struct ServingStepPoint {
    /// Step index in the schedule.
    pub step: usize,
    /// Active requests this step (each generated one token).
    pub occupancy: usize,
    /// True MACs of the step's lowered network (padded accounting).
    pub macs: u64,
    /// Total energy of the step.
    pub energy: Energy,
    /// Total cycles of the step.
    pub cycles: f64,
    /// MAC-weighted compute utilization of the step, in (0, 1].
    pub utilization: f64,
}

/// The reduced result of a serving sweep: per-step points plus the
/// aggregates serving actually optimizes for.
#[derive(Debug, Clone)]
pub struct ServingEvaluation {
    /// Decode slots of the schedule the sweep evaluated.
    pub capacity: usize,
    /// The KV bucket the steps were lowered with.
    pub kv_bucket: usize,
    /// One point per scheduler step, execution order.
    pub points: Vec<ServingStepPoint>,
}

impl ServingEvaluation {
    /// Tokens generated over the whole trace.
    pub fn total_tokens(&self) -> u64 {
        self.points.iter().map(|p| p.occupancy as u64).sum()
    }

    /// Total MACs of the trace (padded accounting).
    pub fn total_macs(&self) -> u64 {
        self.points.iter().map(|p| p.macs).sum()
    }

    /// Total energy of the trace.
    pub fn total_energy(&self) -> Energy {
        self.points
            .iter()
            .fold(Energy::ZERO, |acc, p| acc + p.energy)
    }

    /// Total cycles of the trace.
    pub fn total_cycles(&self) -> f64 {
        self.points.iter().map(|p| p.cycles).sum()
    }

    /// Aggregate serving throughput in generated tokens per second:
    /// every step's tokens over every step's wall time at `clock`.
    pub fn tokens_per_second(&self, clock: Frequency) -> f64 {
        self.total_tokens() as f64 / (self.total_cycles() * clock.period().seconds())
    }

    /// Aggregate energy per generated token, in picojoules.
    pub fn pj_per_token(&self) -> f64 {
        self.total_energy().picojoules() / self.total_tokens() as f64
    }

    /// Aggregate energy per MAC, in picojoules.
    pub fn pj_per_mac(&self) -> f64 {
        self.total_energy().picojoules() / self.total_macs() as f64
    }

    /// Mean slot occupancy over the trace, in (0, 1].
    pub fn mean_occupancy(&self) -> f64 {
        let steps = self.points.len();
        if steps == 0 {
            return 0.0;
        }
        self.total_tokens() as f64 / (steps * self.capacity) as f64
    }

    /// MAC-weighted compute utilization over the whole trace.
    pub fn average_utilization(&self) -> f64 {
        let total = self.total_macs() as f64;
        self.points
            .iter()
            .map(|p| p.utilization * p.macs as f64 / total)
            .sum()
    }
}

/// Evaluates every step of `schedule` — lowered by `model` at
/// `kv_bucket` — through `session`, in execution order against the
/// session's shared cache.
///
/// Steps with the same bucketed active-set composition share every layer
/// signature, so the sweep's mapping-search cost is bounded by the
/// number of distinct *(padded attend length, group size)* pairs the
/// schedule visits, not its step count; check
/// [`cache_stats`](EvalSession::cache_stats) afterwards for the
/// accounting.
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first step (in execution order)
/// with an unmappable layer.
pub fn serving_sweep(
    session: &EvalSession,
    model: &ServingModel,
    schedule: &BatchSchedule,
    kv_bucket: usize,
    options: &NetworkOptions,
) -> Result<ServingEvaluation, SystemError> {
    let points = schedule
        .steps()
        .iter()
        .enumerate()
        .map(|(step, state)| {
            let net = model.lower_step(&state.kv_lens(), kv_bucket);
            let eval = session.evaluate_network(&net, options)?;
            Ok(ServingStepPoint {
                step,
                occupancy: state.occupancy(),
                macs: eval.macs,
                energy: eval.energy.total(),
                cycles: eval.cycles,
                utilization: eval.average_utilization(),
            })
        })
        .collect::<Result<Vec<_>, SystemError>>()?;
    Ok(ServingEvaluation {
        capacity: schedule.capacity(),
        kv_bucket,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingStrategy, System};
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_workload::serving::RequestMix;
    use lumen_workload::{Dim, DimSet, TensorSet};

    fn session() -> EvalSession {
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        EvalSession::new(System::new(arch, MappingStrategy::default()))
    }

    #[test]
    fn sweep_aggregates_match_schedule() {
        let session = session();
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(4, 100, 4);
        let schedule = BatchSchedule::build(&mix, 2);
        let result =
            serving_sweep(&session, &model, &schedule, 64, &NetworkOptions::baseline()).unwrap();
        assert_eq!(result.points.len(), schedule.total_steps());
        assert_eq!(result.total_tokens(), mix.total_output_tokens());
        assert!((result.mean_occupancy() - schedule.mean_occupancy()).abs() < 1e-12);
        // Per-step MACs match the lowering's closed form.
        for (point, step) in result.points.iter().zip(schedule.steps()) {
            assert_eq!(point.macs, model.step_macs(&step.kv_lens(), 64));
            assert!(point.energy > Energy::ZERO);
            assert!(point.cycles > 0.0);
            assert!(point.utilization > 0.0 && point.utilization <= 1.0 + 1e-9);
        }
        assert!(result.pj_per_token() > 0.0);
        assert!(result.pj_per_mac() > 0.0);
        assert!(result.tokens_per_second(Frequency::from_gigahertz(1.0)) > 0.0);
        let util = result.average_utilization();
        assert!(util > 0.0 && util <= 1.0 + 1e-9);
        // The uniform full-occupancy trace revisits one composition:
        // mapping searches stay a tiny fraction of the layer evals.
        let stats = session.cache_stats();
        assert!(stats.hit_rate() > 0.8, "hit rate {:.3}", stats.hit_rate());
    }

    #[test]
    fn occupancy_improves_energy_per_token() {
        // Same mix, one slot vs eight slots: higher occupancy shares the
        // projection weight traffic across the group, so energy per
        // token at capacity 8 must not exceed the serial schedule's.
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(8, 100, 2);
        let serial = serving_sweep(
            &session(),
            &model,
            &BatchSchedule::build(&mix, 1),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        let batched = serving_sweep(
            &session(),
            &model,
            &BatchSchedule::build(&mix, 8),
            64,
            &NetworkOptions::baseline(),
        )
        .unwrap();
        assert_eq!(serial.total_tokens(), batched.total_tokens());
        assert!((serial.mean_occupancy() - 1.0).abs() < 1e-12);
        assert!((batched.mean_occupancy() - 1.0).abs() < 1e-12);
        assert!(
            batched.pj_per_token() <= serial.pj_per_token() * 1.0001,
            "batched {:.1} vs serial {:.1} pJ/token",
            batched.pj_per_token(),
            serial.pj_per_token()
        );
    }
}
