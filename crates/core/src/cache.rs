//! Content-addressed evaluation: a shared mapping/eval cache and the
//! [`EvalSession`] front end.
//!
//! Layer evaluation is a pure function of *(architecture, mapping
//! strategy, layer signature, fusion reroute)* — names, execution order
//! and the driver that asked are irrelevant. That makes the hot path of
//! every experiment memoizable: `bert-base` repeats one encoder block 12
//! times (96 layers, 5 unique signatures), ResNet18 repeats its residual
//! stages, and the figure drivers re-evaluate the same *(architecture,
//! layer)* pairs across dozens of sweep configurations.
//!
//! [`EvalSession`] wraps a [`System`] and memoizes
//! [`evaluate_layer`](EvalSession::evaluate_layer) behind a thread-safe
//! [`EvalCache`]; [`evaluate_network`](EvalSession::evaluate_network)
//! groups identical layers, evaluates each unique signature once (fanning
//! the unique work out over [`SweepRunner`] threads) and reassembles the
//! per-layer results in execution order — **bit-identical** to the
//! sequential [`System::evaluate_network`] path, which the golden suite
//! pins.
//!
//! Cache invalidation is by construction: keys embed content fingerprints
//! of the architecture and the strategy, so a changed device constant or
//! search seed simply misses. Sharing one [`EvalCache`] across sessions
//! (see [`EvalSession::with_cache`]) is how sweep drivers reuse work
//! between design points that share an architecture.
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_core::{EvalSession, MappingStrategy, NetworkOptions, System};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::{networks, Dim, DimSet, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("glb", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.05))
//!     .build()
//!     .unwrap();
//!
//! let session = EvalSession::new(System::new(arch, MappingStrategy::default()));
//! let eval = session
//!     .evaluate_network(&networks::bert_base(), &NetworkOptions::baseline())
//!     .unwrap();
//! // 96 layers, but mapping search ran only for the unique signatures.
//! assert_eq!(eval.per_layer.len(), 96);
//! assert_eq!(session.cache_stats().misses, 5);
//! assert_eq!(session.cache_stats().hits, 91);
//! ```

use crate::evaluator::MappingFn;
use crate::evaluator::Reroute;
use crate::network::fusion_reroute;
use crate::persist::{read_snapshot, write_snapshot, PersistEntry};
use crate::{
    EnergyBreakdown, LayerEvaluation, NetworkEvaluation, NetworkOptions, SweepRunner, System,
    SystemError,
};
use lumen_arch::Architecture;
use lumen_workload::{fnv1a_bytes, Layer, LayerSignature, Network, TensorKind};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A content fingerprint of an architecture, for evaluation-cache keys.
///
/// Hashes the architecture's complete `Debug` rendering, which spells out
/// every level, energy, capacity, fan-out and per-cycle cost with
/// round-trip `f64` formatting — two architectures with equal
/// fingerprints evaluate every layer identically.
pub fn arch_fingerprint(arch: &Architecture) -> u64 {
    fnv1a_bytes(b"arch", format!("{arch:?}").as_bytes())
}

/// Cache hit/miss counters of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a full mapping search + energy accounting.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// The key a cached layer evaluation is addressed by: everything the
/// result is a function of, and nothing else.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EvalKey {
    arch: u64,
    strategy: u64,
    signature: LayerSignature,
    reroute: Vec<(TensorKind, usize, usize)>,
}

/// A thread-safe, shareable map from [`EvalKey`]s to finished layer
/// evaluations (successes *and* mapping failures — a failed search is as
/// expensive as a successful one).
///
/// One cache may back many [`EvalSession`]s — including sessions over
/// *different* systems, since keys embed the architecture and strategy
/// fingerprints. Reads take a shared lock; only insertions of freshly
/// evaluated layers take the exclusive lock.
#[derive(Default)]
pub struct EvalCache {
    map: RwLock<HashMap<EvalKey, Result<LayerEvaluation, SystemError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Plain [`crate::MappingStrategy::Custom`] closures fingerprint by
    /// `Arc` address, which is only unique among *live* `Arc`s. Pinning a
    /// clone of every such `Arc` for the cache's lifetime closes the ABA
    /// hole: an address can never be freed and reused by a different
    /// closure while entries keyed on it are still servable.
    pinned_strategies: Mutex<Vec<Arc<MappingFn>>>,
    /// Snapshot file backing this cache, when persistent (see
    /// [`EvalCache::persistent_in`]).
    persist_path: Option<PathBuf>,
    /// Whether entries were inserted since the last successful save.
    dirty: AtomicBool,
    /// Strategy fingerprints that are only meaningful inside this
    /// process — address-fingerprinted `Custom` closures, whose `Arc`
    /// address another process (or a later run) could hand to a
    /// different closure. Entries keyed on these are never persisted.
    volatile_fps: Mutex<HashSet<u64>>,
}

impl fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// The snapshot filename inside a cache directory. The fingerprint
/// scheme version is part of the name, so a future scheme change starts
/// a fresh file instead of fighting the old one.
const SNAPSHOT_FILE: &str = "evalcache-v1.bin";

impl EvalCache {
    /// Creates an empty shareable cache.
    pub fn shared() -> Arc<EvalCache> {
        Arc::new(EvalCache::default())
    }

    /// Opens (or cold-starts) a **persistent** cache backed by a
    /// snapshot file in `dir`.
    ///
    /// An existing valid snapshot warm-starts the cache: every persisted
    /// evaluation is served bit-identically to a cold computation, since
    /// keys embed the stable content fingerprints and all floats are
    /// stored as raw bits. A missing, truncated, corrupt or
    /// version-mismatched snapshot silently yields an empty cache.
    ///
    /// New entries are flushed back atomically (temp file + rename) by
    /// [`EvalCache::save`] or on drop. Entries keyed on
    /// address-fingerprinted `Custom` strategies are never written out —
    /// their fingerprints do not survive the process.
    pub fn persistent_in(dir: &Path) -> Arc<EvalCache> {
        let path = dir.join(SNAPSHOT_FILE);
        let mut map = HashMap::new();
        if let Some(entries) = read_snapshot(&path) {
            for e in entries {
                let key = EvalKey {
                    arch: e.arch,
                    strategy: e.strategy,
                    signature: e.signature,
                    reroute: e.reroute,
                };
                map.insert(key, Ok(e.value));
            }
        }
        Arc::new(EvalCache {
            map: RwLock::new(map),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            pinned_strategies: Mutex::new(Vec::new()),
            persist_path: Some(path),
            dirty: AtomicBool::new(false),
            volatile_fps: Mutex::new(HashSet::new()),
        })
    }

    /// Writes the cache's successful entries to its snapshot file
    /// (no-op for non-persistent caches). Atomic: a concurrent reader
    /// sees either the old snapshot or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing the snapshot; the in-memory
    /// cache is unaffected either way.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.persist_path else {
            return Ok(());
        };
        let volatile = self.volatile_fps.lock().expect("volatile lock");
        let entries: Vec<PersistEntry> = self
            .map
            .read()
            .expect("cache lock")
            .iter()
            .filter(|(k, _)| !volatile.contains(&k.strategy))
            .filter_map(|(k, v)| {
                let value = v.as_ref().ok()?.clone();
                Some(PersistEntry {
                    arch: k.arch,
                    strategy: k.strategy,
                    signature: k.signature,
                    reroute: k.reroute.clone(),
                    value,
                })
            })
            .collect();
        drop(volatile);
        write_snapshot(path, &entries)?;
        self.dirty.store(false, Ordering::Relaxed);
        Ok(())
    }

    /// Keeps identity-fingerprinted strategy closures alive as long as
    /// the cache (see `pinned_strategies`), and marks their fingerprints
    /// volatile so persistence never writes entries keyed on them.
    fn pin_strategy(&self, strategy: &crate::MappingStrategy) {
        if let crate::MappingStrategy::Custom(f) = strategy {
            let mut pinned = self.pinned_strategies.lock().expect("pin lock");
            if !pinned.iter().any(|p| Arc::ptr_eq(p, f)) {
                pinned.push(Arc::clone(f));
            }
            drop(pinned);
            self.volatile_fps
                .lock()
                .expect("volatile lock")
                .insert(strategy.fingerprint());
        }
    }

    /// Number of distinct evaluations stored.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since construction (or the last [`clear`]).
    ///
    /// [`clear`]: EvalCache::clear
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry and resets the counters. Pinned strategy
    /// closures are kept: sessions attached before the clear may still
    /// insert entries under their identity fingerprints afterwards, so
    /// releasing the pins here could reopen the address-reuse hole.
    pub fn clear(&self) {
        self.map.write().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Drop for EvalCache {
    /// Persistent caches flush themselves when the last `Arc` drops.
    /// Save errors at this point have no caller to return to, but they
    /// must not vanish either — a full disk or revoked permission would
    /// otherwise silently cost every future run its warm start — so the
    /// failure is reported once on stderr and the drop continues (the
    /// next cold run simply re-pays the searches).
    fn drop(&mut self) {
        if self.persist_path.is_some() && self.dirty.load(Ordering::Relaxed) {
            if let Err(e) = self.save() {
                let path = self
                    .persist_path
                    .as_deref()
                    .map_or_else(String::new, |p| p.display().to_string());
                eprintln!("warning: failed to save the eval-cache snapshot to {path}: {e}");
            }
        }
    }
}

/// The process-wide persistent cache configured by the `LUMEN_CACHE_DIR`
/// environment variable (the CLI's `--cache-dir` flag sets it), if any.
/// Resolved once per process; every [`EvalSession`] with caching enabled
/// then shares this cache, warm-starting from its snapshot.
fn persistent_cache_from_env() -> Option<Arc<EvalCache>> {
    static CACHE: OnceLock<Option<Arc<EvalCache>>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = std::env::var_os("LUMEN_CACHE_DIR")?;
            if dir.is_empty() {
                return None;
            }
            Some(EvalCache::persistent_in(Path::new(&dir)))
        })
        .clone()
}

/// Flushes the process-wide persistent cache to disk, if `LUMEN_CACHE_DIR`
/// configured one and new entries were inserted since the last save. The
/// env-configured cache lives in a process-wide static whose `Drop`
/// never runs, so CLI entry points call this before exiting. The dirty
/// check keeps read-only invocations (`lumen cache`, failed argument
/// parses) from rewriting — or resurrecting a just-cleared — snapshot.
///
/// # Errors
///
/// Propagates snapshot-write I/O failures.
pub fn flush_persistent_cache() -> std::io::Result<()> {
    match persistent_cache_from_env() {
        Some(cache) if cache.dirty.load(Ordering::Relaxed) => cache.save(),
        _ => Ok(()),
    }
}

/// What [`inspect_cache_dir`] reports about a persistent cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistentCacheInfo {
    /// The snapshot file inspected.
    pub path: PathBuf,
    /// Snapshot size on disk in bytes.
    pub bytes: u64,
    /// Total persisted evaluations.
    pub entries: usize,
    /// Entry counts per `(arch fingerprint, strategy fingerprint)` pair,
    /// most-populated first.
    pub per_system: Vec<(u64, u64, usize)>,
}

/// Reads the snapshot in `dir` and summarizes it without touching the
/// process-wide cache. `None` if there is no valid snapshot (missing,
/// corrupt or version-mismatched — the same cases a session treats as
/// cold).
pub fn inspect_cache_dir(dir: &Path) -> Option<PersistentCacheInfo> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = std::fs::metadata(&path).ok()?.len();
    let entries = read_snapshot(&path)?;
    let mut counts: HashMap<(u64, u64), usize> = HashMap::new();
    for e in &entries {
        *counts.entry((e.arch, e.strategy)).or_insert(0) += 1;
    }
    let mut per_system: Vec<(u64, u64, usize)> =
        counts.into_iter().map(|((a, s), n)| (a, s, n)).collect();
    per_system.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
    Some(PersistentCacheInfo {
        path,
        bytes,
        entries: entries.len(),
        per_system,
    })
}

/// Deletes the snapshot in `dir`. Returns whether a snapshot existed.
///
/// # Errors
///
/// Propagates filesystem errors other than "not found".
pub fn clear_cache_dir(dir: &Path) -> std::io::Result<bool> {
    match std::fs::remove_file(dir.join(SNAPSHOT_FILE)) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// `true` unless the `LUMEN_EVAL_CACHE` environment variable disables
/// caching process-wide (`0` / `off` / `false` / `no`; the CLI's
/// `--no-cache` flag sets it). Resolved once per process.
fn cache_enabled_by_env() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("LUMEN_EVAL_CACHE") {
        Ok(value) => !matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    })
}

/// A [`System`] wrapped with a content-addressed evaluation cache and a
/// parallel network evaluator.
///
/// Construction fingerprints the architecture and strategy once; every
/// layer lookup then keys on `(arch fingerprint, strategy fingerprint,
/// LayerSignature, reroute)`. Results are bit-identical to the uncached
/// [`System`] paths: duplicates are answered with clones of the
/// representative evaluation, and network totals are merged in execution
/// order exactly as the sequential loop does.
#[derive(Debug)]
pub struct EvalSession {
    system: System,
    runner: SweepRunner,
    cache: Option<Arc<EvalCache>>,
    arch_fp: u64,
    strategy_fp: u64,
    /// Whether `evaluate_network` runs the static lint pass first and
    /// refuses to evaluate models with error-severity findings.
    preflight: bool,
    /// This session's own lookup counters. The backing [`EvalCache`]
    /// keeps process-wide totals; when the cache is shared, sessions
    /// running concurrently (parallel sweeps, parallel tests) would see
    /// each other's traffic in those, so [`cache_stats`] reports these
    /// per-session counters instead.
    ///
    /// [`cache_stats`]: EvalSession::cache_stats
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalSession {
    /// Wraps `system` with a fresh private cache and a default
    /// [`SweepRunner`] (machine parallelism, `LUMEN_SWEEP_THREADS`
    /// override). Caching is disabled process-wide when the
    /// `LUMEN_EVAL_CACHE` environment variable says so; when
    /// `LUMEN_CACHE_DIR` names a directory, the process-wide persistent
    /// cache backed by its snapshot is used instead of a private one.
    pub fn new(system: System) -> EvalSession {
        let cache = cache_enabled_by_env()
            .then(|| persistent_cache_from_env().unwrap_or_else(EvalCache::shared));
        EvalSession::build(system, cache, SweepRunner::new())
    }

    /// Wraps `system` sharing `cache` with other sessions (builder
    /// style). Keys embed the system fingerprints, so sessions over
    /// different systems can safely share one cache.
    ///
    /// When caching is off for this session — `without_cache()` was
    /// called, or the `LUMEN_EVAL_CACHE` environment variable disabled
    /// it process-wide — the argument is ignored and the session stays
    /// uncached. That precedence is load-bearing: it is how the CLI's
    /// `--no-cache` A/B escape hatch overrides the shared caches the
    /// figure drivers and `dse::sweep` pass in.
    ///
    /// Similarly, when `LUMEN_CACHE_DIR` configures a persistent cache,
    /// that cache is used instead of the argument: the figure drivers
    /// all pass in process-local shared caches, and substituting here is
    /// what lets their evaluations warm-start from (and flow back into)
    /// the snapshot. Keys embed the system fingerprints either way, so
    /// the substitution is behavior-preserving.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EvalCache>) -> EvalSession {
        if self.cache.is_some() {
            let cache = persistent_cache_from_env().unwrap_or(cache);
            cache.pin_strategy(self.system.strategy());
            self.cache = Some(cache);
        }
        self
    }

    /// Disables memoization for this session (builder style) — the A/B
    /// escape hatch behind the CLI's `--no-cache`. Unique-signature
    /// grouping in [`evaluate_network`](EvalSession::evaluate_network) is
    /// disabled too, so every layer evaluates exactly as the sequential
    /// path would.
    #[must_use]
    pub fn without_cache(mut self) -> EvalSession {
        self.cache = None;
        self
    }

    /// Uses `runner` for the unique-layer fan-out (builder style).
    /// Drivers that already parallelize an outer sweep pass
    /// `SweepRunner::with_threads(1)` to keep the thread count flat.
    #[must_use]
    pub fn with_runner(mut self, runner: SweepRunner) -> EvalSession {
        self.runner = runner;
        self
    }

    fn build(system: System, cache: Option<Arc<EvalCache>>, runner: SweepRunner) -> EvalSession {
        let arch_fp = arch_fingerprint(system.arch());
        let strategy_fp = system.strategy().fingerprint();
        if let Some(cache) = &cache {
            cache.pin_strategy(system.strategy());
        }
        EvalSession {
            system,
            runner,
            cache,
            arch_fp,
            strategy_fp,
            preflight: false,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Enables the static pre-flight pass (builder style):
    /// [`evaluate_network`](EvalSession::evaluate_network) first runs
    /// every default lint over the system and the network, and refuses
    /// to evaluate — [`SystemError::Preflight`] — when any
    /// error-severity diagnostic fires. Warnings never block.
    #[must_use]
    pub fn with_preflight(mut self) -> EvalSession {
        self.preflight = true;
        self
    }

    /// Runs the static lint pass over this session's architecture and
    /// strategy, plus `network` when given, without evaluating anything.
    pub fn preflight(&self, network: Option<&Network>) -> lumen_lint::Report {
        let facts = crate::strategy_facts(self.system.strategy());
        let mut target = lumen_lint::LintTarget::new()
            .with_arch(self.system.arch())
            .with_strategy(&facts);
        if let Some(network) = network {
            target = target.with_network(network);
        }
        lumen_lint::LintRegistry::with_default_lints().run(&target)
    }

    /// The wrapped system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The shared cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// Hit/miss counters of *this session's* lookups (zeros when caching
    /// is disabled). A shared [`EvalCache`] additionally keeps
    /// process-wide totals across every attached session — read those
    /// via [`EvalCache::stats`]; this accessor stays isolated from
    /// concurrent sessions, so before/after deltas are race-free.
    pub fn cache_stats(&self) -> CacheStats {
        if self.cache.is_none() {
            return CacheStats::default();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Maps and evaluates one layer, answering repeats of the same
    /// signature from the cache.
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] if no legal mapping exists; failures
    /// are cached too (a failed search costs as much as a success).
    pub fn evaluate_layer(&self, layer: &Layer) -> Result<LayerEvaluation, SystemError> {
        self.cached_eval(layer, &Reroute::default())
    }

    /// Evaluates every layer of `network` under `options` — same
    /// semantics and bit-identical results to
    /// [`System::evaluate_network`] — but evaluates each unique
    /// *(signature, reroute)* only once, fanning the unique work out over
    /// this session's [`SweepRunner`].
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] for the earliest (execution-order)
    /// layer that cannot be mapped, exactly as the sequential loop
    /// reports it.
    pub fn evaluate_network(
        &self,
        network: &Network,
        options: &NetworkOptions,
    ) -> Result<NetworkEvaluation, SystemError> {
        if self.preflight {
            let report = self.preflight(Some(network));
            if !report.is_clean() {
                let first = report
                    .diagnostics()
                    .iter()
                    .find(|d| d.severity == lumen_lint::Severity::Error)
                    .map(ToString::to_string)
                    .unwrap_or_default();
                return Err(SystemError::Preflight {
                    errors: report.errors(),
                    first,
                });
            }
        }
        let batch = options.batch.max(1);
        let batched = if batch > 1 {
            network.with_batch(batch)
        } else {
            network.clone()
        };
        let last = batched.layers().len().saturating_sub(1);

        // Group execution positions by (signature, reroute), keeping
        // first-occurrence order: the earliest unique key that fails is
        // exactly the layer the sequential walk would have failed on.
        let mut unique: Vec<(usize, Reroute)> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(batched.layers().len());
        let mut slots: HashMap<(LayerSignature, Reroute), usize> = HashMap::new();
        for (i, layer) in batched.layers().iter().enumerate() {
            let reroute = fusion_reroute(self.system.arch(), options.fusion.as_ref(), i, last);
            if self.cache.is_none() {
                // Uncached A/B mode: no grouping, evaluate every layer.
                slot_of.push(unique.len());
                unique.push((i, reroute));
                continue;
            }
            let next = unique.len();
            let slot = *slots
                .entry((layer.signature(), reroute.clone()))
                .or_insert_with(|| {
                    unique.push((i, reroute));
                    next
                });
            slot_of.push(slot);
        }

        // Deduplicated positions are cache hits in every sense that
        // matters — lookups answered without mapping search — so count
        // them before the unique work runs.
        if let Some(cache) = &self.cache {
            let deduped = (slot_of.len() - unique.len()) as u64;
            cache.hits.fetch_add(deduped, Ordering::Relaxed);
            self.hits.fetch_add(deduped, Ordering::Relaxed);
        }

        let evals: Vec<LayerEvaluation> = self.runner.try_run(unique, |(i, reroute)| {
            self.cached_eval(&batched.layers()[i], &reroute)
        })?;

        // Reassemble in execution order. Totals are merged per layer —
        // not scaled by multiplicity — so floating-point accumulation
        // matches the sequential path bit for bit.
        let mut per_layer = Vec::with_capacity(batched.layers().len());
        let mut energy = EnergyBreakdown::new();
        let mut cycles = 0u64;
        for (i, layer) in batched.layers().iter().enumerate() {
            let mut eval = evals[slot_of[i]].clone();
            eval.layer_name = layer.name().to_string();
            cycles += eval.analysis.cycles;
            energy.merge(&eval.energy);
            per_layer.push(eval);
        }

        let scale = 1.0 / batch as f64;
        Ok(NetworkEvaluation {
            network_name: batched.name().to_string(),
            per_layer,
            energy: energy.scaled(scale),
            cycles: cycles as f64 * scale,
            macs: network.total_macs(),
            batch,
        })
    }

    /// The memoized core: look up, else evaluate and publish. The
    /// returned evaluation (or error) always carries the *requested*
    /// layer's name, regardless of which identically-shaped layer
    /// populated the cache.
    fn cached_eval(
        &self,
        layer: &Layer,
        reroute: &Reroute,
    ) -> Result<LayerEvaluation, SystemError> {
        let Some(cache) = &self.cache else {
            return self.system.evaluate_layer_rerouted(layer, reroute);
        };
        let key = EvalKey {
            arch: self.arch_fp,
            strategy: self.strategy_fp,
            signature: layer.signature(),
            reroute: reroute.entries.clone(),
        };
        if let Some(found) = cache.map.read().expect("cache lock").get(&key) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return rename(found.clone(), layer.name());
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = self.system.evaluate_layer_rerouted(layer, reroute);
        // Two threads may race to evaluate the same key; both compute the
        // same (deterministic) result, so first-in wins harmlessly.
        cache
            .map
            .write()
            .expect("cache lock")
            .entry(key)
            .or_insert_with(|| outcome.clone());
        // Only successes are ever persisted, so failures need not dirty
        // the snapshot.
        if outcome.is_ok() {
            cache.dirty.store(true, Ordering::Relaxed);
        }
        outcome
    }
}

/// Stamps the requested layer's name onto a cached outcome.
fn rename(
    outcome: Result<LayerEvaluation, SystemError>,
    name: &str,
) -> Result<LayerEvaluation, SystemError> {
    match outcome {
        Ok(mut eval) => {
            eval.layer_name = name.to_string();
            Ok(eval)
        }
        Err(SystemError::NoMapping { cause, .. }) => Err(SystemError::NoMapping {
            layer: name.to_string(),
            cause,
        }),
        // Pre-flight failures are not per-layer; nothing to rename.
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingStrategy;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_mapper::search::SearchConfig;
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{Dim, DimSet, TensorSet};

    fn toy_arch(mac_pj: f64) -> Architecture {
        ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(mac_pj),
            )
            .build()
            .unwrap()
    }

    fn toy_system() -> System {
        System::new(toy_arch(0.05), MappingStrategy::default())
    }

    fn repeated_net() -> Network {
        Network::new("rep")
            .push(Layer::conv2d("a0", 1, 8, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("b", 1, 16, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("a1", 1, 8, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("a2", 1, 8, 8, 8, 8, 3, 3))
    }

    #[test]
    fn identical_layers_evaluate_once() {
        let session = EvalSession::new(toy_system());
        let eval = session
            .evaluate_network(&repeated_net(), &NetworkOptions::baseline())
            .unwrap();
        assert_eq!(eval.per_layer.len(), 4);
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 2, "two unique signatures");
        assert_eq!(stats.hits, 2, "two duplicates answered from cache");
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Per-layer rows keep their own names despite sharing one eval.
        let names: Vec<&str> = eval
            .per_layer
            .iter()
            .map(|l| l.layer_name.as_str())
            .collect();
        assert_eq!(names, vec!["a0", "b", "a1", "a2"]);
    }

    #[test]
    fn cached_network_is_bit_identical_to_sequential() {
        let system = toy_system();
        let options = NetworkOptions::baseline()
            .with_batch(4)
            .with_fusion("dram", "glb");
        let sequential = system.evaluate_network(&repeated_net(), &options).unwrap();
        let session = EvalSession::new(system);
        let cached = session.evaluate_network(&repeated_net(), &options).unwrap();
        assert_eq!(
            sequential.energy.total().picojoules().to_bits(),
            cached.energy.total().picojoules().to_bits()
        );
        assert_eq!(sequential.cycles.to_bits(), cached.cycles.to_bits());
        for (s, c) in sequential.per_layer.iter().zip(&cached.per_layer) {
            assert_eq!(s.layer_name, c.layer_name);
            assert_eq!(s.mapping, c.mapping);
            assert_eq!(
                s.energy.total().picojoules().to_bits(),
                c.energy.total().picojoules().to_bits()
            );
        }
    }

    #[test]
    fn without_cache_disables_memoization_and_grouping() {
        let session = EvalSession::new(toy_system()).without_cache();
        let eval = session
            .evaluate_network(&repeated_net(), &NetworkOptions::baseline())
            .unwrap();
        assert_eq!(eval.per_layer.len(), 4);
        assert_eq!(session.cache_stats(), CacheStats::default());
        assert!(session.cache().is_none());
    }

    #[test]
    fn shared_cache_carries_hits_across_sessions() {
        let cache = EvalCache::shared();
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let first = EvalSession::new(toy_system()).with_cache(Arc::clone(&cache));
        first.evaluate_layer(&layer).unwrap();
        assert_eq!(cache.stats().misses, 1);
        let second = EvalSession::new(toy_system()).with_cache(Arc::clone(&cache));
        second.evaluate_layer(&layer).unwrap();
        assert_eq!(cache.stats().misses, 1, "same system fingerprint: hit");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn different_architectures_do_not_collide() {
        let cache = EvalCache::shared();
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let cheap = EvalSession::new(System::new(toy_arch(0.05), MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        let pricey = EvalSession::new(System::new(toy_arch(5.0), MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        let a = cheap.evaluate_layer(&layer).unwrap();
        let b = pricey.evaluate_layer(&layer).unwrap();
        assert_eq!(cache.stats().misses, 2, "distinct arch fingerprints");
        assert!(b.energy.total() > a.energy.total());
    }

    #[test]
    fn different_strategies_do_not_collide() {
        let cache = EvalCache::shared();
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let greedy = EvalSession::new(System::new(toy_arch(0.05), MappingStrategy::default()))
            .with_cache(Arc::clone(&cache));
        let searched = EvalSession::new(System::new(
            toy_arch(0.05),
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 40,
                seed: 7,
            }),
        ))
        .with_cache(Arc::clone(&cache));
        greedy.evaluate_layer(&layer).unwrap();
        searched.evaluate_layer(&layer).unwrap();
        assert_eq!(cache.stats().misses, 2, "distinct strategy fingerprints");
    }

    #[test]
    fn mapping_failures_are_cached_with_the_right_name() {
        // A buffer too small for any tile: every layer fails to map.
        let arch = ArchBuilder::new("tiny", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .capacity_bits(8)
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let session = EvalSession::new(System::new(
            arch,
            MappingStrategy::Greedy { temporal_level: 1 },
        ));
        let first = Layer::conv2d("first", 1, 16, 8, 8, 8, 3, 3);
        let twin = Layer::conv2d("twin", 1, 16, 8, 8, 8, 3, 3);
        let e1 = session.evaluate_layer(&first).unwrap_err();
        let e2 = session.evaluate_layer(&twin).unwrap_err();
        assert_eq!(session.cache_stats().misses, 1, "failure was cached");
        assert_eq!(session.cache_stats().hits, 1);
        let SystemError::NoMapping { layer: l1, .. } = e1 else {
            panic!("expected NoMapping, got {e1}");
        };
        let SystemError::NoMapping { layer: l2, .. } = e2 else {
            panic!("expected NoMapping, got {e2}");
        };
        assert_eq!(l1, "first");
        assert_eq!(l2, "twin", "cached error renamed to the asking layer");
    }

    #[test]
    fn network_error_matches_sequential_choice() {
        let arch = ArchBuilder::new("tiny", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .capacity_bits(64)
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        // All temporal loops at the compute level: the buffer must hold
        // each layer's whole tensors, so the tiny layer maps (3 elements)
        // and the big twins blow the 64-bit capacity.
        let system = System::new(
            arch,
            MappingStrategy::Planned {
                priority: lumen_mapper::search::DEFAULT_SPATIAL_PRIORITY.to_vec(),
                plan: lumen_mapper::search::TemporalPlan::all_at(2),
            },
        );
        let net = Network::new("n")
            .push(Layer::conv2d("ok", 1, 1, 1, 1, 1, 1, 1))
            .push(Layer::conv2d("big0", 1, 64, 64, 32, 32, 3, 3))
            .push(Layer::conv2d("big1", 1, 64, 64, 32, 32, 3, 3));
        let sequential = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_err();
        let cached = EvalSession::new(system)
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap_err();
        assert_eq!(sequential, cached, "same earliest-layer error");
    }

    #[test]
    fn fused_edges_get_distinct_cache_slots() {
        // Three identical layers under fusion: first, middle and last
        // carry different reroutes, so nothing may be shared blindly.
        let net = Network::new("n")
            .push(Layer::conv2d("x0", 1, 8, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("x1", 1, 8, 8, 8, 8, 3, 3))
            .push(Layer::conv2d("x2", 1, 8, 8, 8, 8, 3, 3));
        let system = toy_system();
        let options = NetworkOptions::baseline().with_fusion("dram", "glb");
        let sequential = system.evaluate_network(&net, &options).unwrap();
        let session = EvalSession::new(system);
        let cached = session.evaluate_network(&net, &options).unwrap();
        // First/middle/last all differ: three unique (signature, reroute)
        // pairs even though the signatures are equal.
        assert_eq!(session.cache_stats().misses, 3);
        for (s, c) in sequential.per_layer.iter().zip(&cached.per_layer) {
            assert_eq!(
                s.energy.total().picojoules().to_bits(),
                c.energy.total().picojoules().to_bits(),
                "{}",
                s.layer_name
            );
        }
    }

    #[test]
    fn shared_cache_pins_custom_strategy_closures() {
        use crate::MappingFn;
        use lumen_mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};
        let cache = EvalCache::shared();
        let f: Arc<MappingFn> = Arc::new(|arch, layer| {
            greedy_mapping(
                arch,
                layer,
                spatial_priority_for(layer),
                &TemporalPlan::all_at(1),
            )
        });
        let weak = Arc::downgrade(&f);
        {
            let session = EvalSession::new(System::new(toy_arch(0.05), MappingStrategy::Custom(f)))
                .with_cache(Arc::clone(&cache));
            session
                .evaluate_layer(&Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3))
                .unwrap();
        }
        // The session (and its System's Arc) is gone, but the cache still
        // holds entries keyed on the closure's address — so the cache
        // must keep the closure alive, or a new Arc could reuse the
        // address and be served the old closure's evaluations.
        assert!(
            weak.upgrade().is_some(),
            "cache pins identity-fingerprinted closures for its lifetime"
        );
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn keyed_custom_strategies_share_cache_across_rebuilds() {
        use lumen_mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};
        let cache = EvalCache::shared();
        // Each call allocates a fresh closure, as a config's
        // `build_system` would; the caller-vouched key makes them
        // interchangeable in the cache.
        let make = || {
            System::new(
                toy_arch(0.05),
                MappingStrategy::custom_keyed(
                    0xA1B2,
                    Arc::new(|arch, layer| {
                        greedy_mapping(
                            arch,
                            layer,
                            spatial_priority_for(layer),
                            &TemporalPlan::all_at(1),
                        )
                    }),
                ),
            )
        };
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        EvalSession::new(make())
            .with_cache(Arc::clone(&cache))
            .evaluate_layer(&layer)
            .unwrap();
        EvalSession::new(make())
            .with_cache(Arc::clone(&cache))
            .evaluate_layer(&layer)
            .unwrap();
        assert_eq!(cache.stats().misses, 1, "equal keys share entries");
        assert_eq!(cache.stats().hits, 1);
        // A different key is a different strategy.
        let other = MappingStrategy::custom_keyed(
            0xFFFF,
            Arc::new(|arch, layer| {
                greedy_mapping(
                    arch,
                    layer,
                    spatial_priority_for(layer),
                    &TemporalPlan::all_at(1),
                )
            }),
        );
        assert_ne!(other.fingerprint(), make().strategy().fingerprint());
    }

    #[test]
    fn arch_fingerprint_distinguishes_energy_tweaks() {
        assert_ne!(
            arch_fingerprint(&toy_arch(0.05)),
            arch_fingerprint(&toy_arch(0.06))
        );
        assert_eq!(
            arch_fingerprint(&toy_arch(0.05)),
            arch_fingerprint(&toy_arch(0.05))
        );
    }

    #[test]
    fn strategy_fingerprints_distinguish_variants() {
        let fps = [
            MappingStrategy::Greedy { temporal_level: 0 }.fingerprint(),
            MappingStrategy::Greedy { temporal_level: 1 }.fingerprint(),
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 100,
                seed: 1,
            })
            .fingerprint(),
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 100,
                seed: 2,
            })
            .fingerprint(),
            MappingStrategy::default().fingerprint(),
        ];
        // Greedy{1} == default; everything else distinct.
        assert_eq!(fps[1], fps[4]);
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i < j && !(i == 1 && j == 4) {
                    assert_ne!(a, b, "fingerprints {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn preflight_passes_a_sound_system() {
        let session = EvalSession::new(toy_system()).with_preflight();
        let report = session.preflight(Some(&repeated_net()));
        assert!(report.is_clean(), "{report}");
        session
            .evaluate_network(&repeated_net(), &NetworkOptions::baseline())
            .expect("clean model evaluates");
    }

    #[test]
    fn preflight_refuses_unphysical_energies() {
        // Structurally valid (passes ArchBuilder validation) but priced
        // nonsensically: exactly the case only the lint pass catches.
        let arch = ArchBuilder::new("bad", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(-5.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let session =
            EvalSession::new(System::new(arch, MappingStrategy::default())).with_preflight();
        let err = session
            .evaluate_network(&repeated_net(), &NetworkOptions::baseline())
            .unwrap_err();
        let SystemError::Preflight { errors, first } = err else {
            panic!("expected Preflight, got {err}");
        };
        assert!(errors >= 1);
        assert!(first.contains("L0101"), "{first}");
        // Without the opt-in, the same model still evaluates.
        let session = EvalSession::new(session.system().clone());
        session
            .evaluate_network(&repeated_net(), &NetworkOptions::baseline())
            .expect("preflight is opt-in");
    }

    /// A fresh, unique scratch directory for one persistence test.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lumen-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistent_cache_warm_starts_bit_identically() {
        let dir = scratch_dir("warm");
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let searched = || {
            System::new(
                toy_arch(0.05),
                MappingStrategy::RandomSearch(SearchConfig {
                    iterations: 60,
                    seed: 9,
                }),
            )
        };

        // "Process one": cold evaluation, explicit save.
        let cold = {
            let cache = EvalCache::persistent_in(&dir);
            let session = EvalSession::new(searched()).with_cache(Arc::clone(&cache));
            let eval = session.evaluate_layer(&layer).unwrap();
            assert_eq!(session.cache_stats().misses, 1);
            cache.save().unwrap();
            eval
        };

        // "Process two": a fresh cache re-reads the snapshot from disk.
        let cache = EvalCache::persistent_in(&dir);
        assert_eq!(cache.len(), 1, "snapshot warm-started the cache");
        let session = EvalSession::new(searched()).with_cache(Arc::clone(&cache));
        let warm = session.evaluate_layer(&layer).unwrap();
        assert_eq!(session.cache_stats().misses, 0, "no search re-ran");
        assert_eq!(session.cache_stats().hits, 1);

        assert_eq!(cold.mapping, warm.mapping);
        assert_eq!(
            cold.energy.total().picojoules().to_bits(),
            warm.energy.total().picojoules().to_bits()
        );
        assert_eq!(cold.analysis, warm.analysis);
        assert_eq!(cold.energy, warm.energy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_caches_flush_on_drop() {
        let dir = scratch_dir("drop");
        {
            let cache = EvalCache::persistent_in(&dir);
            let session = EvalSession::new(toy_system()).with_cache(Arc::clone(&cache));
            session
                .evaluate_layer(&Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3))
                .unwrap();
            // No explicit save: the last Arc dropping at end of scope
            // must write the snapshot.
        }
        let info = inspect_cache_dir(&dir).expect("snapshot written on drop");
        assert_eq!(info.entries, 1);
        assert!(info.bytes > 0);
        assert_eq!(info.per_system.len(), 1);
        assert_eq!(info.per_system[0].2, 1);
        assert!(clear_cache_dir(&dir).unwrap());
        assert!(!clear_cache_dir(&dir).unwrap(), "already cleared");
        assert!(inspect_cache_dir(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshots_cold_start_without_panicking() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"not a snapshot at all").unwrap();
        let cache = EvalCache::persistent_in(&dir);
        assert!(cache.is_empty(), "garbage snapshot treated as cold");
        assert!(inspect_cache_dir(&dir).is_none());
        // The cold cache still works and can overwrite the bad file.
        let session = EvalSession::new(toy_system()).with_cache(Arc::clone(&cache));
        session
            .evaluate_layer(&Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3))
            .unwrap();
        cache.save().unwrap();
        assert_eq!(inspect_cache_dir(&dir).unwrap().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_skips_entries_keyed_on_volatile_custom_strategies() {
        use lumen_mapper::search::{greedy_mapping, spatial_priority_for, TemporalPlan};
        let dir = scratch_dir("volatile");
        let cache = EvalCache::persistent_in(&dir);
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        // One entry under a stable fingerprint, one under an
        // address-fingerprinted Custom closure.
        EvalSession::new(toy_system())
            .with_cache(Arc::clone(&cache))
            .evaluate_layer(&layer)
            .unwrap();
        let custom: Arc<MappingFn> = Arc::new(|arch, layer| {
            greedy_mapping(
                arch,
                layer,
                spatial_priority_for(layer),
                &TemporalPlan::all_at(1),
            )
        });
        EvalSession::new(System::new(toy_arch(0.05), MappingStrategy::Custom(custom)))
            .with_cache(Arc::clone(&cache))
            .evaluate_layer(&layer)
            .unwrap();
        assert_eq!(cache.len(), 2);
        cache.save().unwrap();
        assert_eq!(
            inspect_cache_dir(&dir).unwrap().entries,
            1,
            "address-fingerprinted entry must not be persisted"
        );
        // Keyed Custom strategies have caller-vouched stable
        // fingerprints, so they *do* persist.
        let keyed = MappingStrategy::custom_keyed(
            0xBEEF,
            Arc::new(|arch, layer| {
                greedy_mapping(
                    arch,
                    layer,
                    spatial_priority_for(layer),
                    &TemporalPlan::all_at(1),
                )
            }),
        );
        EvalSession::new(System::new(toy_arch(0.05), keyed))
            .with_cache(Arc::clone(&cache))
            .evaluate_layer(&layer)
            .unwrap();
        cache.save().unwrap();
        assert_eq!(inspect_cache_dir(&dir).unwrap().entries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapping_failures_are_not_persisted() {
        let dir = scratch_dir("failures");
        let arch = ArchBuilder::new("tiny", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .capacity_bits(8)
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let cache = EvalCache::persistent_in(&dir);
        let session = EvalSession::new(System::new(
            arch,
            MappingStrategy::Greedy { temporal_level: 1 },
        ))
        .with_cache(Arc::clone(&cache));
        session
            .evaluate_layer(&Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3))
            .unwrap_err();
        assert_eq!(cache.len(), 1, "the failure is cached in memory");
        cache.save().unwrap();
        assert_eq!(
            inspect_cache_dir(&dir).unwrap().entries,
            0,
            "failures never reach the snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preflight_reports_strategy_findings_without_blocking_on_warns() {
        // A zero-iteration search is an error-severity strategy finding.
        let session = EvalSession::new(System::new(
            toy_arch(0.05),
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 0,
                seed: 1,
            }),
        ));
        let report = session.preflight(None);
        assert!(!report.is_clean());
        assert!(report.diagnostics().iter().any(|d| d.code == "L0302"));
    }
}
