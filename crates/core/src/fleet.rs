//! Fleet-wide trace aggregation: per-instance serving traces merged
//! into the numbers a capacity plan is judged on.
//!
//! [`lumen_workload::Fleet`] routes one arrival stream into
//! per-instance [`lumen_workload::ServingScenario`]s; this module
//! evaluates each instance through its own [`EvalSession`] (so a
//! heterogeneous fleet can mix photonic corners and digital baselines,
//! each at its own clock) and merges the traces. The merge is
//! clock-aware: every latency sample is converted from cycles to
//! seconds *at its own instance's clock* before pooling, so fleet-wide
//! TTFT/TBT percentiles are physically meaningful even when the
//! instances tick at different rates. Throughput uses the fleet
//! makespan — instances run concurrently, so the fleet finishes when
//! its slowest instance does — while energy simply sums: joules add
//! across machines no matter their clocks.

use crate::serving::{serving_trace_with, Percentiles, ServingEvaluation};
use crate::{EvalSession, NetworkOptions, SystemError};
use lumen_units::{Energy, Frequency};
use lumen_workload::serving::{InstanceAssignment, ServingModel, ServingScenario};

/// Evaluates one scenario through a session: the schedule is derived
/// from the scenario and lowered under the scenario's own KV layout —
/// the single-instance entry point every study shares, and the
/// degenerate (N = 1) case of [`fleet_trace`].
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first step with an unmappable
/// layer.
pub fn scenario_trace(
    session: &EvalSession,
    model: &ServingModel,
    scenario: &ServingScenario,
    options: &NetworkOptions,
) -> Result<ServingEvaluation, SystemError> {
    serving_trace_with(
        session,
        model,
        &scenario.schedule(),
        scenario.layout(),
        options,
    )
}

/// One instance of a fleet evaluation: which session and model serve
/// the routed sub-stream.
#[derive(Clone, Copy)]
pub struct FleetInstance<'a> {
    /// The evaluator (architecture + mapping + cache) of this instance.
    /// Instances may share a session — identical steps then dedupe in
    /// the shared eval cache — or bring their own for heterogeneous
    /// fleets.
    pub session: &'a EvalSession,
    /// The served model.
    pub model: &'a ServingModel,
    /// The routed sub-stream, from [`lumen_workload::Fleet::dispatch`].
    pub assignment: &'a InstanceAssignment,
}

/// One instance's evaluated trace inside a [`FleetEvaluation`].
#[derive(Debug, Clone)]
pub struct FleetInstanceTrace {
    /// Instance index, `0..N`.
    pub instance: usize,
    /// Global request indices this instance served.
    pub requests: Vec<usize>,
    /// The instance's clock — the rate its cycle counts convert to
    /// seconds at.
    pub clock: Frequency,
    /// The evaluated trace, or `None` for an instance the router left
    /// idle (it contributes capacity and zero load).
    pub evaluation: Option<ServingEvaluation>,
}

/// The merged result of evaluating every fleet instance.
#[derive(Debug, Clone)]
pub struct FleetEvaluation {
    /// Per-instance traces, by instance index.
    pub instances: Vec<FleetInstanceTrace>,
}

impl FleetEvaluation {
    /// Requests served across the fleet.
    pub fn served_requests(&self) -> usize {
        self.instances.iter().map(|i| i.requests.len()).sum()
    }

    /// Tokens generated across the fleet.
    pub fn total_tokens(&self) -> u64 {
        self.evaluations()
            .map(ServingEvaluation::total_tokens)
            .sum()
    }

    /// Total energy across the fleet — joules add across machines.
    pub fn total_energy(&self) -> Energy {
        self.evaluations()
            .fold(Energy::ZERO, |acc, e| acc + e.total_energy())
    }

    /// Fleet energy per generated token, in picojoules; 0.0 when no
    /// tokens were generated.
    pub fn pj_per_token(&self) -> f64 {
        let tokens = self.total_tokens();
        if tokens == 0 {
            return 0.0;
        }
        self.total_energy().picojoules() / tokens as f64
    }

    /// The fleet makespan in seconds: instances run concurrently, so
    /// the fleet finishes with its slowest instance (each converted at
    /// its own clock).
    pub fn makespan_seconds(&self) -> f64 {
        self.instances
            .iter()
            .filter_map(|i| {
                let eval = i.evaluation.as_ref()?;
                Some(eval.total_cycles() * i.clock.period().seconds())
            })
            .fold(0.0, f64::max)
    }

    /// Fleet throughput in generated tokens per second of makespan;
    /// 0.0 for an idle fleet.
    pub fn tokens_per_second(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan == 0.0 {
            return 0.0;
        }
        self.total_tokens() as f64 / makespan
    }

    /// Fleet-wide TTFT percentiles: every request's time-to-first-token
    /// in seconds at its instance's clock, pooled.
    pub fn ttft_percentiles(&self) -> Percentiles {
        Percentiles::from_samples(self.pooled(|e, period| {
            e.requests
                .iter()
                .map(|r| r.ttft_cycles() * period)
                .collect()
        }))
    }

    /// Fleet-wide TBT percentiles: every consecutive token gap in
    /// seconds at its instance's clock, pooled.
    pub fn tbt_percentiles(&self) -> Percentiles {
        Percentiles::from_samples(self.pooled(|e, period| {
            e.requests
                .iter()
                .flat_map(|r| r.token_gap_cycles.iter().map(|g| g * period))
                .collect()
        }))
    }

    /// Mean decode-slot occupancy per instance (idle instances report
    /// 0.0), by instance index.
    pub fn occupancies(&self) -> Vec<f64> {
        self.instances
            .iter()
            .map(|i| {
                i.evaluation
                    .as_ref()
                    .map_or(0.0, ServingEvaluation::mean_occupancy)
            })
            .collect()
    }

    /// The occupancy skew — max minus min per-instance mean occupancy —
    /// the router's balance report card (0.0 for a single instance).
    pub fn occupancy_skew(&self) -> f64 {
        let occ = self.occupancies();
        let max = occ.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = occ.iter().copied().fold(f64::INFINITY, f64::min);
        if occ.is_empty() {
            return 0.0;
        }
        max - min
    }

    fn evaluations(&self) -> impl Iterator<Item = &ServingEvaluation> {
        self.instances.iter().filter_map(|i| i.evaluation.as_ref())
    }

    fn pooled(&self, f: impl Fn(&ServingEvaluation, f64) -> Vec<f64>) -> Vec<f64> {
        self.instances
            .iter()
            .filter_map(|i| {
                let eval = i.evaluation.as_ref()?;
                Some(f(eval, i.clock.period().seconds()))
            })
            .flatten()
            .collect()
    }
}

/// Evaluates every instance's routed sub-scenario and merges the
/// traces. Instance order is preserved; an instance with no routed
/// requests contributes an empty trace.
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first unmappable step of the
/// first failing instance.
pub fn fleet_trace(
    instances: &[FleetInstance<'_>],
    options: &NetworkOptions,
) -> Result<FleetEvaluation, SystemError> {
    let traces = instances
        .iter()
        .map(|inst| {
            let evaluation = inst
                .assignment
                .scenario
                .as_ref()
                .map(|scenario| scenario_trace(inst.session, inst.model, scenario, options))
                .transpose()?;
            Ok(FleetInstanceTrace {
                instance: inst.assignment.instance,
                requests: inst.assignment.requests.clone(),
                clock: inst.session.system().arch().clock(),
                evaluation,
            })
        })
        .collect::<Result<Vec<_>, SystemError>>()?;
    Ok(FleetEvaluation { instances: traces })
}
