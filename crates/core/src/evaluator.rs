//! The system evaluator: mapping strategy + energy accounting.

use crate::{CostCategory, EnergyBreakdown};
use lumen_arch::Architecture;
use lumen_mapper::search::{
    greedy_mapping, random_search, random_search_pruned, spatial_priority_for, SearchConfig,
    TemporalPlan,
};
use lumen_mapper::{analyze, outer_read_traffic, LayerAnalysis, Mapping, MappingError};
use lumen_units::Energy;
use lumen_workload::{Dim, Layer, TensorKind};
use std::fmt;
use std::sync::Arc;

/// A caller-provided mapping constructor.
pub type MappingFn = dyn Fn(&Architecture, &Layer) -> Mapping + Send + Sync;

/// How a [`System`] chooses a mapping for each layer.
#[derive(Clone)]
pub enum MappingStrategy {
    /// Deterministic greedy spatial packing with all leftover temporal
    /// loops at the given storage level (0 = the backing store).
    Greedy {
        /// Storage level receiving the temporal loops.
        temporal_level: usize,
    },
    /// Deterministic greedy spatial packing with an explicit temporal
    /// plan — e.g. batch-innermost-of-weights dataflows that amortize
    /// weight fetches across a batch.
    Planned {
        /// Spatial packing priority.
        priority: Vec<Dim>,
        /// Temporal loop placement.
        plan: TemporalPlan,
    },
    /// Seeded random search minimizing total system energy.
    RandomSearch(SearchConfig),
    /// Caller-provided mapping constructor (e.g. an architecture-specific
    /// dataflow like Albireo's).
    Custom(Arc<MappingFn>),
    /// A caller-provided mapping constructor with a caller-vouched
    /// content fingerprint — build with
    /// [`MappingStrategy::custom_keyed`]. Unlike [`Custom`], whose
    /// closures are opaque and fingerprint by identity, a keyed strategy
    /// participates fully in cross-session evaluation caching: two
    /// strategies with equal keys are promised to produce identical
    /// mappings for identical inputs.
    ///
    /// [`Custom`]: MappingStrategy::Custom
    CustomKeyed {
        /// Content hash of everything the constructor's behavior depends
        /// on (captured configuration, algorithm version).
        key: u64,
        /// The mapping constructor.
        mapper: Arc<MappingFn>,
    },
}

impl Default for MappingStrategy {
    /// Greedy with temporal loops at the innermost storage level above
    /// compute — a sensible output-stationary default.
    fn default() -> Self {
        MappingStrategy::Greedy { temporal_level: 1 }
    }
}

impl MappingStrategy {
    /// Wraps a mapping constructor with a caller-vouched content `key`
    /// (hash it from the captured configuration with
    /// [`lumen_workload::fnv1a`] / [`lumen_workload::fnv1a_bytes`]).
    /// The caller promises that two constructors given equal keys behave
    /// identically — the key becomes the strategy's cache fingerprint,
    /// so evaluations are shared across sessions and rebuilt systems.
    pub fn custom_keyed(key: u64, mapper: Arc<MappingFn>) -> MappingStrategy {
        MappingStrategy::CustomKeyed { key, mapper }
    }

    /// A 64-bit content fingerprint of the strategy, for evaluation-cache
    /// keys: equal fingerprints guarantee the strategy produces the same
    /// mapping for the same *(architecture, layer)* input.
    ///
    /// Every built-in strategy is a pure function of its configuration —
    /// [`MappingStrategy::RandomSearch`] included, since [`SearchConfig`]
    /// seeds the RNG ([`SearchConfig`]'s `Eq`/`Hash` make that a typed
    /// guarantee) — so the fingerprint hashes the configuration itself.
    /// [`MappingStrategy::CustomKeyed`] hashes its caller-vouched key.
    /// Plain [`MappingStrategy::Custom`] closures are opaque; they
    /// fingerprint by `Arc` address, which is only sound while the `Arc`
    /// stays alive — [`crate::EvalCache`] therefore pins every `Custom`
    /// `Arc` it has cached under, so a freed-and-reallocated closure can
    /// never impersonate an old fingerprint.
    pub fn fingerprint(&self) -> u64 {
        use lumen_workload::fnv1a;
        match self {
            MappingStrategy::Greedy { temporal_level } => {
                fnv1a(b"strategy-greedy", &[*temporal_level as u64])
            }
            MappingStrategy::Planned { priority, plan } => {
                let mut words: Vec<u64> = vec![priority.len() as u64];
                words.extend(priority.iter().map(|d| d.index() as u64));
                words.push(plan.default_level as u64);
                for (level, dims) in &plan.assignments {
                    words.push(*level as u64);
                    words.push(dims.len() as u64);
                    words.extend(dims.iter().map(|d| d.index() as u64));
                }
                fnv1a(b"strategy-planned", &words)
            }
            MappingStrategy::RandomSearch(cfg) => {
                fnv1a(b"strategy-random", &[cfg.iterations as u64, cfg.seed])
            }
            MappingStrategy::Custom(f) => fnv1a(
                b"strategy-custom",
                &[Arc::as_ptr(f) as *const () as usize as u64],
            ),
            MappingStrategy::CustomKeyed { key, .. } => fnv1a(b"strategy-keyed", &[*key]),
        }
    }
}

impl fmt::Debug for MappingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingStrategy::Greedy { temporal_level } => f
                .debug_struct("Greedy")
                .field("temporal_level", temporal_level)
                .finish(),
            MappingStrategy::Planned { priority, plan } => f
                .debug_struct("Planned")
                .field("priority", priority)
                .field("plan", plan)
                .finish(),
            MappingStrategy::RandomSearch(cfg) => f.debug_tuple("RandomSearch").field(cfg).finish(),
            MappingStrategy::Custom(_) => f.write_str("Custom(..)"),
            MappingStrategy::CustomKeyed { key, .. } => f
                .debug_struct("CustomKeyed")
                .field("key", &format_args!("{key:#018x}"))
                .finish_non_exhaustive(),
        }
    }
}

/// Errors from system evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// The strategy produced no legal mapping for a layer.
    NoMapping {
        /// The layer that could not be mapped.
        layer: String,
        /// The underlying mapping error, if one was produced.
        cause: Option<MappingError>,
    },
    /// The pre-flight lint pass found error-severity diagnostics (see
    /// [`crate::EvalSession::with_preflight`]).
    Preflight {
        /// Number of error-severity findings.
        errors: usize,
        /// The first finding, rendered for display.
        first: String,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NoMapping { layer, cause } => {
                write!(f, "no legal mapping found for layer `{layer}`")?;
                if let Some(cause) = cause {
                    write!(f, ": {cause}")?;
                }
                Ok(())
            }
            SystemError::Preflight { errors, first } => {
                write!(
                    f,
                    "pre-flight check found {errors} error(s); first: {first}"
                )
            }
        }
    }
}

/// Distills a [`MappingStrategy`] into the facts the linter inspects.
///
/// `lumen-lint` cannot depend on this crate (this crate runs the
/// pre-flight pass, so the dependency points the other way); strategies
/// are therefore linted through [`lumen_lint::StrategyFacts`] built
/// here, next to the `fingerprint()` implementation whose soundness the
/// `L0301` lint polices.
pub fn strategy_facts(strategy: &MappingStrategy) -> lumen_lint::StrategyFacts {
    let (label, address_fingerprinted, search) = match strategy {
        MappingStrategy::Greedy { temporal_level } => {
            (format!("greedy@{temporal_level}"), false, None)
        }
        MappingStrategy::Planned { .. } => ("planned".to_string(), false, None),
        MappingStrategy::RandomSearch(cfg) => ("random-search".to_string(), false, Some(*cfg)),
        MappingStrategy::Custom(_) => ("custom".to_string(), true, None),
        MappingStrategy::CustomKeyed { key, .. } => {
            (format!("custom-keyed:{key:016x}"), false, None)
        }
    };
    lumen_lint::StrategyFacts {
        label,
        address_fingerprinted,
        search,
    }
}

impl std::error::Error for SystemError {}

/// The result of evaluating one layer on a system.
#[derive(Debug, Clone)]
pub struct LayerEvaluation {
    /// The evaluated layer's name.
    pub layer_name: String,
    /// The evaluated layer's content signature (its identity for
    /// caching and deduplicated reporting; independent of the name).
    pub signature: lumen_workload::LayerSignature,
    /// The mapping used.
    pub mapping: Mapping,
    /// Access/conversion/cycle analysis.
    pub analysis: LayerAnalysis,
    /// Itemized energy.
    pub energy: EnergyBreakdown,
}

impl LayerEvaluation {
    /// Energy per true MAC.
    pub fn energy_per_mac(&self) -> Energy {
        self.energy.total() / self.analysis.macs as f64
    }
}

/// Traffic rerouting for fused-layer dataflows: charge a tensor's traffic
/// at one level using another level's energetics (e.g. inter-layer
/// activations that stay in the global buffer instead of DRAM).
///
/// Hashable because the reroute is part of a layer evaluation's cache
/// identity: the same layer fused and unfused costs differently.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub(crate) struct Reroute {
    /// `(tensor, from level index, to level index)` entries.
    pub entries: Vec<(TensorKind, usize, usize)>,
}

impl Reroute {
    fn target(&self, tensor: TensorKind, level: usize) -> Option<usize> {
        self.entries
            .iter()
            .find(|(t, from, _)| *t == tensor && *from == level)
            .map(|(_, _, to)| *to)
    }
}

/// An architecture paired with a mapping strategy — the object the
/// paper's experiments evaluate.
#[derive(Debug, Clone)]
pub struct System {
    arch: Architecture,
    strategy: MappingStrategy,
}

impl System {
    /// Couples an architecture with a mapping strategy.
    pub fn new(arch: Architecture, strategy: MappingStrategy) -> System {
        System { arch, strategy }
    }

    /// The underlying architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The mapping strategy.
    pub fn strategy(&self) -> &MappingStrategy {
        &self.strategy
    }

    /// Finds a mapping for `layer` per the strategy.
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] if the strategy cannot produce a legal
    /// mapping.
    pub fn map_layer(&self, layer: &Layer) -> Result<Mapping, SystemError> {
        let mapping = match &self.strategy {
            // Spatial priority follows the operator class: matmuls
            // parallelize sequence rows before the reduction dimension.
            MappingStrategy::Greedy { temporal_level } => greedy_mapping(
                &self.arch,
                layer,
                spatial_priority_for(layer),
                &TemporalPlan::all_at(*temporal_level),
            ),
            MappingStrategy::Planned { priority, plan } => {
                greedy_mapping(&self.arch, layer, priority, plan)
            }
            MappingStrategy::RandomSearch(cfg) => {
                let arch = &self.arch;
                let cost = |analysis: &LayerAnalysis| {
                    energy_from_analysis(arch, analysis, &Reroute::default())
                        .total()
                        .picojoules()
                };
                // Prune with a mapping-only energy lower bound when the
                // architecture admits one; the winner is bit-identical to
                // the plain search either way.
                let result = match energy_lower_bound(arch, layer) {
                    Some(lb) => random_search_pruned(arch, layer, *cfg, lb, cost),
                    None => random_search(arch, layer, *cfg, cost),
                }
                .ok_or_else(|| SystemError::NoMapping {
                    layer: layer.name().to_string(),
                    cause: None,
                })?;
                return Ok(result.mapping);
            }
            MappingStrategy::Custom(f) => f(&self.arch, layer),
            MappingStrategy::CustomKeyed { mapper, .. } => mapper(&self.arch, layer),
        };
        Ok(mapping)
    }

    /// Maps and evaluates one layer.
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] if no legal mapping exists (including
    /// capacity violations).
    pub fn evaluate_layer(&self, layer: &Layer) -> Result<LayerEvaluation, SystemError> {
        self.evaluate_layer_rerouted(layer, &Reroute::default())
    }

    /// Evaluates a layer with an explicit mapping (no strategy involved).
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] wrapping the mapping error if the
    /// mapping is illegal.
    pub fn evaluate_layer_with_mapping(
        &self,
        layer: &Layer,
        mapping: Mapping,
    ) -> Result<LayerEvaluation, SystemError> {
        let analysis =
            analyze(&self.arch, layer, &mapping).map_err(|e| SystemError::NoMapping {
                layer: layer.name().to_string(),
                cause: Some(e),
            })?;
        let mut energy = energy_from_analysis(&self.arch, &analysis, &Reroute::default());
        add_kv_append_energy(&self.arch, layer, &mut energy);
        Ok(LayerEvaluation {
            layer_name: layer.name().to_string(),
            signature: layer.signature(),
            mapping,
            analysis,
            energy,
        })
    }

    pub(crate) fn evaluate_layer_rerouted(
        &self,
        layer: &Layer,
        reroute: &Reroute,
    ) -> Result<LayerEvaluation, SystemError> {
        let mapping = self.map_layer(layer)?;
        let analysis =
            analyze(&self.arch, layer, &mapping).map_err(|e| SystemError::NoMapping {
                layer: layer.name().to_string(),
                cause: Some(e),
            })?;
        let mut energy = energy_from_analysis(&self.arch, &analysis, reroute);
        add_kv_append_energy(&self.arch, layer, &mut energy);
        Ok(LayerEvaluation {
            layer_name: layer.name().to_string(),
            signature: layer.signature(),
            mapping,
            analysis,
            energy,
        })
    }
}

/// Charges the KV-cache residency cost of a decode-step layer: the cache
/// grows by [`Layer::kv_append_elements`] per step, and each appended
/// element is written once to the cache's home — the outermost storage
/// level that keeps the weight tensor, since the cache *is* the layer's
/// stationary operand. The per-step *reads* of the whole cache need no
/// extra term: the cache is never reused across steps, so the weight
/// traffic of each step's own evaluation already re-reads it in full.
///
/// A step that privatises a shared cache page before appending — the
/// copy-on-write of a shared prompt prefix's trailing partial page
/// ([`Layer::with_kv_cow`]) — additionally pays one read (the shared
/// source page) and one write (the private copy) per copied element, at
/// the same home.
///
/// Nothing is charged for ordinary layers (`kv_append_elements() == 0`),
/// so every pre-existing evaluation is bit-identical to before.
///
/// An architecture with no weight-keeping storage level has nowhere to
/// home the cache, so nothing can be charged and the resident layer
/// costs the same as its non-resident twin; that mis-modeling trips a
/// debug assertion rather than passing silently.
fn add_kv_append_energy(arch: &Architecture, layer: &Layer, breakdown: &mut EnergyBreakdown) {
    let appended = layer.kv_append_elements();
    let copied = layer.kv_cow_elements();
    if appended == 0 && copied == 0 {
        return;
    }
    let Some(home) = arch
        .levels()
        .iter()
        .find(|l| l.kind().is_storage() && l.keep().contains(TensorKind::Weight))
    else {
        debug_assert!(
            false,
            "KV-resident layer {:?} on an architecture with no weight-keeping \
             storage level: the cache has no home, so its append cannot be charged",
            layer.name()
        );
        return;
    };
    breakdown.add(
        home.name().to_string(),
        CostCategory::Storage,
        Some(TensorKind::Weight),
        home.write_energy() * (appended + copied) as f64 + home.read_energy() * copied as f64,
    );
}

/// A mapping-only lower bound on the random-search cost objective
/// (`energy_from_analysis(..).total().picojoules()` with no reroute),
/// used by [`System::map_layer`] to skip candidates that cannot beat the
/// incumbent before paying for the full nest analysis.
///
/// The bound sums exactly the terms of the true objective that are
/// computable from the [`Mapping`] alone — compute (padded MACs),
/// per-cycle, static, and the outermost-keeper read traffic of the read
/// tensors ([`outer_read_traffic`], bit-identical to the analyzer's
/// entries) — and omits the rest. Omission is only conservative when
/// every omitted term is non-negative, so architectures with a negative
/// storage or conversion energy (nonsensical, but representable) get
/// `None` and the caller falls back to the unpruned search.
fn energy_lower_bound<'a>(
    arch: &'a Architecture,
    layer: &'a Layer,
) -> Option<impl Fn(&Mapping) -> f64 + 'a> {
    let omitted_terms_nonnegative = arch.levels().iter().all(|l| {
        (!l.kind().is_storage() || (l.read_energy().raw() >= 0.0 && l.write_energy().raw() >= 0.0))
            && (!l.kind().is_converter() || l.convert_energy().raw() >= 0.0)
    });
    if !omitted_terms_nonnegative {
        return None;
    }
    let groups = layer.groups() as u64;
    let peak = arch.peak_parallelism() as f64;
    Some(move |m: &Mapping| {
        // Mirrors the corresponding expressions of `Nest::run` and
        // `energy_from_analysis` term by term.
        let cycles = m.total_temporal_product() * groups;
        let padded_volume: u64 = Dim::ALL.iter().map(|&d| m.total_bound(d)).product();
        let padded_macs = padded_volume * groups;
        let spatial_utilization = m.total_spatial_product() as f64 / peak;
        let mut total = arch.mac_energy() * padded_macs as f64;
        for cost in arch.per_cycle_costs() {
            let factor = if cost.gateable {
                spatial_utilization
            } else {
                1.0
            };
            total += cost.energy_per_cycle * (cycles as f64) * factor;
        }
        total += arch.total_static_power() * (arch.clock().period() * cycles as f64);
        for (level, _tensor, reads) in outer_read_traffic(arch, layer, m) {
            total += arch.levels()[level].read_energy() * reads;
        }
        total.picojoules()
    })
}

/// Converts a nest analysis into an itemized energy breakdown under the
/// architecture's per-level energetics.
pub(crate) fn energy_from_analysis(
    arch: &Architecture,
    analysis: &LayerAnalysis,
    reroute: &Reroute,
) -> EnergyBreakdown {
    let mut breakdown = EnergyBreakdown::new();

    for (x, level) in arch.levels().iter().enumerate() {
        let traffic = analysis.level(x);
        if level.kind().is_storage() {
            for t in TensorKind::ALL {
                let (label, read_e, write_e) = match reroute.target(t, x) {
                    Some(to) => {
                        let target = &arch.levels()[to];
                        (
                            target.name().to_string(),
                            target.read_energy(),
                            target.write_energy(),
                        )
                    }
                    None => (
                        level.name().to_string(),
                        level.read_energy(),
                        level.write_energy(),
                    ),
                };
                breakdown.add(
                    label.clone(),
                    CostCategory::Storage,
                    Some(t),
                    read_e * traffic.reads[t],
                );
                breakdown.add(
                    label,
                    CostCategory::Storage,
                    Some(t),
                    write_e * traffic.writes[t],
                );
            }
        } else if level.kind().is_converter() {
            for t in TensorKind::ALL {
                breakdown.add(
                    level.name().to_string(),
                    CostCategory::Conversion,
                    Some(t),
                    level.convert_energy() * traffic.conversions[t],
                );
            }
        }
    }

    // Compute: charge padded MACs (idle-lane padding still switches).
    breakdown.add(
        arch.compute_level().name().to_string(),
        CostCategory::Compute,
        None,
        arch.mac_energy() * analysis.padded_macs as f64,
    );

    // Per-cycle costs: lasers and tuning burn for every cycle; gateable
    // costs scale with the fraction of lanes in use.
    for cost in arch.per_cycle_costs() {
        let factor = if cost.gateable {
            analysis.spatial_utilization
        } else {
            1.0
        };
        breakdown.add(
            cost.name.clone(),
            CostCategory::PerCycle,
            None,
            cost.energy_per_cycle * (analysis.cycles as f64) * factor,
        );
    }

    // Leakage over the runtime.
    let runtime = arch.clock().period() * analysis.cycles as f64;
    let static_energy = arch.total_static_power() * runtime;
    breakdown.add("static", CostCategory::Static, None, static_energy);

    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::Frequency;
    use lumen_workload::{Dim, DimSet, TensorSet};

    fn toy_arch() -> Architecture {
        ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.1),
            )
            .build()
            .unwrap()
    }

    fn layer() -> Layer {
        Layer::conv2d("conv", 1, 16, 8, 8, 8, 3, 3)
    }

    #[test]
    fn greedy_system_evaluates() {
        let system = System::new(toy_arch(), MappingStrategy::default());
        let eval = system.evaluate_layer(&layer()).unwrap();
        assert!(eval.energy.total() > Energy::ZERO);
        assert_eq!(eval.analysis.macs, layer().macs());
        assert!(eval.energy_per_mac() > Energy::ZERO);
        // Compute energy = padded macs x 0.1 pJ.
        let compute = eval.energy.by_category(CostCategory::Compute);
        assert!((compute.picojoules() - 0.1 * eval.analysis.padded_macs as f64).abs() < 1e-6);
    }

    #[test]
    fn random_search_not_worse_than_greedy() {
        let greedy = System::new(toy_arch(), MappingStrategy::default());
        let searched = System::new(
            toy_arch(),
            MappingStrategy::RandomSearch(SearchConfig {
                iterations: 150,
                seed: 42,
            }),
        );
        let g = greedy.evaluate_layer(&layer()).unwrap().energy.total();
        let s = searched.evaluate_layer(&layer()).unwrap().energy.total();
        assert!(
            s.picojoules() <= g.picojoules() * 1.001,
            "searched {s} vs greedy {g}"
        );
    }

    #[test]
    fn custom_strategy_runs_caller_mapping() {
        let custom = MappingStrategy::Custom(Arc::new(|arch, layer| {
            greedy_mapping(
                arch,
                layer,
                spatial_priority_for(layer),
                &TemporalPlan::all_at(0),
            )
        }));
        let system = System::new(toy_arch(), custom);
        let eval = system.evaluate_layer(&layer()).unwrap();
        // All temporal loops at DRAM: buffer tiles are tiny; DRAM sees a
        // lot of traffic.
        assert!(eval.energy.by_label("dram") > Energy::ZERO);
    }

    #[test]
    fn per_cycle_costs_scale_with_cycles() {
        let arch = ArchBuilder::new("pc", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .per_cycle("laser", Energy::from_picojoules(2.0), false)
            .compute("mac", Domain::AnalogOptical, Energy::ZERO)
            .build()
            .unwrap();
        let system = System::new(arch, MappingStrategy::Greedy { temporal_level: 0 });
        let eval = system.evaluate_layer(&layer()).unwrap();
        let laser = eval.energy.by_label("laser");
        assert!(
            (laser.picojoules() - 2.0 * eval.analysis.cycles as f64).abs() < 1e-6,
            "laser energy charged per cycle"
        );
    }

    #[test]
    fn reroute_moves_traffic_energy() {
        let system = System::new(toy_arch(), MappingStrategy::default());
        let plain = system.evaluate_layer(&layer()).unwrap();
        let reroute = Reroute {
            entries: vec![(TensorKind::Input, 0, 1)],
        };
        let fused = system.evaluate_layer_rerouted(&layer(), &reroute).unwrap();
        // DRAM input energy disappears; total drops (glb is 100x cheaper).
        assert_eq!(
            fused.energy.by_label_and_tensor("dram", TensorKind::Input),
            Energy::ZERO
        );
        assert!(fused.energy.total() < plain.energy.total());
        // Weights still hit DRAM.
        assert!(fused.energy.by_label_and_tensor("dram", TensorKind::Weight) > Energy::ZERO);
    }

    #[test]
    fn kv_append_charges_cache_home_writes() {
        let system = System::new(toy_arch(), MappingStrategy::default());
        // Same nest, same stationarity — only the growing-cache
        // annotation differs, so the energy difference is exactly the
        // append write: 32 elements x 100 pJ at dram.
        let plain = Layer::matmul("kv", 1, 64, 32, 1).with_per_sample_stationary();
        let resident = Layer::matmul("kv", 1, 64, 32, 1).with_kv_cache_residency(32);
        let a = system.evaluate_layer(&plain).unwrap();
        let b = system.evaluate_layer(&resident).unwrap();
        let diff = b.energy.total().picojoules() - a.energy.total().picojoules();
        assert!((diff - 32.0 * 100.0).abs() < 1e-6, "diff {diff}");
        let dram_w = |e: &LayerEvaluation| {
            e.energy
                .by_label_and_tensor("dram", TensorKind::Weight)
                .picojoules()
        };
        assert!((dram_w(&b) - dram_w(&a) - 3200.0).abs() < 1e-6);
        // Cycles and mapping are untouched — the append is pure energy.
        assert_eq!(a.analysis.cycles, b.analysis.cycles);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn kv_append_scales_with_batch_replicas() {
        let system = System::new(toy_arch(), MappingStrategy::default());
        let one = Layer::matmul("kv", 1, 64, 32, 1).with_kv_cache_residency(32);
        let four = one.clone().with_batch(4);
        let base = system
            .evaluate_layer(&Layer::matmul("kv", 1, 64, 32, 1).with_per_sample_stationary())
            .unwrap();
        let e1 = system.evaluate_layer(&one).unwrap();
        let e4 = system.evaluate_layer(&four).unwrap();
        let append1 = e1.energy.total().picojoules() - base.energy.total().picojoules();
        // Four replicated caches append four tokens' slices per step.
        let base4 = system
            .evaluate_layer(
                &Layer::matmul("kv", 1, 64, 32, 1)
                    .with_per_sample_stationary()
                    .with_batch(4),
            )
            .unwrap();
        let append4 = e4.energy.total().picojoules() - base4.energy.total().picojoules();
        assert!((append4 - 4.0 * append1).abs() < 1e-6);
    }

    #[test]
    fn no_mapping_error_for_impossible_layer() {
        // Capacity-bounded buffer too small for even one element tile of
        // every tensor after greedy mapping -> expect NoMapping.
        let arch = ArchBuilder::new("tiny", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .capacity_bits(8)
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let system = System::new(arch, MappingStrategy::Greedy { temporal_level: 1 });
        let err = system.evaluate_layer(&layer()).unwrap_err();
        assert!(matches!(err, SystemError::NoMapping { .. }));
    }
}
