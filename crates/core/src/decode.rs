//! Decode-phase evaluation: sweeping a growing KV cache through an
//! [`EvalSession`].
//!
//! Autoregressive decoding evaluates thousands of near-identical seq-1
//! networks — one per generated token, differing only in the KV length
//! their attention layers attend over. [`decode_sweep`] drives a list of
//! KV lengths through one session: every KV-independent layer (the
//! projections, MLPs and LM head) evaluates exactly once for the whole
//! sweep, and the KV-dependent `logits`/`attend` layers evaluate once per
//! distinct KV-length *bucket*, so the sweep's mapping-search cost is
//! bounded by the bucket count, not the step count.
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_core::decode::decode_sweep;
//! use lumen_core::{EvalSession, MappingStrategy, NetworkOptions, System};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::{networks, Dim, DimSet, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(100.0))
//!     .write_energy(Energy::from_picojoules(100.0))
//!     .done()
//!     .storage("glb", Domain::DigitalElectrical, TensorSet::all())
//!     .read_energy(Energy::from_picojoules(1.0))
//!     .write_energy(Energy::from_picojoules(1.0))
//!     .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::from_picojoules(0.05))
//!     .build()
//!     .unwrap();
//!
//! let session = EvalSession::new(System::new(arch, MappingStrategy::default()));
//! let points = decode_sweep(
//!     &session,
//!     &[127, 255, 511],
//!     &NetworkOptions::baseline(),
//!     networks::gpt2_small_decode,
//! )
//! .unwrap();
//! assert_eq!(points.len(), 3);
//! // Per-token work grows with the cache.
//! assert!(points[0].evaluation.macs < points[2].evaluation.macs);
//! ```

use crate::{EvalSession, NetworkEvaluation, NetworkOptions, SystemError};
use lumen_units::Frequency;
use lumen_workload::Network;

/// One KV length of a decode sweep: the per-step network's evaluation.
#[derive(Debug, Clone)]
pub struct DecodePoint {
    /// Tokens cached before the step.
    pub kv_len: usize,
    /// The step's full network evaluation (energy, cycles, per-layer).
    pub evaluation: NetworkEvaluation,
}

impl DecodePoint {
    /// Aggregate decode throughput at this KV length, in generated
    /// tokens per second. One step generates one token per batch sample,
    /// and [`NetworkEvaluation::cycles`] is per *inference* (the batch
    /// divided out), so the aggregate rate over the whole batch is
    /// simply `1 / (cycles × clock period)` — batching shows up through
    /// the amortization already folded into the per-inference cycles.
    pub fn tokens_per_second(&self, clock: Frequency) -> f64 {
        1.0 / (self.evaluation.cycles * clock.period().seconds())
    }

    /// Energy per generated token, in picojoules (per batch sample).
    pub fn pj_per_token(&self) -> f64 {
        self.evaluation.energy.total().picojoules()
    }
}

/// Evaluates one decode step per entry of `kv_lengths` through
/// `session`, building each step's network with `build` (e.g.
/// [`lumen_workload::networks::gpt2_small_decode`]).
///
/// The sweep runs the KV lengths in order against the session's shared
/// cache, so repeated layer signatures — KV-independent layers across
/// the whole sweep, KV-dependent layers within a bucket — cost one
/// mapping search total. Check
/// [`cache_stats`](EvalSession::cache_stats) afterwards for the
/// accounting.
///
/// # Errors
///
/// [`SystemError::NoMapping`] for the first KV length (in input order)
/// with an unmappable layer.
pub fn decode_sweep(
    session: &EvalSession,
    kv_lengths: &[usize],
    options: &NetworkOptions,
    build: impl Fn(usize) -> Network,
) -> Result<Vec<DecodePoint>, SystemError> {
    kv_lengths
        .iter()
        .map(|&kv_len| {
            let evaluation = session.evaluate_network(&build(kv_len), options)?;
            Ok(DecodePoint { kv_len, evaluation })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingStrategy, System};
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::Energy;
    use lumen_workload::{networks, Dim, DimSet, TensorSet};

    fn session() -> EvalSession {
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        EvalSession::new(System::new(arch, MappingStrategy::default()))
    }

    #[test]
    fn sweep_reuses_kv_independent_layers() {
        let session = session();
        let points = decode_sweep(
            &session,
            &[127, 255, 511],
            &NetworkOptions::baseline(),
            networks::gpt2_small_decode,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        // 6 unique signatures for the first step (proj, logits, attend,
        // fc1, fc2, lm-head), then only logits/attend change per length.
        assert_eq!(session.cache_stats().misses, 6 + 2 * 2);
        // Energy per token and per-step work grow with the cache.
        assert!(points[0].pj_per_token() < points[2].pj_per_token());
        assert!(points[0].evaluation.macs < points[2].evaluation.macs);
        for p in &points {
            assert_eq!(
                p.evaluation.macs,
                networks::gpt2_small_decode_macs(p.kv_len)
            );
            assert!(p.tokens_per_second(Frequency::from_gigahertz(1.0)) > 0.0);
        }
    }

    #[test]
    fn tokens_per_second_counts_the_batch() {
        let session = session();
        let base = decode_sweep(
            &session,
            &[63],
            &NetworkOptions::baseline(),
            networks::gpt2_small_decode,
        )
        .unwrap();
        let batched = decode_sweep(
            &session,
            &[63],
            &NetworkOptions::baseline().with_batch(4),
            networks::gpt2_small_decode,
        )
        .unwrap();
        let clock = Frequency::from_gigahertz(1.0);
        // Batch-4 decode generates 4 tokens per step; since
        // `evaluation.cycles` is per inference, the aggregate token rate
        // is 1/cycles either way and can only improve with batching
        // (weight-fetch amortization shrinks per-inference cycles never
        // grows them on this toy hierarchy).
        assert!(batched[0].tokens_per_second(clock) >= base[0].tokens_per_second(clock) * 0.999);
        assert_eq!(batched[0].evaluation.batch, 4);
        assert_eq!(base[0].evaluation.batch, 1);
    }
}
