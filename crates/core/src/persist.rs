//! On-disk snapshots of the evaluation cache.
//!
//! A snapshot is a versioned, hand-rolled little-endian binary file (no
//! serde exists in the offline shims) holding successful
//! [`LayerEvaluation`]s keyed exactly as the in-memory [`crate::EvalCache`]
//! keys them: architecture fingerprint × strategy fingerprint ×
//! [`LayerSignature`] × fusion reroute. Every floating-point quantity is
//! stored as raw IEEE-754 bits, so a warm-started session reproduces
//! evaluations **bit-identically** to the cold path.
//!
//! Robustness contract: a snapshot that is truncated, bit-flipped,
//! version-mismatched or otherwise unreadable is silently treated as a
//! cold cache — [`read_snapshot`] returns `None`, never panics. A
//! whole-payload FNV-1a checksum in the header catches corruption that
//! the structural bounds checks cannot.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  b"LUMENEC1"
//! version  u32      SNAPSHOT_VERSION
//! checksum u64      fnv1a of every byte after this field
//! count    u64      number of entries
//! entry*   — key: arch_fp u64, strategy_fp u64,
//!                 signature 16×u64 (LayerSignature::encode_words),
//!                 reroute u32 len + (tensor u8, from u64, to u64)*
//!          — value: layer name (u32 len + utf8),
//!                 mapping (u32 levels; per level u32+loops temporal,
//!                          u32+loops spatial; loop = dim u8, bound u64),
//!                 analysis (cycles/macs/padded_macs u64, 4×f64 bits,
//!                          u32 levels; per level 3×reads, 3×writes,
//!                          3×conversions f64 bits + 3×tile u64,
//!                          tensors in TensorKind::ALL order),
//!                 energy (u32 items; item = label, category u8,
//!                         tensor u8 (0 = none, else index+1), f64 bits)
//! ```

use crate::{CostCategory, EnergyBreakdown, LayerEvaluation};
use lumen_mapper::{LayerAnalysis, LevelTraffic, Mapping};
use lumen_units::Energy;
use lumen_workload::{fnv1a_bytes, Dim, LayerSignature, TensorKind};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LUMENEC1";
/// Bump on any change to the entry encoding; old files then read as cold.
/// v2: `LayerSignature::ENCODED_WORDS` grew 16 -> 17 (the KV
/// copy-on-write count).
pub(crate) const SNAPSHOT_VERSION: u32 = 2;

/// One persisted cache entry: the full key plus the successful value.
/// (Failures are never persisted — a failed search re-pays cold.)
pub(crate) struct PersistEntry {
    pub arch: u64,
    pub strategy: u64,
    pub signature: LayerSignature,
    pub reroute: Vec<(TensorKind, usize, usize)>,
    pub value: LayerEvaluation,
}

/// Serializes `entries` into a snapshot byte buffer.
pub(crate) fn encode_snapshot(entries: &[PersistEntry]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(entries.len() * 512 + 16);
    put_u64(&mut payload, entries.len() as u64);
    for e in entries {
        put_u64(&mut payload, e.arch);
        put_u64(&mut payload, e.strategy);
        for w in e.signature.encode_words() {
            put_u64(&mut payload, w);
        }
        put_u32(&mut payload, e.reroute.len() as u32);
        for &(t, from, to) in &e.reroute {
            payload.push(t.index() as u8);
            put_u64(&mut payload, from as u64);
            put_u64(&mut payload, to as u64);
        }
        put_str(&mut payload, &e.value.layer_name);
        put_mapping(&mut payload, &e.value.mapping);
        put_analysis(&mut payload, &e.value.analysis);
        put_energy(&mut payload, &e.value.energy);
    }
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, fnv1a_bytes(b"snapshot", &payload));
    out.extend_from_slice(&payload);
    out
}

/// Parses a snapshot byte buffer; `None` on any structural problem,
/// version mismatch or checksum failure.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Option<Vec<PersistEntry>> {
    let mut c = Cursor { bytes, at: 0 };
    if c.take(MAGIC.len())? != &MAGIC[..] || c.u32()? != SNAPSHOT_VERSION {
        return None;
    }
    let checksum = c.u64()?;
    if fnv1a_bytes(b"snapshot", &bytes[c.at..]) != checksum {
        return None;
    }
    let count = usize::try_from(c.u64()?).ok()?;
    // A count that could not fit in the remaining bytes is corruption;
    // refuse before reserving memory for it.
    if count > bytes.len() {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let arch = c.u64()?;
        let strategy = c.u64()?;
        let mut words = [0u64; LayerSignature::ENCODED_WORDS];
        for w in &mut words {
            *w = c.u64()?;
        }
        let signature = LayerSignature::decode_words(&words)?;
        let nreroute = c.u32()? as usize;
        let mut reroute = Vec::with_capacity(nreroute.min(bytes.len()));
        for _ in 0..nreroute {
            let t = tensor_from_index(c.u8()?)?;
            let from = usize::try_from(c.u64()?).ok()?;
            let to = usize::try_from(c.u64()?).ok()?;
            reroute.push((t, from, to));
        }
        let layer_name = c.str()?;
        let mapping = get_mapping(&mut c)?;
        let analysis = get_analysis(&mut c)?;
        let energy = get_energy(&mut c)?;
        entries.push(PersistEntry {
            arch,
            strategy,
            signature,
            reroute,
            value: LayerEvaluation {
                layer_name,
                signature,
                mapping,
                analysis,
                energy,
            },
        });
    }
    // Trailing garbage would have failed the checksum already; accept.
    Some(entries)
}

/// Atomically replaces the snapshot at `path` (write temp + rename).
pub(crate) fn write_snapshot(path: &Path, entries: &[PersistEntry]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let bytes = encode_snapshot(entries);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads and parses the snapshot at `path`; `None` (a cold start) if the
/// file is missing, unreadable or invalid in any way.
pub(crate) fn read_snapshot(path: &Path) -> Option<Vec<PersistEntry>> {
    decode_snapshot(&std::fs::read(path).ok()?)
}

// ---- primitive writers -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_loops(out: &mut Vec<u8>, loops: &[lumen_mapper::Loop]) {
    put_u32(out, loops.len() as u32);
    for l in loops {
        out.push(l.dim.index() as u8);
        put_u64(out, l.bound as u64);
    }
}

fn put_mapping(out: &mut Vec<u8>, mapping: &Mapping) {
    put_u32(out, mapping.levels().len() as u32);
    for level in mapping.levels() {
        put_loops(out, &level.temporal);
        put_loops(out, &level.spatial);
    }
}

fn put_analysis(out: &mut Vec<u8>, a: &LayerAnalysis) {
    put_u64(out, a.cycles);
    put_u64(out, a.macs);
    put_u64(out, a.padded_macs);
    put_f64(out, a.throughput_macs_per_cycle);
    put_f64(out, a.utilization);
    put_f64(out, a.spatial_utilization);
    put_f64(out, a.padding_factor);
    put_u32(out, a.levels.len() as u32);
    for level in &a.levels {
        for t in TensorKind::ALL {
            put_f64(out, level.reads[t]);
        }
        for t in TensorKind::ALL {
            put_f64(out, level.writes[t]);
        }
        for t in TensorKind::ALL {
            put_f64(out, level.conversions[t]);
        }
        for t in TensorKind::ALL {
            put_u64(out, level.tile_elements[t]);
        }
    }
}

fn put_energy(out: &mut Vec<u8>, e: &EnergyBreakdown) {
    put_u32(out, e.items().len() as u32);
    for item in e.items() {
        put_str(out, &item.label);
        out.push(category_index(item.category));
        out.push(match item.tensor {
            None => 0,
            Some(t) => t.index() as u8 + 1,
        });
        put_f64(out, item.energy.raw());
    }
}

fn category_index(c: CostCategory) -> u8 {
    match c {
        CostCategory::Storage => 0,
        CostCategory::Conversion => 1,
        CostCategory::Compute => 2,
        CostCategory::PerCycle => 3,
        CostCategory::Static => 4,
    }
}

// ---- primitive readers -------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        let b = self.take(1)?;
        Some(b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Some(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).ok()
    }
}

fn tensor_from_index(i: u8) -> Option<TensorKind> {
    TensorKind::ALL.get(i as usize).copied()
}

fn dim_from_index(i: u8) -> Option<Dim> {
    Dim::ALL.get(i as usize).copied()
}

fn category_from_index(i: u8) -> Option<CostCategory> {
    Some(match i {
        0 => CostCategory::Storage,
        1 => CostCategory::Conversion,
        2 => CostCategory::Compute,
        3 => CostCategory::PerCycle,
        4 => CostCategory::Static,
        _ => return None,
    })
}

fn get_mapping(c: &mut Cursor<'_>) -> Option<Mapping> {
    let num_levels = c.u32()? as usize;
    if num_levels > c.bytes.len() {
        return None;
    }
    let mut mapping = Mapping::new(num_levels);
    for level in 0..num_levels {
        for spatial in [false, true] {
            let n = c.u32()? as usize;
            for _ in 0..n {
                let dim = dim_from_index(c.u8()?)?;
                let bound = usize::try_from(c.u64()?).ok()?;
                // Stored bounds are always > 1 (push elides unit loops),
                // so the push-based rebuild is exact.
                if bound <= 1 {
                    return None;
                }
                if spatial {
                    mapping.push_spatial(level, dim, bound);
                } else {
                    mapping.push_temporal(level, dim, bound);
                }
            }
        }
    }
    Some(mapping)
}

fn get_analysis(c: &mut Cursor<'_>) -> Option<LayerAnalysis> {
    let cycles = c.u64()?;
    let macs = c.u64()?;
    let padded_macs = c.u64()?;
    let throughput_macs_per_cycle = c.f64()?;
    let utilization = c.f64()?;
    let spatial_utilization = c.f64()?;
    let padding_factor = c.f64()?;
    let num_levels = c.u32()? as usize;
    if num_levels > c.bytes.len() {
        return None;
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        let mut traffic = LevelTraffic::default();
        for t in TensorKind::ALL {
            traffic.reads[t] = c.f64()?;
        }
        for t in TensorKind::ALL {
            traffic.writes[t] = c.f64()?;
        }
        for t in TensorKind::ALL {
            traffic.conversions[t] = c.f64()?;
        }
        for t in TensorKind::ALL {
            traffic.tile_elements[t] = c.u64()?;
        }
        levels.push(traffic);
    }
    Some(LayerAnalysis {
        cycles,
        macs,
        padded_macs,
        throughput_macs_per_cycle,
        utilization,
        spatial_utilization,
        padding_factor,
        levels,
    })
}

fn get_energy(c: &mut Cursor<'_>) -> Option<EnergyBreakdown> {
    let n = c.u32()? as usize;
    let mut energy = EnergyBreakdown::new();
    for _ in 0..n {
        let label = c.str()?;
        let category = category_from_index(c.u8()?)?;
        let tensor = match c.u8()? {
            0 => None,
            i => Some(tensor_from_index(i - 1)?),
        };
        // Stored items are non-zero and pre-merged (`add` skips zeros
        // and merges identical keys), so the add-based rebuild is exact.
        energy.add(label, category, tensor, Energy::from_raw(c.f64()?));
    }
    Some(energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalSession, MappingStrategy, System};
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::Frequency;
    use lumen_workload::{DimSet, Layer, TensorSet};

    fn sample_entry() -> PersistEntry {
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        let layer = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let session = EvalSession::new(System::new(arch, MappingStrategy::default()));
        let value = session.evaluate_layer(&layer).unwrap();
        PersistEntry {
            arch: 0x1234,
            strategy: 0x5678,
            signature: layer.signature(),
            reroute: vec![(TensorKind::Output, 0, 1)],
            value,
        }
    }

    fn assert_bit_identical(a: &LayerEvaluation, b: &LayerEvaluation) {
        assert_eq!(a.layer_name, b.layer_name);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.analysis, b.analysis);
        assert_eq!(a.energy.items().len(), b.energy.items().len());
        for (x, y) in a.energy.items().iter().zip(b.energy.items()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.category, y.category);
            assert_eq!(x.tensor, y.tensor);
            assert_eq!(x.energy.raw().to_bits(), y.energy.raw().to_bits());
        }
        assert_eq!(
            a.energy.total().picojoules().to_bits(),
            b.energy.total().picojoules().to_bits()
        );
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let entry = sample_entry();
        let bytes = encode_snapshot(std::slice::from_ref(&entry));
        let decoded = decode_snapshot(&bytes).expect("valid snapshot");
        assert_eq!(decoded.len(), 1);
        let d = &decoded[0];
        assert_eq!(d.arch, entry.arch);
        assert_eq!(d.strategy, entry.strategy);
        assert_eq!(d.signature, entry.signature);
        assert_eq!(d.reroute, entry.reroute);
        assert_bit_identical(&d.value, &entry.value);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode_snapshot(&[]);
        assert_eq!(decode_snapshot(&bytes).map(|v| v.len()), Some(0));
    }

    #[test]
    fn truncated_and_corrupt_snapshots_are_cold() {
        let bytes = encode_snapshot(&[sample_entry()]);
        // Every truncation point is rejected without panicking.
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Any single flipped byte trips the checksum (or the magic).
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(decode_snapshot(&flipped).is_none());
        // Wrong version reads as cold.
        let mut wrong_version = bytes.clone();
        wrong_version[8] = SNAPSHOT_VERSION as u8 + 1;
        assert!(decode_snapshot(&wrong_version).is_none());
        // Arbitrary garbage too.
        assert!(decode_snapshot(b"not a snapshot at all").is_none());
        assert!(decode_snapshot(&[]).is_none());
    }

    #[test]
    fn write_and_read_snapshot_files() {
        let dir = std::env::temp_dir().join(format!("lumen-persist-test-{}", std::process::id()));
        let path = dir.join("snap.bin");
        let entry = sample_entry();
        write_snapshot(&path, std::slice::from_ref(&entry)).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back.len(), 1);
        assert_bit_identical(&back[0].value, &entry.value);
        // Missing files are a cold start, not an error.
        assert!(read_snapshot(&dir.join("missing.bin")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
