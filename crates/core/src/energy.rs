//! Itemized energy accounting.

use lumen_units::Energy;
use lumen_workload::TensorKind;
use std::fmt;

/// The kind of cost an [`EnergyItem`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostCategory {
    /// Buffer / memory accesses.
    Storage,
    /// Cross-domain data conversion (DAC, ADC, modulation, detection).
    Conversion,
    /// Multiply-accumulate arithmetic.
    Compute,
    /// Data-independent per-cycle costs (laser, thermal tuning).
    PerCycle,
    /// Leakage / bias integrated over the runtime.
    Static,
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CostCategory::Storage => "storage",
            CostCategory::Conversion => "conversion",
            CostCategory::Compute => "compute",
            CostCategory::PerCycle => "per-cycle",
            CostCategory::Static => "static",
        };
        write!(f, "{s}")
    }
}

/// One itemized energy contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyItem {
    /// The contributing component / level (e.g. `"glb"`, `"input-dac"`).
    pub label: String,
    /// Cost class.
    pub category: CostCategory,
    /// The tensor responsible, when attributable.
    pub tensor: Option<TensorKind>,
    /// The energy.
    pub energy: Energy,
}

/// An itemized energy total, summable and queryable by label / category /
/// tensor.
///
/// # Examples
///
/// ```
/// use lumen_core::{CostCategory, EnergyBreakdown};
/// use lumen_units::Energy;
///
/// let mut b = EnergyBreakdown::new();
/// b.add("glb", CostCategory::Storage, None, Energy::from_picojoules(10.0));
/// b.add("adc", CostCategory::Conversion, None, Energy::from_picojoules(5.0));
/// assert_eq!(b.total(), Energy::from_picojoules(15.0));
/// assert_eq!(b.by_category(CostCategory::Conversion), Energy::from_picojoules(5.0));
/// assert_eq!(b.by_label("glb"), Energy::from_picojoules(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyBreakdown {
    items: Vec<EnergyItem>,
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> EnergyBreakdown {
        EnergyBreakdown { items: Vec::new() }
    }

    /// Adds one contribution (merging with an existing identical
    /// label/category/tensor item).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        category: CostCategory,
        tensor: Option<TensorKind>,
        energy: Energy,
    ) {
        if energy == Energy::ZERO {
            return;
        }
        let label = label.into();
        if let Some(item) = self
            .items
            .iter_mut()
            .find(|i| i.label == label && i.category == category && i.tensor == tensor)
        {
            item.energy += energy;
        } else {
            self.items.push(EnergyItem {
                label,
                category,
                tensor,
                energy,
            });
        }
    }

    /// All items in insertion order.
    pub fn items(&self) -> &[EnergyItem] {
        &self.items
    }

    /// Sum of everything.
    pub fn total(&self) -> Energy {
        self.items.iter().map(|i| i.energy).sum()
    }

    /// Sum over items with the given label.
    pub fn by_label(&self, label: &str) -> Energy {
        self.items
            .iter()
            .filter(|i| i.label == label)
            .map(|i| i.energy)
            .sum()
    }

    /// Sum over items of the given category.
    pub fn by_category(&self, category: CostCategory) -> Energy {
        self.items
            .iter()
            .filter(|i| i.category == category)
            .map(|i| i.energy)
            .sum()
    }

    /// Sum over items attributed to the given tensor.
    pub fn by_tensor(&self, tensor: TensorKind) -> Energy {
        self.items
            .iter()
            .filter(|i| i.tensor == Some(tensor))
            .map(|i| i.energy)
            .sum()
    }

    /// Sum over items whose label and tensor match.
    pub fn by_label_and_tensor(&self, label: &str, tensor: TensorKind) -> Energy {
        self.items
            .iter()
            .filter(|i| i.label == label && i.tensor == Some(tensor))
            .map(|i| i.energy)
            .sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for item in &other.items {
            self.add(item.label.clone(), item.category, item.tensor, item.energy);
        }
    }

    /// Returns this breakdown with every item scaled by `factor`
    /// (e.g. `1 / batch` for per-inference energy).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            items: self
                .items
                .iter()
                .map(|i| EnergyItem {
                    label: i.label.clone(),
                    category: i.category,
                    tensor: i.tensor,
                    energy: i.energy * factor,
                })
                .collect(),
        }
    }

    /// Distinct labels in insertion order.
    pub fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for item in &self.items {
            if !labels.contains(&item.label.as_str()) {
                labels.push(&item.label);
            }
        }
        labels
    }

    /// The fraction of the total contributed by `label` (0..=1; 0 if the
    /// total is zero).
    pub fn share_of_label(&self, label: &str) -> f64 {
        let total = self.total();
        if total == Energy::ZERO {
            0.0
        } else {
            self.by_label(label).ratio(total)
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for label in self.labels() {
            let e = self.by_label(label);
            writeln!(
                f,
                "  {:<24} {:>14}  ({:>5.1}%)",
                label,
                format!("{e}"),
                100.0 * self.share_of_label(label)
            )?;
        }
        writeln!(f, "  {:<24} {:>14}", "TOTAL", format!("{total}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.add(
            "glb",
            CostCategory::Storage,
            Some(TensorKind::Weight),
            Energy::from_picojoules(4.0),
        );
        b.add(
            "glb",
            CostCategory::Storage,
            Some(TensorKind::Input),
            Energy::from_picojoules(6.0),
        );
        b.add(
            "adc",
            CostCategory::Conversion,
            Some(TensorKind::Output),
            Energy::from_picojoules(10.0),
        );
        b
    }

    #[test]
    fn totals_and_queries() {
        let b = sample();
        assert!((b.total().picojoules() - 20.0).abs() < 1e-9);
        assert!((b.by_label("glb").picojoules() - 10.0).abs() < 1e-9);
        assert!((b.by_category(CostCategory::Storage).picojoules() - 10.0).abs() < 1e-9);
        assert!((b.by_tensor(TensorKind::Output).picojoules() - 10.0).abs() < 1e-9);
        assert!((b.by_label_and_tensor("glb", TensorKind::Input).picojoules() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn identical_items_merge() {
        let mut b = EnergyBreakdown::new();
        b.add(
            "x",
            CostCategory::Compute,
            None,
            Energy::from_picojoules(1.0),
        );
        b.add(
            "x",
            CostCategory::Compute,
            None,
            Energy::from_picojoules(2.0),
        );
        assert_eq!(b.items().len(), 1);
        assert_eq!(b.total(), Energy::from_picojoules(3.0));
    }

    #[test]
    fn zero_energy_not_recorded() {
        let mut b = EnergyBreakdown::new();
        b.add("x", CostCategory::Compute, None, Energy::ZERO);
        assert!(b.items().is_empty());
    }

    #[test]
    fn merge_and_scale() {
        let mut a = sample();
        a.merge(&sample());
        assert!((a.total().picojoules() - 40.0).abs() < 1e-9);
        let quarter = a.scaled(0.25);
        assert!((quarter.total().picojoules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let b = sample();
        let s: f64 = b.labels().iter().map(|l| b.share_of_label(l)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_keep_insertion_order() {
        let b = sample();
        assert_eq!(b.labels(), vec!["glb", "adc"]);
    }

    #[test]
    fn display_contains_percentages() {
        let shown = format!("{}", sample());
        assert!(shown.contains("TOTAL") && shown.contains('%'));
    }
}
