//! Whole-network evaluation with batching and fused-layer dataflows.

use crate::evaluator::Reroute;
use crate::{EnergyBreakdown, LayerEvaluation, System, SystemError};
use lumen_arch::Architecture;
use lumen_units::Energy;
use lumen_workload::{Network, TensorKind};

/// Fused-layer dataflow configuration: inter-layer activations bypass the
/// backing store and live in an on-chip buffer instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionConfig {
    /// Name of the backing-store level whose activation traffic is
    /// redirected (typically `"dram"`).
    pub backing_store: String,
    /// Name of the on-chip buffer that absorbs the traffic (typically the
    /// global buffer).
    pub buffer: String,
}

/// Network-level evaluation options — the paper's Fig. 4 levers.
#[derive(Debug, Clone, Default)]
pub struct NetworkOptions {
    /// Inference batch size (1 = no batching). Batching amortizes weight
    /// traffic: weights are fetched once per batch instead of once per
    /// inference, at a latency cost.
    pub batch: usize,
    /// Fused-layer dataflow, if enabled.
    pub fusion: Option<FusionConfig>,
}

impl NetworkOptions {
    /// Batch-1, unfused evaluation.
    pub fn baseline() -> NetworkOptions {
        NetworkOptions {
            batch: 1,
            fusion: None,
        }
    }

    /// Sets the batch size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> NetworkOptions {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// Enables layer fusion between the named levels (builder style).
    #[must_use]
    pub fn with_fusion(mut self, backing_store: &str, buffer: &str) -> NetworkOptions {
        self.fusion = Some(FusionConfig {
            backing_store: backing_store.to_string(),
            buffer: buffer.to_string(),
        });
        self
    }
}

/// The result of evaluating a network on a system.
#[derive(Debug, Clone)]
pub struct NetworkEvaluation {
    /// The network's name.
    pub network_name: String,
    /// Per-layer evaluations in execution order (batched shapes).
    pub per_layer: Vec<LayerEvaluation>,
    /// Itemized energy for one *inference* (batch effects divided out).
    pub energy: EnergyBreakdown,
    /// Total cycles for one inference.
    pub cycles: f64,
    /// Total true MACs for one inference.
    pub macs: u64,
    /// The batch size used.
    pub batch: usize,
}

/// The traffic reroute the fused-layer dataflow applies to the layer at
/// `index` of a network whose last layer sits at `last`: inputs of all
/// but the first layer and outputs of all but the last move from the
/// backing store to the fusion buffer. Returns the empty reroute when
/// fusion is off or the named levels do not exist.
///
/// Shared by the sequential [`System::evaluate_network`] path and the
/// content-addressed [`crate::EvalSession`] so both charge fused traffic
/// identically.
pub(crate) fn fusion_reroute(
    arch: &Architecture,
    fusion: Option<&FusionConfig>,
    index: usize,
    last: usize,
) -> Reroute {
    let Some(fusion) = fusion else {
        return Reroute::default();
    };
    let Some(from) = arch.level_index(&fusion.backing_store) else {
        return Reroute::default();
    };
    let Some(to) = arch.level_index(&fusion.buffer) else {
        return Reroute::default();
    };
    let mut entries = Vec::new();
    if index > 0 {
        entries.push((TensorKind::Input, from, to));
    }
    if index < last {
        entries.push((TensorKind::Output, from, to));
    }
    Reroute { entries }
}

impl NetworkEvaluation {
    /// Per-inference energy per MAC.
    pub fn energy_per_mac(&self) -> Energy {
        self.energy.total() / self.macs as f64
    }

    /// MAC-weighted average compute utilization.
    pub fn average_utilization(&self) -> f64 {
        let total: f64 = self.per_layer.iter().map(|l| l.analysis.macs as f64).sum();
        self.per_layer
            .iter()
            .map(|l| l.analysis.utilization * l.analysis.macs as f64 / total)
            .sum()
    }

    /// Whole-network throughput in MACs per cycle.
    pub fn throughput_macs_per_cycle(&self) -> f64 {
        self.macs as f64 / self.cycles
    }
}

impl System {
    /// Evaluates every layer of `network` under `options` and aggregates
    /// per-inference totals.
    ///
    /// Batching sets every layer's batch dimension and divides energy and
    /// cycles back to per-inference figures; weights are fetched once per
    /// batch, so their DRAM share shrinks by the batch factor. Fusion
    /// reroutes inter-layer activations (inputs of all but the first
    /// layer, outputs of all but the last) from the backing store to the
    /// named buffer.
    ///
    /// # Errors
    ///
    /// [`SystemError::NoMapping`] if any layer cannot be mapped.
    pub fn evaluate_network(
        &self,
        network: &Network,
        options: &NetworkOptions,
    ) -> Result<NetworkEvaluation, SystemError> {
        let batch = options.batch.max(1);
        let batched = if batch > 1 {
            network.with_batch(batch)
        } else {
            network.clone()
        };

        let last = batched.layers().len().saturating_sub(1);
        let mut per_layer = Vec::with_capacity(batched.layers().len());
        let mut energy = EnergyBreakdown::new();
        let mut cycles = 0u64;
        for (i, layer) in batched.layers().iter().enumerate() {
            let reroute = fusion_reroute(self.arch(), options.fusion.as_ref(), i, last);
            let eval = self.evaluate_layer_rerouted(layer, &reroute)?;
            cycles += eval.analysis.cycles;
            energy.merge(&eval.energy);
            per_layer.push(eval);
        }

        let scale = 1.0 / batch as f64;
        Ok(NetworkEvaluation {
            network_name: batched.name().to_string(),
            per_layer,
            energy: energy.scaled(scale),
            cycles: cycles as f64 * scale,
            macs: network.total_macs(),
            batch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingStrategy;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::Frequency;
    use lumen_workload::{Dim, DimSet, Layer, TensorSet};

    fn toy_system() -> System {
        let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(100.0))
            .write_energy(Energy::from_picojoules(100.0))
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(Energy::from_picojoules(1.0))
            .write_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute(
                "mac",
                Domain::DigitalElectrical,
                Energy::from_picojoules(0.05),
            )
            .build()
            .unwrap();
        System::new(arch, MappingStrategy::default())
    }

    fn tiny_net() -> Network {
        Network::new("tiny")
            .push(Layer::conv2d("a", 1, 8, 3, 16, 16, 3, 3))
            .push(Layer::conv2d("b", 1, 16, 8, 8, 8, 3, 3))
            .push(Layer::fully_connected("fc", 1, 10, 16 * 8 * 8))
    }

    #[test]
    fn network_totals_sum_layers() {
        let system = toy_system();
        let eval = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline())
            .unwrap();
        assert_eq!(eval.per_layer.len(), 3);
        assert_eq!(eval.macs, tiny_net().total_macs());
        let layer_sum: f64 = eval
            .per_layer
            .iter()
            .map(|l| l.energy.total().picojoules())
            .sum();
        assert!((eval.energy.total().picojoules() - layer_sum).abs() < 1e-6);
        assert!(eval.average_utilization() > 0.0 && eval.average_utilization() <= 1.0);
    }

    #[test]
    fn batching_amortizes_weight_dram_energy() {
        // Amortization needs a weight-stationary-across-batch dataflow:
        // all weight-relevant loops live below the global buffer (at the
        // compute level), so the resident weight tile survives the whole
        // batch loop and DRAM weight fetches are independent of N.
        use lumen_mapper::search::TemporalPlan;
        use lumen_workload::Dim;
        let plan = TemporalPlan {
            assignments: vec![(2, vec![Dim::M, Dim::C, Dim::R, Dim::S])],
            default_level: 1,
        };
        let system = System::new(
            toy_system().arch().clone(),
            MappingStrategy::Planned {
                priority: lumen_mapper::search::DEFAULT_SPATIAL_PRIORITY.to_vec(),
                plan,
            },
        );
        let base = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline())
            .unwrap();
        let batched = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline().with_batch(8))
            .unwrap();
        let w = TensorKind::Weight;
        let base_w = base.energy.by_label_and_tensor("dram", w);
        let batched_w = batched.energy.by_label_and_tensor("dram", w);
        // Weights fetched once per batch -> ~1/8 the per-inference energy.
        assert!(
            batched_w.picojoules() < base_w.picojoules() * 0.2,
            "batched {batched_w} vs base {base_w}"
        );
        // MACs per inference unchanged.
        assert_eq!(batched.macs, base.macs);
    }

    #[test]
    fn fusion_removes_interlayer_dram_activations() {
        let system = toy_system();
        let base = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline())
            .unwrap();
        let fused = system
            .evaluate_network(
                &tiny_net(),
                &NetworkOptions::baseline().with_fusion("dram", "glb"),
            )
            .unwrap();
        // The first layer's input and last layer's output still use DRAM,
        // but inter-layer activations do not; DRAM total shrinks.
        assert!(fused.energy.by_label("dram") < base.energy.by_label("dram"));
        assert!(fused.energy.total() < base.energy.total());
        // Output of the last layer still reaches DRAM.
        assert!(fused.energy.by_label_and_tensor("dram", TensorKind::Output) > Energy::ZERO);
    }

    #[test]
    fn fusion_and_batching_compose() {
        let system = toy_system();
        let base = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline())
            .unwrap();
        let both = system
            .evaluate_network(
                &tiny_net(),
                &NetworkOptions::baseline()
                    .with_batch(8)
                    .with_fusion("dram", "glb"),
            )
            .unwrap();
        assert!(both.energy.total() < base.energy.total());
    }

    #[test]
    fn transformer_block_totals_sum_layers() {
        use lumen_workload::{Attention, Network};
        let system = toy_system();
        let mut net = Network::new("mini-attn");
        for layer in Attention::new("attn", 16, 64, 4).lower() {
            net = net.push(layer);
        }
        let eval = system
            .evaluate_network(&net, &NetworkOptions::baseline())
            .unwrap();
        assert_eq!(eval.per_layer.len(), 6);
        assert_eq!(eval.macs, net.total_macs());
        for layer_eval in &eval.per_layer {
            assert!(layer_eval.energy.total().is_finite());
            assert!(layer_eval.analysis.utilization > 0.0);
        }
        let layer_macs: u64 = eval.per_layer.iter().map(|l| l.analysis.macs).sum();
        assert_eq!(layer_macs, net.total_macs());
    }

    #[test]
    fn throughput_is_macs_over_cycles() {
        let system = toy_system();
        let eval = system
            .evaluate_network(&tiny_net(), &NetworkOptions::baseline())
            .unwrap();
        let t = eval.throughput_macs_per_cycle();
        assert!(t > 0.0 && t <= system.arch().peak_parallelism() as f64);
    }
}
