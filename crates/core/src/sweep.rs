//! Parallel sweep execution.
//!
//! Design-space sweeps (the Fig. 2–5 experiments, [`crate::dse::sweep`],
//! mapper comparisons) are embarrassingly parallel: every point is an
//! independent *(system, workload, options)* evaluation. [`SweepRunner`]
//! fans a list of points out over a scoped thread pool and returns the
//! results in input order, so callers keep the exact semantics of their
//! old sequential loops — including "fail on the *first* erroring point".
//!
//! `rayon` is the obvious tool here, but this workspace builds without
//! registry access, so the runner uses `std::thread::scope` with an
//! atomic work-stealing cursor instead; for the coarse-grained points a
//! sweep evaluates (whole-network evaluations taking milliseconds each)
//! the scheduling overhead is negligible.
//!
//! # Examples
//!
//! ```
//! use lumen_core::SweepRunner;
//!
//! let squares = SweepRunner::new().run(0..8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Largest worker count the `LUMEN_SWEEP_THREADS` override accepts.
/// Anything larger is a typo or a unit confusion (sweeps are
/// coarse-grained; thousands of workers would only thrash), so such
/// values fall back to available parallelism rather than spawning an
/// absurd pool.
pub const MAX_FORCED_THREADS: usize = 512;

/// Validates a `LUMEN_SWEEP_THREADS` value: a whole number in
/// `1..=MAX_FORCED_THREADS`. Returns the reason it was rejected
/// otherwise.
fn parse_thread_override(value: &str) -> Result<usize, &'static str> {
    let Ok(n) = value.trim().parse::<usize>() else {
        return Err("expected a whole-number thread count");
    };
    if n == 0 {
        return Err("thread count must be at least 1");
    }
    if n > MAX_FORCED_THREADS {
        return Err("thread count is implausibly large");
    }
    Ok(n)
}

/// Runs independent evaluation points across worker threads, preserving
/// input order in the results.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: NonZeroUsize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine's available parallelism, or to the
    /// `LUMEN_SWEEP_THREADS` environment variable when set (useful to
    /// force sequential execution for profiling or flaky-CI bisection).
    ///
    /// Invalid overrides — non-numeric values, `0`, or counts above
    /// [`MAX_FORCED_THREADS`] — are ignored with a one-time warning and
    /// the runner falls back to available parallelism.
    pub fn new() -> SweepRunner {
        // The override is resolved (and any parse warning printed) once
        // per process: sweeps are constructed inside bench iteration
        // loops, where a per-construction warning would flood stderr.
        static FORCED: OnceLock<Option<usize>> = OnceLock::new();
        let forced = *FORCED.get_or_init(|| match std::env::var("LUMEN_SWEEP_THREADS") {
            Ok(value) => match parse_thread_override(&value) {
                Ok(n) => Some(n),
                Err(reason) => {
                    eprintln!(
                        "warning: ignoring LUMEN_SWEEP_THREADS={value:?} ({reason}); \
                         using available parallelism"
                    );
                    None
                }
            },
            Err(_) => None,
        });
        if let Some(forced) = forced {
            return SweepRunner::with_threads(forced);
        }
        let threads =
            thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("1 is nonzero"));
        SweepRunner { threads }
    }

    /// A runner with an explicit worker count (`0` is clamped to `1`).
    /// `with_threads(1)` degenerates to a sequential loop on the calling
    /// thread — useful for debugging and deterministic profiling.
    pub fn with_threads(threads: usize) -> SweepRunner {
        SweepRunner {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1"),
        }
    }

    /// The number of worker threads this runner will spawn.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Evaluates `eval` on every point, in parallel, returning results in
    /// the points' input order.
    pub fn run<P, R, F>(&self, points: impl IntoIterator<Item = P>, eval: F) -> Vec<R>
    where
        P: Send,
        R: Send,
        F: Fn(P) -> R + Sync,
    {
        let outcomes = self.dispatch(points, |p| Ok::<R, Never>(eval(p)));
        outcomes
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(never) => match never {},
            })
            .collect()
    }

    /// Fallible variant of [`run`](SweepRunner::run): evaluates every
    /// point and returns either all results (input order) or the error of
    /// the **earliest** failing point — the same error a sequential
    /// `for` loop with `?` would have surfaced, so parallelism never
    /// changes which error callers observe.
    ///
    /// All points are evaluated even when one fails early; sweep points
    /// are cheap enough that cancellation machinery isn't worth the
    /// complexity.
    pub fn try_run<P, R, E, F>(
        &self,
        points: impl IntoIterator<Item = P>,
        eval: F,
    ) -> Result<Vec<R>, E>
    where
        P: Send,
        R: Send,
        E: Send,
        F: Fn(P) -> Result<R, E> + Sync,
    {
        let outcomes = self.dispatch(points, eval);
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            results.push(outcome?);
        }
        Ok(results)
    }

    /// Work-stealing core: evaluates every point, returning one outcome
    /// per point in input order. Workers pull *(index, point)* pairs from
    /// a shared queue — locked only to pop, never while evaluating — and
    /// buffer outcomes locally, so the merge at the end is the only other
    /// synchronization point.
    fn dispatch<P, R, E, F>(
        &self,
        points: impl IntoIterator<Item = P>,
        eval: F,
    ) -> Vec<Result<R, E>>
    where
        P: Send,
        R: Send,
        E: Send,
        F: Fn(P) -> Result<R, E> + Sync,
    {
        let points: Vec<P> = points.into_iter().collect();
        let n = points.len();
        let workers = self.threads.get().min(n);

        if workers <= 1 {
            return points.into_iter().map(eval).collect();
        }

        let queue = Mutex::new(points.into_iter().enumerate());
        let merged: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(n));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue lock").next();
                        let Some((i, point)) = next else { break };
                        local.push((i, eval(point)));
                    }
                    merged.lock().expect("merge lock").extend(local);
                });
            }
        });

        let mut outcomes = merged.into_inner().expect("workers joined");
        debug_assert_eq!(outcomes.len(), n, "every point evaluated exactly once");
        outcomes.sort_by_key(|(i, _)| *i);
        outcomes.into_iter().map(|(_, outcome)| outcome).collect()
    }
}

/// Local stand-in for the unstable `!` type, so [`SweepRunner::run`] can
/// reuse the fallible dispatch path.
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let runner = SweepRunner::with_threads(4);
        let out = runner.run(0..64, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn evaluates_every_point_exactly_once() {
        let runner = SweepRunner::with_threads(8);
        let hits = AtomicUsize::new(0);
        let out = runner.run(0..100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn try_run_reports_earliest_error() {
        let runner = SweepRunner::with_threads(4);
        let result: Result<Vec<usize>, String> = runner.try_run(0..32, |i| {
            if i == 20 || i == 5 {
                Err(format!("point {i} failed"))
            } else {
                Ok(i)
            }
        });
        // Two points fail; the sequential-equivalent error is the lower
        // index regardless of which thread finished first.
        assert_eq!(result.unwrap_err(), "point 5 failed");
    }

    #[test]
    fn try_run_ok_keeps_order() {
        let runner = SweepRunner::with_threads(3);
        let result: Result<Vec<usize>, ()> = runner.try_run(0..10, Ok);
        assert_eq!(result.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runner_is_sequential_and_correct() {
        let runner = SweepRunner::with_threads(1);
        assert_eq!(runner.threads(), 1);
        let out = runner.run(0..5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
    }

    #[test]
    fn thread_override_accepts_sane_counts() {
        assert_eq!(parse_thread_override("1"), Ok(1));
        assert_eq!(parse_thread_override(" 8 "), Ok(8));
        assert_eq!(
            parse_thread_override(&MAX_FORCED_THREADS.to_string()),
            Ok(MAX_FORCED_THREADS)
        );
    }

    #[test]
    fn thread_override_rejects_zero() {
        assert!(parse_thread_override("0").is_err());
        assert!(parse_thread_override(" 0 ").is_err());
    }

    #[test]
    fn thread_override_rejects_non_numeric() {
        for bad in ["", "auto", "four", "2.5", "-3", "8x", "0x10"] {
            assert!(parse_thread_override(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn thread_override_rejects_huge_values() {
        assert!(parse_thread_override("513").is_err());
        assert!(parse_thread_override("4294967296").is_err());
        // Larger than usize::MAX: must not panic, just reject.
        assert!(parse_thread_override("99999999999999999999999999").is_err());
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let runner = SweepRunner::new();
        let out: Vec<u8> = runner.run(std::iter::empty::<u8>(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |i: usize| (i * 31 + 7) % 97;
        let seq = SweepRunner::with_threads(1).run(0..200, work);
        let par = SweepRunner::with_threads(8).run(0..200, work);
        assert_eq!(seq, par);
    }
}
