//! Content-addressed evaluation: cached vs uncached `evaluate_network`.
//!
//! Pins the performance claim of the evaluation-cache refactor: on
//! transformer workloads (bert-base repeats one encoder block 12x — 96
//! layers, 5 unique signatures) the [`lumen_core::EvalSession`] path must
//! be at least 3x faster than the sequential uncached path, and on the
//! Fig. 4 sweep the cached drivers must not regress. Besides the
//! criterion timings, the bench emits `BENCH_eval.json` at the repo root
//! with wall times and cache hit rates, so the perf trajectory is
//! tracked as an artifact.
//!
//! Run `cargo bench -p lumen-bench --bench eval_cache` for timings, or
//! append `-- --test` for the CI smoke profile (one iteration per bench,
//! bit-identity asserted, no timing artifact written).

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_core::{EvalSession, NetworkOptions, System};
use lumen_workload::networks;
use std::hint::black_box;
use std::time::Instant;

fn albireo_system() -> System {
    AlbireoConfig::new(ScalingProfile::Aggressive).build_system()
}

/// The speedup floor the content-addressed pipeline must clear on
/// transformer workloads — asserted by the full bench on developer
/// machines and by the `LUMEN_BENCH_ASSERT_SPEEDUP` smoke gate in CI
/// (`BENCH_eval.json` tracks the actual trajectory: ~4.4x cold, ~7.5x
/// warm).
const SPEEDUP_FLOOR: f64 = 3.0;

/// Best-of-`runs` wall time of `f`, in seconds.
fn best_seconds<O>(runs: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The shared measurement protocol behind both the CI speedup gate and
/// the developer-machine wall-time artifact: best-of-3 bert-base wall
/// times for the sequential uncached path, a cold session (fresh cache)
/// and a warm session (cache primed). Returns `(uncached, cold, warm)`
/// seconds.
fn measure_walls(system: &System, net: &lumen_workload::Network) -> (f64, f64, f64) {
    let options = NetworkOptions::baseline();
    let uncached = best_seconds(3, || system.evaluate_network(net, &options).unwrap());
    let cold = best_seconds(3, || {
        EvalSession::new(system.clone())
            .evaluate_network(net, &options)
            .unwrap()
    });
    let warm_session = EvalSession::new(system.clone());
    warm_session.evaluate_network(net, &options).unwrap();
    let warm = best_seconds(3, || warm_session.evaluate_network(net, &options).unwrap());
    (uncached, cold, warm)
}

/// Asserts the cached path reproduces the sequential path bit for bit on
/// `name`, and returns `(unique evals, cache hits)`.
fn assert_bit_identical(system: &System, name: &str) -> (u64, u64) {
    let net = networks::by_name(name).expect("bundled network");
    let sequential = system
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("sequential path maps");
    let session = EvalSession::new(system.clone());
    let cached = session
        .evaluate_network(&net, &NetworkOptions::baseline())
        .expect("cached path maps");
    assert_eq!(
        sequential.energy.total().picojoules().to_bits(),
        cached.energy.total().picojoules().to_bits(),
        "{name}: cached energy drifted from the sequential path"
    );
    assert_eq!(
        sequential.cycles.to_bits(),
        cached.cycles.to_bits(),
        "{name}: cached cycles drifted from the sequential path"
    );
    let stats = session.cache_stats();
    (stats.misses, stats.hits)
}

fn write_json(path: &std::path::Path, entries: &[(&str, f64)], extras: &[(&str, f64)]) {
    let mut body = String::from("{\n  \"bench\": \"eval_cache\",\n");
    for (key, value) in entries {
        body.push_str(&format!("  \"{key}_ms\": {:.3},\n", value * 1e3));
    }
    for (key, value) in extras {
        body.push_str(&format!("  \"{key}\": {value:.4},\n"));
    }
    // Trim the trailing comma for strict JSON.
    let body = body.trim_end_matches(",\n").to_string() + "\n}\n";
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write {path:?}: {e}");
    }
}

fn bench_eval_cache(c: &mut Criterion) {
    let system = albireo_system();
    let net = networks::bert_base();
    let options = NetworkOptions::baseline();

    // Correctness gate (runs in smoke mode too): cached == sequential,
    // and bert-base maps exactly its unique signature count.
    let (unique, hits) = assert_bit_identical(&system, "bert-base");
    assert_eq!(unique, 5, "bert-base has 5 unique layer signatures");
    assert_eq!(hits, 91, "96 layers - 5 unique = 91 cache answers");
    for name in ["gpt2-small", "vit-b16", "resnet18"] {
        assert_bit_identical(&system, name);
    }

    print_once("Eval cache — cached vs uncached evaluate_network", || {
        println!("bert-base: {unique} unique signatures, {hits} of 96 layers from cache");
    });

    // Two consumers share one wall-time measurement (so a developer
    // reproducing the CI gate locally never pays for — or compares —
    // two divergent measurements):
    //
    // * the CI bench-regression gate: `LUMEN_BENCH_ASSERT_SPEEDUP=1`
    //   (set by the workflow's bench step, which runs in smoke mode)
    //   asserts the cold/warm speedup floor even on a shared runner — a
    //   *ratio* taken best-of-3 on one machine is robust where absolute
    //   wall times are not;
    // * the developer-machine wall-time artifact (`BENCH_eval.json`),
    //   which skips shared CI runners (the `CI` env var is the Actions
    //   convention) because absolute times there are too noisy to keep.
    let gate_speedups = std::env::var_os("LUMEN_BENCH_ASSERT_SPEEDUP").is_some();
    let write_artifact = !c.is_smoke() && std::env::var_os("CI").is_none();
    if gate_speedups || write_artifact {
        let (uncached, cold, warm) = measure_walls(&system, &net);
        let (speedup_cold, speedup_warm) = (uncached / cold, uncached / warm);
        println!(
            "bert-base: uncached {:.1} ms, cached cold {:.1} ms ({speedup_cold:.1}x), \
             warm {:.2} ms ({speedup_warm:.1}x); floor {SPEEDUP_FLOOR:.1}x",
            uncached * 1e3,
            cold * 1e3,
            warm * 1e3,
        );
        assert!(
            speedup_cold >= SPEEDUP_FLOOR,
            "cold cached speedup regressed below the floor: \
             {speedup_cold:.2}x < {SPEEDUP_FLOOR:.1}x"
        );
        if gate_speedups {
            assert!(
                speedup_warm >= SPEEDUP_FLOOR,
                "warm cached speedup regressed below the floor: \
                 {speedup_warm:.2}x < {SPEEDUP_FLOOR:.1}x"
            );
        }
        if write_artifact {
            let fig4 = best_seconds(2, || experiments::fig4_memory_exploration().unwrap());
            println!("fig4 sweep {:.0} ms", fig4 * 1e3);
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
            write_json(
                &root.join("BENCH_eval.json"),
                &[
                    ("bert_base_uncached", uncached),
                    ("bert_base_cached_cold", cold),
                    ("bert_base_cached_warm", warm),
                    ("fig4_sweep_cached", fig4),
                ],
                &[
                    ("bert_base_speedup_cold", speedup_cold),
                    ("bert_base_speedup_warm", speedup_warm),
                    ("bert_base_unique_signatures", unique as f64),
                    ("bert_base_hit_rate", hits as f64 / (hits + unique) as f64),
                ],
            );
        }
    }

    let mut group = c.benchmark_group("eval_cache");
    group.bench_function("bert_base_uncached_sequential", |b| {
        b.iter(|| {
            system
                .evaluate_network(black_box(&net), &options)
                .unwrap()
                .energy
                .total()
        });
    });
    group.bench_function("bert_base_cached_cold", |b| {
        b.iter(|| {
            EvalSession::new(system.clone())
                .evaluate_network(black_box(&net), &options)
                .unwrap()
                .energy
                .total()
        });
    });
    let warm = EvalSession::new(system.clone());
    group.bench_function("bert_base_cached_warm", |b| {
        b.iter(|| {
            warm.evaluate_network(black_box(&net), &options)
                .unwrap()
                .energy
                .total()
        });
    });
    group.bench_function("fig4_sweep_cached", |b| {
        b.iter(|| {
            experiments::fig4_memory_exploration()
                .unwrap()
                .combined_reduction(ScalingProfile::Aggressive)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eval_cache);
criterion_main!(benches);
