//! Fig. 5 — architecture exploration of analog/optical reuse bench.
//!
//! Prints all 18 reuse configurations (weight-reuse variant × OR × IR)
//! with per-segment accelerator energy, then times the sweep — this is
//! the paper's "rapid design space exploration" workload.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{experiments, AlbireoConfig, ScalingProfile, WeightReuse};
use lumen_bench::print_once;
use lumen_core::NetworkOptions;
use lumen_workload::networks;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    print_once("Fig. 5 — analog/optical reuse exploration", || {
        let result = experiments::fig5_reuse_exploration().expect("fig5 evaluates");
        println!("{result}");
    });

    let net = networks::resnet18();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("one_design_point", |b| {
        let system = AlbireoConfig::new(ScalingProfile::Aggressive)
            .with_weight_reuse(WeightReuse::More)
            .with_output_reuse(15)
            .with_input_reuse(45)
            .build_system();
        b.iter(|| {
            let eval = system
                .evaluate_network(black_box(&net), &NetworkOptions::baseline())
                .unwrap();
            black_box(eval.energy.total())
        });
    });
    group.bench_function("full_18_point_sweep", |b| {
        b.iter(|| {
            black_box(
                experiments::fig5_reuse_exploration()
                    .unwrap()
                    .accelerator_reduction(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
