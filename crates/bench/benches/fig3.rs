//! Fig. 3 — throughput bench.
//!
//! Prints ideal vs reported vs modeled MACs/cycle for VGG16 and AlexNet,
//! then times whole-network throughput evaluation (the model must stay
//! fast enough for workload sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_core::NetworkOptions;
use lumen_workload::networks;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    print_once("Fig. 3 — throughput for two DNN workloads", || {
        let result = experiments::fig3_throughput().expect("fig3 evaluates");
        println!("{result}");
    });

    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    let vgg = networks::vgg16();
    let alexnet = networks::alexnet();
    let options = NetworkOptions::baseline();

    let mut group = c.benchmark_group("fig3");
    group.bench_function("evaluate_vgg16", |b| {
        b.iter(|| {
            let eval = system.evaluate_network(black_box(&vgg), &options).unwrap();
            black_box(eval.throughput_macs_per_cycle())
        });
    });
    group.bench_function("evaluate_alexnet", |b| {
        b.iter(|| {
            let eval = system
                .evaluate_network(black_box(&alexnet), &options)
                .unwrap();
            black_box(eval.throughput_macs_per_cycle())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
