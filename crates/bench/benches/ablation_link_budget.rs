//! Ablation: how much of the Fig. 5 tradeoff comes from the optical link
//! budget?
//!
//! DESIGN.md calls out the link-budget model (laser power grows with
//! star-coupler splitting) as the physical mechanism that penalizes large
//! input-reuse factors. This ablation recomputes the Fig. 5 IR sweep's
//! laser term with and without splitting losses and prints both series.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_components::{LinkBudget, StarCoupler};
use lumen_units::{Decibel, Frequency, Power};
use std::hint::black_box;

fn laser_pj_per_symbol(ir: usize, with_splitting: bool) -> f64 {
    let splits = ir * 9;
    let mut budget = LinkBudget::new(Power::from_dbm(-14.1))
        .with_loss(Decibel::new(1.2)) // modulator insertion
        .with_loss(Decibel::new(2.0)) // waveguide
        .with_loss(Decibel::new(0.5)) // ring through-path
        .with_loss(Decibel::new(2.0)) // coupling
        .with_margin(Decibel::new(3.0))
        .with_wall_plug_efficiency(0.25);
    if with_splitting {
        budget = budget.with_loss(StarCoupler::new(splits).total_loss());
    }
    budget
        .energy_per_symbol(Frequency::from_gigahertz(5.0))
        .picojoules()
}

fn bench_ablation(c: &mut Criterion) {
    print_once(
        "Ablation — laser link budget vs input-reuse factor",
        || {
            println!("IR   splits  laser pJ/symbol (with budget)  (ideal optics)");
            println!("-----------------------------------------------------------");
            for ir in [9usize, 27, 45] {
                println!(
                    "{ir:<4} {:<7} {:>18.3} {:>22.3}",
                    ir * 9,
                    laser_pj_per_symbol(ir, true),
                    laser_pj_per_symbol(ir, false),
                );
            }
            println!();
            println!("Without the budget, growing IR looks free; with it, the 10*log10(N)");
            println!("splitting loss makes the laser pay linearly for optical fan-out.");
        },
    );

    let mut group = c.benchmark_group("ablation_link_budget");
    group.bench_function("link_budget_eval", |b| {
        b.iter(|| black_box(laser_pj_per_symbol(black_box(45), true)));
    });
    group.bench_function("arch_rebuild_per_ir", |b| {
        b.iter(|| {
            for ir in [9usize, 27, 45] {
                let arch = AlbireoConfig::new(ScalingProfile::Aggressive)
                    .with_input_reuse(ir)
                    .build_arch();
                black_box(arch.peak_parallelism());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
