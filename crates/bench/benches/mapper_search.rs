//! Ablation: mapper search-strategy quality and speed.
//!
//! Compares the deterministic greedy constructor, seeded random search
//! and exhaustive enumeration on a mid-size conv layer, printing the
//! DRAM-traffic cost each strategy achieves before timing them.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_mapper::search::{
    exhaustive_search, greedy_mapping, random_search, SearchConfig, TemporalPlan,
    DEFAULT_SPATIAL_PRIORITY,
};
use lumen_mapper::{analyze, LayerAnalysis};
use lumen_workload::Layer;
use std::hint::black_box;

fn cost(analysis: &LayerAnalysis) -> f64 {
    analysis.level(0).total_accesses()
}

fn bench_mapper_search(c: &mut Criterion) {
    let arch = AlbireoConfig::new(ScalingProfile::Conservative).build_arch();
    let layer = Layer::conv2d("probe", 1, 128, 64, 28, 28, 3, 3);

    print_once(
        "Ablation — mapper search strategies (DRAM accesses)",
        || {
            let greedy = greedy_mapping(
                &arch,
                &layer,
                &DEFAULT_SPATIAL_PRIORITY,
                &TemporalPlan::all_at(1),
            );
            let greedy_cost = cost(&analyze(&arch, &layer, &greedy).unwrap());
            let random = random_search(
                &arch,
                &layer,
                SearchConfig {
                    iterations: 400,
                    seed: 0xBEEF,
                },
                cost,
            )
            .expect("random search finds a mapping");
            let exhaustive =
                exhaustive_search(&arch, &layer, cost).expect("exhaustive finds a mapping");
            println!("strategy     DRAM accesses");
            println!("---------------------------");
            println!("greedy       {greedy_cost:.0}");
            println!(
                "random(400)  {:.0}  ({} legal candidates)",
                random.cost, random.evaluated
            );
            println!(
                "exhaustive   {:.0}  ({} legal candidates)",
                exhaustive.cost, exhaustive.evaluated
            );
        },
    );

    let mut group = c.benchmark_group("mapper_search");
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(greedy_mapping(
                &arch,
                black_box(&layer),
                &DEFAULT_SPATIAL_PRIORITY,
                &TemporalPlan::all_at(1),
            ))
        });
    });
    group.bench_function("analyze_once", |b| {
        let mapping = greedy_mapping(
            &arch,
            &layer,
            &DEFAULT_SPATIAL_PRIORITY,
            &TemporalPlan::all_at(1),
        );
        b.iter(|| black_box(analyze(&arch, &layer, black_box(&mapping)).unwrap()));
    });
    group.sample_size(10);
    group.bench_function("random_search_100", |b| {
        b.iter(|| {
            black_box(random_search(
                &arch,
                black_box(&layer),
                SearchConfig {
                    iterations: 100,
                    seed: 7,
                },
                cost,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mapper_search);
criterion_main!(benches);
