//! Extension: photonic vs digital-electronic full-system comparison.
//!
//! Prints energy-per-MAC and throughput for a peak-matched DE-only MAC
//! array against Albireo at the conservative and aggressive corners —
//! quantifying the paper's motivation that photonic benefits only
//! materialize once conversions and DRAM are managed.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{compare_with_digital, DigitalBaseline, ScalingProfile};
use lumen_bench::print_once;
use lumen_core::NetworkOptions;
use lumen_workload::networks;
use std::hint::black_box;

fn bench_digital_baseline(c: &mut Criterion) {
    print_once(
        "Extension — photonic vs digital baseline (full system)",
        || {
            for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
                let rows = compare_with_digital(scaling).expect("comparison evaluates");
                println!("scaling corner: {scaling}");
                println!(
                    "network      digital pJ/MAC  photonic pJ/MAC  energy adv.  throughput adv."
                );
                println!(
                    "--------------------------------------------------------------------------"
                );
                for row in rows {
                    println!(
                        "{:<12} {:>14.3} {:>16.3} {:>11.2}x {:>15.2}x",
                        row.network,
                        row.digital_pj_per_mac,
                        row.photonic_pj_per_mac,
                        row.energy_advantage(),
                        row.throughput_advantage()
                    );
                }
                println!();
            }
        },
    );

    let system = DigitalBaseline::new().build_system();
    let net = networks::resnet18();
    let mut group = c.benchmark_group("digital_baseline");
    group.bench_function("resnet18_on_digital", |b| {
        b.iter(|| {
            let eval = system
                .evaluate_network(black_box(&net), &NetworkOptions::baseline())
                .unwrap();
            black_box(eval.energy.total())
        });
    });
    group.sample_size(10);
    group.bench_function("full_comparison", |b| {
        b.iter(|| {
            black_box(
                compare_with_digital(ScalingProfile::Aggressive)
                    .unwrap()
                    .len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_digital_baseline);
criterion_main!(benches);
