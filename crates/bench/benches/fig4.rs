//! Fig. 4 — full-system (accelerator + DRAM) memory exploration bench.
//!
//! Prints the eight ResNet18 bars (two scaling corners × batching ×
//! fusion) with their six energy segments, then times the exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{experiments, AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_core::NetworkOptions;
use lumen_workload::networks;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    print_once(
        "Fig. 4 — memory exploration (batching, fusion, DRAM)",
        || {
            let result = experiments::fig4_memory_exploration().expect("fig4 evaluates");
            println!("{result}");
        },
    );

    let net = networks::resnet18();
    let system = AlbireoConfig::new(ScalingProfile::Aggressive).build_system();
    let fused_system = AlbireoConfig::new(ScalingProfile::Aggressive)
        .with_glb_mebibytes(16)
        .build_system();

    let mut group = c.benchmark_group("fig4");
    group.bench_function("resnet18_baseline", |b| {
        b.iter(|| {
            let eval = system
                .evaluate_network(black_box(&net), &NetworkOptions::baseline())
                .unwrap();
            black_box(eval.energy.total())
        });
    });
    group.bench_function("resnet18_batched_fused", |b| {
        let options = NetworkOptions::baseline()
            .with_batch(16)
            .with_fusion("dram", "glb");
        b.iter(|| {
            let eval = fused_system
                .evaluate_network(black_box(&net), &options)
                .unwrap();
            black_box(eval.energy.total())
        });
    });
    group.bench_function("all_eight_bars", |b| {
        b.iter(|| {
            black_box(
                experiments::fig4_memory_exploration()
                    .unwrap()
                    .combined_reduction(ScalingProfile::Aggressive),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
