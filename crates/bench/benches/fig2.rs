//! Fig. 2 — energy-breakdown validation bench.
//!
//! Prints the modeled-vs-reported best-case energy breakdown for the
//! three optical scaling corners, then times one full bottom-up
//! evaluation (map → nest analysis → energy) of the reference layer.

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{experiments, reference_layer, AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    print_once("Fig. 2 — best-case energy breakdown validation", || {
        let result = experiments::fig2_energy_breakdown().expect("fig2 evaluates");
        println!("{result}");
    });

    let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
    let layer = reference_layer();
    let mut group = c.benchmark_group("fig2");
    group.bench_function("evaluate_reference_layer", |b| {
        b.iter(|| {
            let eval = system.evaluate_layer(black_box(&layer)).unwrap();
            black_box(eval.energy.total())
        });
    });
    group.bench_function("full_three_corner_validation", |b| {
        b.iter(|| {
            black_box(
                experiments::fig2_energy_breakdown()
                    .unwrap()
                    .average_error(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
