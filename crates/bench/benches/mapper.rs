//! Mapper throughput: pruned/deduplicated search and the persistent
//! eval cache.
//!
//! Pins the two performance claims of the mapper-speed refactor:
//!
//! * **Search does less work for the same answer.** On a transformer
//!   GEMM, `random_search` (candidate dedup) and `random_search_pruned`
//!   (dedup + lower-bound early exit) must land on the bit-identical
//!   winning mapping of the naive baseline while calling `analyze` on
//!   strictly fewer candidates.
//! * **Persistence pays across processes.** A warm-from-disk
//!   [`lumen_core::EvalCache`] must make a repeated bert-base evaluation
//!   at least 2x faster than the cold run that populated it (in
//!   practice the warm run does no mapping search at all), with
//!   bit-identical results.
//!
//! Besides the criterion timings, the bench emits `BENCH_mapper.json`
//! at the repo root (searches/s, candidates analyzed vs. skipped, cold
//! vs. persisted-warm wall times on bert-base and the decode serving
//! workload), so the perf trajectory is tracked as an artifact.
//!
//! Run `cargo bench -p lumen-bench --bench mapper` for timings, or
//! append `-- --test` for the CI smoke profile (one iteration per
//! bench, identity and work-reduction asserted, no artifact written).

use criterion::{criterion_group, criterion_main, Criterion};
use lumen_albireo::{AlbireoConfig, ScalingProfile};
use lumen_bench::print_once;
use lumen_core::{EvalCache, EvalSession, MappingStrategy, NetworkOptions, System};
use lumen_mapper::search::{
    random_search, random_search_baseline, random_search_pruned, SearchConfig, SearchResult,
};
use lumen_mapper::{outer_read_traffic, LayerAnalysis};
use lumen_workload::{networks, Layer, Network};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Cross-process warm-start floor asserted under
/// `LUMEN_BENCH_ASSERT_SPEEDUP` (the trajectory in `BENCH_mapper.json`
/// is orders of magnitude above it: the warm run searches nothing).
const PERSIST_SPEEDUP_FLOOR: f64 = 2.0;

const SEARCH: SearchConfig = SearchConfig {
    iterations: 400,
    seed: 0xBEEF,
};

/// DRAM pressure: the classic search objective, and one the exact
/// outer-read lower bound can prune against.
fn cost(analysis: &LayerAnalysis) -> f64 {
    analysis.level(0).total_accesses()
}

/// Best-of-`runs` wall time of `f`, in seconds.
fn best_seconds<O>(runs: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn albireo_system() -> System {
    AlbireoConfig::new(ScalingProfile::Aggressive).build_system()
}

/// A scratch cache directory unique to this bench invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lumen-bench-mapper-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the three search variants on `layer` and checks the refactor's
/// contract: identical winning mapping and cost, strictly less
/// `analyze` work. Returns `(baseline, deduped, pruned)`.
fn search_contract(system: &System, layer: &Layer) -> (SearchResult, SearchResult, SearchResult) {
    let arch = system.arch();
    let baseline = random_search_baseline(arch, layer, SEARCH, cost).expect("baseline search maps");
    let deduped = random_search(arch, layer, SEARCH, cost).expect("deduped search maps");
    let lb = |m: &lumen_mapper::Mapping| {
        outer_read_traffic(arch, layer, m)
            .iter()
            .filter(|(level, _, _)| *level == 0)
            .map(|(_, _, reads)| reads)
            .sum()
    };
    let pruned = random_search_pruned(arch, layer, SEARCH, lb, cost).expect("pruned search maps");
    for (name, result) in [("dedup", &deduped), ("prune", &pruned)] {
        assert_eq!(
            baseline.mapping,
            result.mapping,
            "{name}: winning mapping drifted from the naive baseline on {}",
            layer.name()
        );
        assert_eq!(
            baseline.cost.to_bits(),
            result.cost.to_bits(),
            "{name}: winning cost drifted on {}",
            layer.name()
        );
        assert!(
            result.evaluated < baseline.evaluated,
            "{name}: expected fewer analyze calls than the baseline's {} on {}, got {}",
            baseline.evaluated,
            layer.name(),
            result.evaluated
        );
    }
    (baseline, deduped, pruned)
}

/// Cold-populates a persistent cache in `dir` with `net`, saves it, then
/// warm-starts a second cache from disk — two sessions over fresh
/// `EvalCache::persistent_in` instances, exactly what two CLI processes
/// sharing `--cache-dir` do. Returns `(cold, warm)` seconds.
fn persist_walls(system: &System, net: &Network, dir: &Path) -> (f64, f64) {
    let options = NetworkOptions::baseline();

    let start = Instant::now();
    let cache = EvalCache::persistent_in(dir);
    let session = EvalSession::new(system.clone()).with_cache(Arc::clone(&cache));
    let cold_eval = session.evaluate_network(net, &options).expect("cold maps");
    cache.save().expect("snapshot writes");
    let cold = start.elapsed().as_secs_f64();
    assert!(session.cache_stats().misses > 0, "cold run really searched");
    drop(session);
    drop(cache);

    // "Second process": re-read the snapshot from disk, then evaluate.
    let warm = best_seconds(3, || {
        let cache = EvalCache::persistent_in(dir);
        let session = EvalSession::new(system.clone()).with_cache(Arc::clone(&cache));
        let warm_eval = session.evaluate_network(net, &options).expect("warm maps");
        assert_eq!(
            session.cache_stats().misses,
            0,
            "{}: warm-from-disk run re-ran a search",
            net.name()
        );
        assert_eq!(
            cold_eval.energy.total().picojoules().to_bits(),
            warm_eval.energy.total().picojoules().to_bits(),
            "{}: warm energy drifted from the cold run",
            net.name()
        );
        assert_eq!(
            cold_eval.cycles.to_bits(),
            warm_eval.cycles.to_bits(),
            "{}: warm cycles drifted from the cold run",
            net.name()
        );
        warm_eval.energy.total()
    });
    (cold, warm)
}

fn write_json(path: &Path, times: &[(&str, f64)], extras: &[(&str, f64)]) {
    let mut body = String::from("{\n  \"bench\": \"mapper\",\n");
    for (key, value) in times {
        body.push_str(&format!("  \"{key}_ms\": {:.3},\n", value * 1e3));
    }
    for (key, value) in extras {
        body.push_str(&format!("  \"{key}\": {value:.4},\n"));
    }
    let body = body.trim_end_matches(",\n").to_string() + "\n}\n";
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write {path:?}: {e}");
    }
}

fn bench_mapper(c: &mut Criterion) {
    let system = albireo_system();
    // The transformer GEMM the work-reduction claim is made on: the
    // attention score matmul of a bert-base encoder block.
    let bert = networks::bert_base();
    let layer = bert
        .layers()
        .iter()
        .find(|l| l.kind() == lumen_workload::LayerKind::Matmul)
        .expect("bert-base has matmul layers")
        .clone();

    let (baseline, deduped, pruned) = search_contract(&system, &layer);
    print_once(
        "Mapper — pruned/deduplicated search vs naive baseline",
        || {
            println!(
                "{} ({} iterations): winning cost {:.0} in all variants",
                layer.name(),
                SEARCH.iterations,
                baseline.cost
            );
            println!("variant    analyzed  deduped  pruned");
            println!("-------------------------------------");
            println!("baseline   {:>8}        -       -", baseline.evaluated);
            println!(
                "dedup      {:>8}  {:>7}       -",
                deduped.evaluated, deduped.deduped
            );
            println!(
                "dedup+lb   {:>8}  {:>7}  {:>6}",
                pruned.evaluated, pruned.deduped, pruned.pruned
            );
        },
    );

    let gate = std::env::var_os("LUMEN_BENCH_ASSERT_SPEEDUP").is_some();
    let write_artifact = !c.is_smoke() && std::env::var_os("CI").is_none();
    if gate || write_artifact {
        // The persistence claim is made where persistence matters: a
        // searched strategy, whose cold run pays a 400-candidate search
        // per unique signature while the warm run searches nothing.
        let searched = System::new(
            AlbireoConfig::new(ScalingProfile::Aggressive).build_arch(),
            MappingStrategy::RandomSearch(SEARCH),
        );
        let decode = networks::by_name("gpt2-small-decode").expect("decode workload resolves");
        let bert_dir = scratch_dir("bert");
        let (bert_cold, bert_warm) = persist_walls(&searched, &bert, &bert_dir);
        let decode_dir = scratch_dir("decode");
        let (decode_cold, decode_warm) = persist_walls(&searched, &decode, &decode_dir);
        let _ = std::fs::remove_dir_all(&bert_dir);
        let _ = std::fs::remove_dir_all(&decode_dir);
        let (bert_speedup, decode_speedup) = (bert_cold / bert_warm, decode_cold / decode_warm);
        println!(
            "bert-base:        cold {:.1} ms -> warm-from-disk {:.2} ms ({bert_speedup:.0}x)",
            bert_cold * 1e3,
            bert_warm * 1e3
        );
        println!(
            "gpt2-small-decode: cold {:.1} ms -> warm-from-disk {:.2} ms ({decode_speedup:.0}x)",
            decode_cold * 1e3,
            decode_warm * 1e3
        );
        if gate {
            assert!(
                bert_speedup >= PERSIST_SPEEDUP_FLOOR,
                "persistent warm-start regressed below the floor on bert-base: \
                 {bert_speedup:.2}x < {PERSIST_SPEEDUP_FLOOR:.1}x"
            );
        }
        if write_artifact {
            let search_wall = best_seconds(3, || {
                random_search(system.arch(), &layer, SEARCH, cost).expect("search maps")
            });
            let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
            write_json(
                &root.join("BENCH_mapper.json"),
                &[
                    ("random_search_400", search_wall),
                    ("bert_base_persist_cold", bert_cold),
                    ("bert_base_persist_warm", bert_warm),
                    ("decode_persist_cold", decode_cold),
                    ("decode_persist_warm", decode_warm),
                ],
                &[
                    ("searches_per_s", 1.0 / search_wall),
                    ("candidates_analyzed_baseline", baseline.evaluated as f64),
                    ("candidates_analyzed_dedup", deduped.evaluated as f64),
                    ("candidates_analyzed_pruned", pruned.evaluated as f64),
                    ("candidates_skipped_dedup", deduped.skipped() as f64),
                    ("candidates_skipped_pruned", pruned.skipped() as f64),
                    ("bert_base_persist_speedup", bert_speedup),
                    ("decode_persist_speedup", decode_speedup),
                ],
            );
        }
    }

    let mut group = c.benchmark_group("mapper");
    group.sample_size(10);
    group.bench_function("random_search_400_baseline", |b| {
        b.iter(|| {
            black_box(random_search_baseline(
                system.arch(),
                black_box(&layer),
                SEARCH,
                cost,
            ))
        });
    });
    group.bench_function("random_search_400_dedup", |b| {
        b.iter(|| {
            black_box(random_search(
                system.arch(),
                black_box(&layer),
                SEARCH,
                cost,
            ))
        });
    });
    group.bench_function("random_search_400_pruned", |b| {
        let lb = |m: &lumen_mapper::Mapping| {
            outer_read_traffic(system.arch(), &layer, m)
                .iter()
                .filter(|(level, _, _)| *level == 0)
                .map(|(_, _, reads)| reads)
                .sum()
        };
        b.iter(|| {
            black_box(random_search_pruned(
                system.arch(),
                black_box(&layer),
                SEARCH,
                lb,
                cost,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mapper);
criterion_main!(benches);
