//! # lumen-bench
//!
//! Criterion benchmark harnesses that regenerate the paper's evaluation
//! artifacts. Each bench prints the corresponding figure's rows/series
//! before timing the model itself — the timing demonstrates the "fast
//! design space exploration" claim (full-network evaluations complete in
//! milliseconds), while the printed tables are the reproduction output.
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `fig2` | Fig. 2 energy-breakdown validation |
//! | `fig3` | Fig. 3 throughput (ideal / reported / modeled) |
//! | `fig4` | Fig. 4 full-system memory exploration |
//! | `fig5` | Fig. 5 analog/optical reuse exploration |
//! | `mapper_search` | ablation: greedy vs random vs exhaustive mapper |
//! | `ablation_link_budget` | ablation: laser link budget on/off (Fig. 5 sensitivity) |
//!
//! Run with `cargo bench -p lumen-bench` (add `--bench fig2` to select a
//! single figure).

use std::sync::Once;

/// Prints a banner once per process so each bench's figure output is
/// clearly delimited in `cargo bench` logs.
pub fn print_once(banner: &str, body: impl FnOnce()) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n================================================================");
        println!("{banner}");
        println!("================================================================");
        body();
    });
}
