//! Loop-nest reuse analysis: access, conversion and cycle counts.
//!
//! The analysis follows the Timeloop family's analytical model:
//!
//! * a storage level's **tile** of a tensor is the footprint of every loop
//!   below its temporal loops (its own spatial fan-out included);
//! * the tile is **refetched** once per iteration of every temporal loop
//!   above it that is *relevant* to the tensor, and of every irrelevant
//!   loop that has a relevant loop iterating inside it (the buffer can hold
//!   only the current tile, so revisits refetch);
//! * spatial fan-outs **multicast**: the sharing factor at a fan-out is
//!   `(instances × per-instance footprint) / union footprint`, which both
//!   captures pure broadcast (a dimension irrelevant to the tensor) and
//!   sliding-window overlap between neighboring instances;
//! * partial sums flow upward through **reduction** sharing the same way,
//!   and pay a read-back for every revisit caused by reduction loops outer
//!   to output-relevant loops;
//! * **converters** transduce every element that crosses their position,
//!   after the multicast below them is discounted — converting once and
//!   fanning out is the mapper's lever against conversion energy.
//!
//! Known approximation (shared with Timeloop): temporal sliding-window
//! overlap between *successive* input tiles is not exploited; each tile
//! refetch is charged in full.

use crate::{Mapping, MappingError};
use lumen_arch::Architecture;
use lumen_workload::{Dim, DimMap, Layer, TensorKind, TensorMap};

/// Traffic observed at one architecture level for one layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LevelTraffic {
    /// Element reads at this level per tensor (serving children, flushing
    /// partial sums upward).
    pub reads: TensorMap<f64>,
    /// Element writes at this level per tensor (fills from the parent,
    /// partial-sum arrivals from below).
    pub writes: TensorMap<f64>,
    /// Elements transduced per tensor (converter levels only).
    pub conversions: TensorMap<f64>,
    /// Stored tile size in elements per kept tensor (storage levels).
    pub tile_elements: TensorMap<u64>,
}

impl LevelTraffic {
    /// Total accesses (reads + writes) across tensors.
    pub fn total_accesses(&self) -> f64 {
        TensorKind::ALL
            .iter()
            .map(|&t| self.reads[t] + self.writes[t])
            .sum()
    }

    /// Total conversions across tensors.
    pub fn total_conversions(&self) -> f64 {
        TensorKind::ALL.iter().map(|&t| self.conversions[t]).sum()
    }
}

/// The result of analyzing one layer under one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAnalysis {
    /// Steady-state cycles (all channel groups, padding included).
    pub cycles: u64,
    /// True multiply-accumulates of the layer.
    pub macs: u64,
    /// Hardware-iterated MACs including padding waste.
    pub padded_macs: u64,
    /// Achieved MACs per cycle.
    pub throughput_macs_per_cycle: f64,
    /// Achieved / peak MACs per cycle (0, 1].
    pub utilization: f64,
    /// Fraction of hardware lanes used by the mapping's spatial loops.
    pub spatial_utilization: f64,
    /// Padded iteration volume over the true volume (≥ 1).
    pub padding_factor: f64,
    /// Per-architecture-level traffic, outermost level first.
    pub levels: Vec<LevelTraffic>,
}

impl LayerAnalysis {
    /// Traffic at the level with the given architecture index.
    pub fn level(&self, index: usize) -> &LevelTraffic {
        &self.levels[index]
    }

    /// Sum of conversions over all converter levels and tensors.
    pub fn total_conversions(&self) -> f64 {
        self.levels
            .iter()
            .map(LevelTraffic::total_conversions)
            .sum()
    }
}

/// Analyzes `layer` mapped onto `arch` by `mapping`.
///
/// # Errors
///
/// Returns a [`MappingError`] if the mapping is illegal for the
/// architecture/layer (see [`Mapping::validate`]) or if a tile exceeds a
/// bounded buffer's capacity.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn analyze(
    arch: &Architecture,
    layer: &Layer,
    mapping: &Mapping,
) -> Result<LayerAnalysis, MappingError> {
    mapping.validate(arch, layer)?;
    let nest = Nest::new(arch, layer, mapping);
    nest.check_capacity()?;
    Ok(nest.run())
}

/// The exact read traffic [`analyze`] will charge at the **outermost
/// keeper** of each read tensor (weights and inputs), computed without
/// the full nest walk.
///
/// Returns `(level index, tensor, reads)` triples — each value is
/// bit-identical to the corresponding `reads` entry of the full
/// [`LayerAnalysis`], so the triples are a sound (and usually dominant,
/// since the outermost level is the most expensive per access) *lower
/// bound* on a candidate mapping's traffic cost. Search engines use this
/// to prune candidates before paying for [`analyze`]; see
/// [`crate::search::random_search_pruned`].
///
/// The mapping is **not** validated: an illegal candidate yields a
/// number that would never be charged, which is harmless for pruning
/// (the candidate is discarded either way). The mapping must still have
/// one [`crate::LevelLoops`] per architecture level.
pub fn outer_read_traffic(
    arch: &Architecture,
    layer: &Layer,
    mapping: &Mapping,
) -> Vec<(usize, TensorKind, f64)> {
    let nest = Nest::new(arch, layer, mapping);
    let g = nest.groups as f64;
    let mut out = Vec::with_capacity(2);
    for t in [TensorKind::Weight, TensorKind::Input] {
        let chain = &nest.keepers[t];
        if let Some(&k) = chain.first() {
            let inner = chain.get(1).copied().unwrap_or(nest.num_levels - 1);
            // Mirrors the read-tensor pass of `Nest::run` exactly.
            let reads = nest.fills_total(t, inner) / nest.share_gap(t, k, inner) * g;
            out.push((k, t, reads));
        }
    }
    out
}

/// Precomputed nest state shared by the analysis passes.
struct Nest<'a> {
    arch: &'a Architecture,
    layer: &'a Layer,
    mapping: &'a Mapping,
    num_levels: usize,
    /// Spatial bound product per level.
    s_prod: Vec<u64>,
    /// Extents of all loops strictly below level `x`'s temporal loops,
    /// including `x`'s spatial loops.
    below_incl: Vec<DimMap<u64>>,
    /// Extents of all loops at levels `> x` (excluding `x`'s spatial).
    below_excl: Vec<DimMap<u64>>,
    /// Utilized instance count of each level (spatial products above it).
    util_inst: Vec<u64>,
    /// Per-tensor keeper level indices (storage only, outer→inner).
    keepers: TensorMap<Vec<usize>>,
    groups: u64,
}

impl<'a> Nest<'a> {
    fn new(arch: &'a Architecture, layer: &'a Layer, mapping: &'a Mapping) -> Nest<'a> {
        let num_levels = arch.levels().len();
        let s_prod: Vec<u64> = (0..num_levels)
            .map(|x| mapping.level(x).spatial_product())
            .collect();

        // Suffix extents.
        let mut below_excl = vec![DimMap::filled(1u64); num_levels];
        let mut below_incl = vec![DimMap::filled(1u64); num_levels];
        let mut acc = DimMap::filled(1u64);
        for x in (0..num_levels).rev() {
            below_excl[x] = acc;
            let mut incl = acc;
            for l in &mapping.level(x).spatial {
                incl[l.dim] *= l.bound as u64;
            }
            below_incl[x] = incl;
            // Everything at level x (temporal + spatial) joins the suffix
            // for the level above.
            acc = incl;
            for l in &mapping.level(x).temporal {
                acc[l.dim] *= l.bound as u64;
            }
        }

        let mut util_inst = vec![1u64; num_levels];
        for x in 1..num_levels {
            util_inst[x] = util_inst[x - 1] * s_prod[x - 1];
        }

        let keepers = TensorMap::from_fn(|t| {
            arch.levels()
                .iter()
                .enumerate()
                .filter(|(_, l)| l.kind().is_storage() && l.keep().contains(t))
                .map(|(i, _)| i)
                .collect::<Vec<usize>>()
        });

        Nest {
            arch,
            layer,
            mapping,
            num_levels,
            s_prod,
            below_incl,
            below_excl,
            util_inst,
            keepers,
            groups: layer.groups() as u64,
        }
    }

    /// Footprint of tensor `t` over the given per-dimension extents.
    fn footprint(&self, t: TensorKind, ext: &DimMap<u64>) -> u64 {
        match t {
            TensorKind::Weight => ext[Dim::M] * ext[Dim::C] * ext[Dim::R] * ext[Dim::S],
            TensorKind::Output => ext[Dim::N] * ext[Dim::M] * ext[Dim::P] * ext[Dim::Q],
            TensorKind::Input => {
                let h = self
                    .layer
                    .input_rows(ext[Dim::P] as usize, ext[Dim::R] as usize)
                    as u64;
                let w = self
                    .layer
                    .input_cols(ext[Dim::Q] as usize, ext[Dim::S] as usize)
                    as u64;
                ext[Dim::N] * ext[Dim::C] * h * w
            }
        }
    }

    /// Tile stored at level `x` (covers its spatial fan-out and below).
    fn tile_stored(&self, t: TensorKind, x: usize) -> u64 {
        self.footprint(t, &self.below_incl[x])
    }

    /// Footprint-based sharing factor of tensor `t` at level `x`'s fan-out:
    /// how many child deliveries one parent-side element serves (≥ 1).
    fn sharing(&self, t: TensorKind, x: usize) -> f64 {
        if self.s_prod[x] <= 1 {
            return 1.0;
        }
        let child = self.footprint(t, &self.below_excl[x]) as f64;
        let union = self.footprint(t, &self.below_incl[x]) as f64;
        (self.s_prod[x] as f64 * child / union).max(1.0)
    }

    /// Product of sharing factors over fan-outs in `[from, to)`.
    fn share_gap(&self, t: TensorKind, from: usize, to: usize) -> f64 {
        (from..to).map(|x| self.sharing(t, x)).product()
    }

    /// Temporal refetch multiplicity for the tile stored at level `x`:
    /// walk the temporal loops of levels `0..=x` from innermost to
    /// outermost; a loop multiplies if relevant, or if irrelevant with a
    /// relevant loop inside.
    fn mult_visit(&self, t: TensorKind, x: usize) -> u64 {
        let relevant = t.relevant_dims();
        let mut mult: u64 = 1;
        let mut seen_relevant = false;
        for level in (0..=x).rev() {
            for l in self.mapping.level(level).temporal.iter().rev() {
                if relevant.contains(l.dim) {
                    mult *= l.bound as u64;
                    seen_relevant = true;
                } else if seen_relevant {
                    mult *= l.bound as u64;
                }
            }
        }
        mult
    }

    /// Product of bounds of temporal loops relevant to `t` at levels
    /// `0..=x` — the number of distinct tiles traversed.
    fn mult_distinct(&self, t: TensorKind, x: usize) -> u64 {
        let relevant = t.relevant_dims();
        (0..=x)
            .flat_map(|level| self.mapping.level(level).temporal.iter())
            .filter(|l| relevant.contains(l.dim))
            .map(|l| l.bound as u64)
            .product()
    }

    /// Padded iteration volume of one channel group.
    fn padded_volume(&self) -> u64 {
        Dim::ALL
            .iter()
            .map(|&d| self.mapping.total_bound(d))
            .product()
    }

    /// Total elements filled into level `x` for read-tensor `t` over the
    /// whole (single-group) execution; `x == num_levels` means compute.
    fn fills_total(&self, t: TensorKind, x: usize) -> f64 {
        if x >= self.num_levels - 1 {
            return self.padded_volume() as f64;
        }
        let tile = self.tile_stored(t, x) as f64;
        tile * self.mult_visit(t, x) as f64 * self.util_inst[x] as f64
    }

    /// Partial-sum flushes leaving level `x` upward (single group).
    fn writes_up_total(&self, x: usize) -> f64 {
        if x >= self.num_levels - 1 {
            return self.padded_volume() as f64;
        }
        let tile = self.tile_stored(TensorKind::Output, x) as f64;
        tile * self.mult_visit(TensorKind::Output, x) as f64 * self.util_inst[x] as f64
    }

    /// Partial-sum read-backs entering level `x` from above (single group).
    fn reads_down_total(&self, x: usize) -> f64 {
        if x >= self.num_levels - 1 {
            return 0.0;
        }
        let tile = self.tile_stored(TensorKind::Output, x) as f64;
        let visits = self.mult_visit(TensorKind::Output, x) as f64;
        let distinct = self.mult_distinct(TensorKind::Output, x) as f64;
        (tile * (visits - distinct) * self.util_inst[x] as f64).max(0.0)
    }

    fn check_capacity(&self) -> Result<(), MappingError> {
        for (x, level) in self.arch.levels().iter().enumerate() {
            let Some(capacity) = level.capacity_bits() else {
                continue;
            };
            let mut required: u64 = 0;
            for t in level.keep().iter() {
                required += self.tile_stored(t, x) * self.arch.word_bits_of(t) as u64;
            }
            if required > capacity {
                return Err(MappingError::CapacityExceeded {
                    level: level.name().to_string(),
                    required_bits: required,
                    available_bits: capacity,
                });
            }
        }
        Ok(())
    }

    fn run(&self) -> LayerAnalysis {
        let g = self.groups as f64;
        let mut levels = vec![LevelTraffic::default(); self.num_levels];

        // Record stored tiles.
        for (x, level) in self.arch.levels().iter().enumerate() {
            if level.kind().is_storage() {
                for t in level.keep().iter() {
                    levels[x].tile_elements[t] = self.tile_stored(t, x);
                }
            }
        }

        // Read-only tensors: chain keepers outer→inner, ending at compute.
        for t in [TensorKind::Weight, TensorKind::Input] {
            let chain = &self.keepers[t];
            for (pos, &k) in chain.iter().enumerate() {
                let inner = chain.get(pos + 1).copied().unwrap_or(self.num_levels - 1);
                let inner_fills = self.fills_total(t, inner);
                // Serve the inner keeper (or compute), discounting the
                // multicast of every fan-out in the gap.
                levels[k].reads[t] += inner_fills / self.share_gap(t, k, inner) * g;
                // The keeper's own fills were charged when its parent
                // served them; charge the write here (not for the
                // outermost backing store, whose data is resident).
                if k != 0 {
                    levels[k].writes[t] += self.fills_total(t, k) * g;
                }
            }
        }

        // Output tensor: partial sums flow bottom-up with reduction
        // sharing; revisits flow back down.
        {
            let t = TensorKind::Output;
            let chain = &self.keepers[t];
            for (pos, &k) in chain.iter().enumerate() {
                let inner = chain.get(pos + 1).copied().unwrap_or(self.num_levels - 1);
                let red = self.share_gap(t, k, inner);
                // Arrivals from below (updates) and re-serves downward.
                levels[k].writes[t] += self.writes_up_total(inner) / red * g;
                levels[k].reads[t] += self.reads_down_total(inner) / red * g;
                if k != 0 {
                    // Flushing tiles upward reads them here; revisited
                    // partials return as writes.
                    levels[k].reads[t] += self.writes_up_total(k) * g;
                    levels[k].writes[t] += self.reads_down_total(k) * g;
                }
            }
        }

        // Converters: charge every kept-tensor element crossing their
        // position, after downstream fan-out sharing.
        for c in self.arch.converter_levels() {
            let keep = self.arch.levels()[c].keep();
            for t in keep.iter() {
                let inner = self.keepers[t]
                    .iter()
                    .copied()
                    .find(|&k| k > c)
                    .unwrap_or(self.num_levels - 1);
                let gap = self.share_gap(t, c, inner);
                let crossings = match t {
                    TensorKind::Weight | TensorKind::Input => self.fills_total(t, inner) / gap,
                    TensorKind::Output => {
                        (self.writes_up_total(inner) + self.reads_down_total(inner)) / gap
                    }
                };
                levels[c].conversions[t] += crossings * g;
            }
        }

        let cycles = self.mapping.total_temporal_product() * self.groups;
        let macs = self.layer.macs();
        let padded_macs = self.padded_volume() * self.groups;
        let peak = self.arch.peak_parallelism() as f64;
        let throughput = macs as f64 / cycles as f64;

        LayerAnalysis {
            cycles,
            macs,
            padded_macs,
            throughput_macs_per_cycle: throughput,
            utilization: throughput / peak,
            spatial_utilization: self.mapping.total_spatial_product() as f64 / peak,
            padding_factor: self.mapping.padding_factor(self.layer),
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{DimSet, TensorSet};

    /// DRAM -> buf (fanout 4 over M) -> compute.
    fn toy_arch() -> Architecture {
        ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap()
    }

    /// N=1 M=4 C=4 P=4 Q=4 R=S=1; C at DRAM, P/Q temporal + M spatial at buf.
    fn toy_case() -> (Architecture, Layer, Mapping) {
        let arch = toy_arch();
        let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(0, Dim::C, 4);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(1, Dim::M, 4);
        (arch, layer, mapping)
    }

    #[test]
    fn toy_cycles_and_utilization() {
        let (arch, layer, mapping) = toy_case();
        let a = analyze(&arch, &layer, &mapping).unwrap();
        assert_eq!(a.cycles, 64);
        assert_eq!(a.macs, 256);
        assert_eq!(a.padded_macs, 256);
        assert!((a.utilization - 1.0).abs() < 1e-12);
        assert!((a.throughput_macs_per_cycle - 4.0).abs() < 1e-12);
        assert!((a.padding_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toy_weight_traffic_hand_computed() {
        let (arch, layer, mapping) = toy_case();
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // Weight tile at buf: M-slice of 4 weights for one c; C iterates
        // above -> 16 fills; DRAM serves each once.
        assert_eq!(a.level(0).reads[TensorKind::Weight], 16.0);
        assert_eq!(a.level(1).writes[TensorKind::Weight], 16.0);
        // Compute rereads a weight every cycle on all 4 lanes.
        assert_eq!(a.level(1).reads[TensorKind::Weight], 256.0);
        assert_eq!(a.level(1).tile_elements[TensorKind::Weight], 4);
    }

    #[test]
    fn toy_input_traffic_hand_computed() {
        let (arch, layer, mapping) = toy_case();
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // 64 distinct input elements, each filled into buf once.
        assert_eq!(a.level(1).writes[TensorKind::Input], 64.0);
        assert_eq!(a.level(0).reads[TensorKind::Input], 64.0);
        // One input broadcast to 4 M-lanes: 256 MACs / 4 = 64 buf reads.
        assert_eq!(a.level(1).reads[TensorKind::Input], 64.0);
    }

    #[test]
    fn toy_output_partial_spill_hand_computed() {
        let (arch, layer, mapping) = toy_case();
        let a = analyze(&arch, &layer, &mapping).unwrap();
        let o = TensorKind::Output;
        // MAC updates into buf: 256 (M spatial is not a reduction).
        // Flushes up: tile 4 x visits 64 = 256; distinct outputs 64;
        // re-reads 192. See module docs for the walk.
        assert_eq!(a.level(1).writes[o], 256.0 + 192.0);
        assert_eq!(a.level(1).reads[o], 256.0);
        assert_eq!(a.level(0).writes[o], 256.0);
        assert_eq!(a.level(0).reads[o], 192.0);
    }

    #[test]
    fn output_stationary_mapping_avoids_spill() {
        // Put C innermost at buf instead of outermost at DRAM:
        // partial sums never leave buf until final.
        let arch = toy_arch();
        let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_temporal(1, Dim::C, 4); // innermost temporal
        mapping.push_spatial(1, Dim::M, 4);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        let o = TensorKind::Output;
        // Only final outputs reach DRAM: 64.
        assert_eq!(a.level(0).writes[o], 64.0);
        assert_eq!(a.level(0).reads[o], 0.0);
        // Buf absorbs all 256 MAC updates, flushes 64 finals.
        assert_eq!(a.level(1).writes[o], 256.0);
        assert_eq!(a.level(1).reads[o], 64.0);
    }

    #[test]
    fn weight_stationary_reduces_dram_weight_reads() {
        // C placed at the compute level puts the full M x C weight slice
        // below buf's temporal loops: buf holds all 16 weights and DRAM
        // serves each exactly once, regardless of the P/Q loops above.
        let arch = toy_arch();
        let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(1, Dim::M, 4);
        mapping.push_temporal(2, Dim::C, 4);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // Buf tile now holds all 16 weights; one fill each.
        assert_eq!(a.level(0).reads[TensorKind::Weight], 16.0);
        assert_eq!(a.level(1).tile_elements[TensorKind::Weight], 16);
        assert_eq!(a.level(1).writes[TensorKind::Weight], 16.0);
    }

    #[test]
    fn spatial_reduction_merges_partials() {
        // Fanout over C (a reduction dim): partials from 4 lanes merge
        // before hitting the buffer.
        let arch = ArchBuilder::new("red", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::C])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let layer = Layer::conv2d("l", 1, 1, 4, 4, 4, 1, 1);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(1, Dim::C, 4);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // 64 padded MACs; C-spatial reduction 4 -> 16 update writes at buf.
        assert_eq!(a.level(1).writes[TensorKind::Output], 16.0);
        // Weights: 4 lanes each with a distinct c -> no multicast.
        assert_eq!(a.level(1).reads[TensorKind::Weight], 64.0);
    }

    #[test]
    fn sliding_window_multicast_counts_overlap() {
        // Spatial Q with spatial S at the same fanout: children share
        // overlapping input columns; sharing factor = 9 / 5 for Q=3, S=3.
        let arch = ArchBuilder::new("win", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(9).allow(DimSet::from_dims(&[Dim::Q, Dim::S])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let layer = Layer::conv2d("l", 1, 1, 1, 3, 3, 3, 3);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::P, 3);
        mapping.push_temporal(1, Dim::R, 3);
        mapping.push_spatial(1, Dim::Q, 3);
        mapping.push_spatial(1, Dim::S, 3);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // Padded MACs = 81. Input multicast at the fanout = 9*1/5 = 1.8.
        // Buf serves 81 / 1.8 = 45 input reads.
        assert!((a.level(1).reads[TensorKind::Input] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn converter_counts_post_multicast_crossings() {
        // DRAM -> buf -> DAC(inputs) -> compute, with an M-fanout below
        // the DAC: one conversion serves all 4 lanes.
        let arch = ArchBuilder::new("conv", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .converter(
                "dac",
                Domain::AnalogElectrical,
                TensorSet::only(TensorKind::Input),
            )
            .convert_energy(Energy::from_picojoules(1.0))
            .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M])))
            .done()
            .compute("mac", Domain::AnalogElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let layer = Layer::conv2d("l", 1, 4, 2, 4, 4, 1, 1);
        let mut mapping = Mapping::new(4);
        mapping.push_temporal(1, Dim::C, 2);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(2, Dim::M, 4);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        // Padded MACs = 128; M-fanout multicast of 4 -> 32 conversions.
        assert_eq!(a.level(2).conversions[TensorKind::Input], 32.0);
        assert_eq!(a.level(2).conversions[TensorKind::Weight], 0.0);
        assert_eq!(a.total_conversions(), 32.0);
    }

    #[test]
    fn matmul_weights_reused_across_sequence() {
        // Matmul M=4 K=4 rows=4 on the toy arch: C outer, P inner at buf
        // keeps each weight column resident while the sequence streams.
        let (arch, _, _) = toy_case();
        let mm = Layer::matmul("mm", 1, 4, 4, 4);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::C, 4);
        mapping.push_temporal(1, Dim::P, 4); // inner
        mapping.push_spatial(1, Dim::M, 4);
        let a = analyze(&arch, &mm, &mapping).unwrap();
        // Each of the 16 weights leaves DRAM exactly once.
        assert_eq!(a.level(0).reads[TensorKind::Weight], 16.0);
        // 16 distinct inputs (no sliding-window halo), each filled once,
        // broadcast to the 4 M-lanes: 64 padded MACs / 4 = 16 buf reads.
        assert_eq!(a.level(0).reads[TensorKind::Input], 16.0);
        assert_eq!(a.level(1).reads[TensorKind::Input], 16.0);
        // C outside P revisits partials: 4-wide tile x (16 - 4) revisits.
        assert_eq!(a.level(0).reads[TensorKind::Output], 48.0);
    }

    #[test]
    fn matmul_output_stationary_trades_weight_refetch_for_no_spill() {
        let (arch, _, _) = toy_case();
        let mm = Layer::matmul("mm", 1, 4, 4, 4);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::C, 4); // inner: output-stationary
        mapping.push_spatial(1, Dim::M, 4);
        let a = analyze(&arch, &mm, &mapping).unwrap();
        let o = TensorKind::Output;
        // Only the 16 final outputs reach DRAM; nothing reads back.
        assert_eq!(a.level(0).writes[o], 16.0);
        assert_eq!(a.level(0).reads[o], 0.0);
        // The price: the weight slice is refetched once per output row.
        assert_eq!(a.level(0).reads[TensorKind::Weight], 64.0);
    }

    #[test]
    fn matmul_has_no_input_halo() {
        // For conv kernels R=S>1 neighboring tiles overlap; a matmul's
        // input footprint must be exact at every tiling.
        let (arch, _, _) = toy_case();
        let mm = Layer::matmul("mm", 2, 4, 8, 8);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(0, Dim::N, 2);
        mapping.push_temporal(0, Dim::P, 2);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::C, 8);
        mapping.push_spatial(1, Dim::M, 4);
        let a = analyze(&arch, &mm, &mapping).unwrap();
        // Distinct inputs = N * C * rows = 2 * 8 * 8 = 128, filled once.
        assert_eq!(a.level(0).reads[TensorKind::Input], 128.0);
        assert_eq!(a.level(1).writes[TensorKind::Input], 128.0);
    }

    #[test]
    fn groups_scale_traffic_and_cycles() {
        let arch = toy_arch();
        let base = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
        let grouped = Layer::conv2d("g", 1, 8, 8, 4, 4, 1, 1).with_groups(2);
        // Same per-group shape; grouped has 2 groups.
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(0, Dim::C, 4);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(1, Dim::M, 4);
        let a1 = analyze(&arch, &base, &mapping).unwrap();
        let a2 = analyze(&arch, &grouped, &mapping).unwrap();
        assert_eq!(a2.cycles, 2 * a1.cycles);
        assert_eq!(
            a2.level(0).reads[TensorKind::Weight],
            2.0 * a1.level(0).reads[TensorKind::Weight]
        );
        // Throughput identical: both run 4 MACs/cycle.
        assert!((a2.throughput_macs_per_cycle - a1.throughput_macs_per_cycle).abs() < 1e-12);
    }

    #[test]
    fn capacity_violation_detected() {
        let arch = ArchBuilder::new("cap", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .capacity_bits(64) // 8 elements at 8 bits
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let layer = Layer::conv2d("l", 1, 4, 4, 1, 1, 1, 1);
        let mut mapping = Mapping::new(3);
        // Whole 16-weight tensor resident at buf (loops at compute level):
        // needs 128 bits > 64.
        mapping.push_temporal(2, Dim::M, 4);
        mapping.push_temporal(2, Dim::C, 4);
        let err = analyze(&arch, &layer, &mapping).unwrap_err();
        assert!(matches!(err, MappingError::CapacityExceeded { .. }));
    }

    #[test]
    fn padding_shows_up_in_utilization() {
        let arch = toy_arch();
        // M=3 mapped onto the 4-wide fanout: 25% of lanes idle.
        let layer = Layer::conv2d("l", 1, 3, 4, 4, 4, 1, 1);
        let mut mapping = Mapping::new(3);
        mapping.push_temporal(0, Dim::C, 4);
        mapping.push_temporal(1, Dim::P, 4);
        mapping.push_temporal(1, Dim::Q, 4);
        mapping.push_spatial(1, Dim::M, 4);
        let a = analyze(&arch, &layer, &mapping).unwrap();
        assert_eq!(a.macs, 192);
        assert_eq!(a.padded_macs, 256);
        assert!((a.utilization - 0.75).abs() < 1e-12);
    }
}
