//! Mapping construction and search.
//!
//! Three engines with different determinism/coverage tradeoffs:
//!
//! * [`greedy_spatial`] + [`TemporalPlan`] — deterministic construction:
//!   pack every fan-out with the highest-priority usable dimensions, then
//!   place leftover temporal loops per an explicit plan. Experiments use
//!   this for reproducible, paper-dataflow mappings.
//! * [`random_search`] — seeded random tilings with best-of-N selection
//!   under a caller-supplied cost function (e.g. full-system energy).
//! * [`exhaustive_search`] — enumerates per-dimension temporal homes for
//!   small problems; ground truth for tests.

use crate::{analyze, LayerAnalysis, Mapping};
use lumen_arch::Architecture;
use lumen_workload::{Dim, DimMap, Layer, LayerKind, LayerSignature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Default spatial packing priority: parallelize output channels and
/// spatial window dims first (they are the broadcast-friendly dims in
/// photonic dataflows), batch last.
pub const DEFAULT_SPATIAL_PRIORITY: [Dim; 7] =
    [Dim::M, Dim::C, Dim::R, Dim::S, Dim::Q, Dim::P, Dim::N];

/// Spatial packing priority for GEMM-shaped layers: there is no sliding
/// window to exploit (`Q = R = S = 1`), so after output features the
/// independent output rows (`P`, the sequence dimension) are the
/// broadcast-friendly axis — parallelizing rows multicasts the stationary
/// operand without creating a spatial reduction, whereas `C` lanes need
/// partial-sum merging.
pub const MATMUL_SPATIAL_PRIORITY: [Dim; 7] =
    [Dim::M, Dim::P, Dim::C, Dim::N, Dim::Q, Dim::R, Dim::S];

/// The spatial packing priority suited to `layer`'s operator class:
/// [`MATMUL_SPATIAL_PRIORITY`] for [`LayerKind::Matmul`],
/// [`DEFAULT_SPATIAL_PRIORITY`] otherwise. (Fully-connected layers keep
/// the default: with `P = 1` the two orders coincide, and existing
/// dataflows depend on the default.)
pub fn spatial_priority_for(layer: &Layer) -> &'static [Dim; 7] {
    match layer.kind() {
        LayerKind::Matmul => &MATMUL_SPATIAL_PRIORITY,
        _ => &DEFAULT_SPATIAL_PRIORITY,
    }
}

/// Greedily packs every fan-out of `arch` with spatial loops for `layer`.
///
/// Walks levels outermost→innermost; at each fan-out, assigns dimensions
/// in `priority` order, taking as much of each dimension's remaining
/// extent as fits. Returns the partially-built mapping plus each
/// dimension's leftover (ceil) extent for temporal placement.
///
/// # Examples
///
/// ```
/// use lumen_arch::{ArchBuilder, Domain, Fanout};
/// use lumen_mapper::search::{greedy_spatial, DEFAULT_SPATIAL_PRIORITY};
/// use lumen_units::{Energy, Frequency};
/// use lumen_workload::{Dim, DimSet, Layer, TensorSet};
///
/// let arch = ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
///     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
///     .done()
///     .storage("buf", Domain::DigitalElectrical, TensorSet::all())
///     .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M])))
///     .done()
///     .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
///     .build()
///     .unwrap();
/// let layer = Layer::conv2d("l", 1, 16, 4, 8, 8, 3, 3);
/// let (mapping, leftover) = greedy_spatial(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY);
/// assert_eq!(mapping.total_bound(Dim::M), 8); // fanout filled
/// assert_eq!(leftover[Dim::M], 2); // 16 / 8 remains temporal
/// ```
pub fn greedy_spatial(
    arch: &Architecture,
    layer: &Layer,
    priority: &[Dim],
) -> (Mapping, DimMap<usize>) {
    let mut mapping = Mapping::new(arch.levels().len());
    let mut remaining = DimMap::from_fn(|d| layer.shape()[d]);
    for (x, level) in arch.levels().iter().enumerate() {
        let mut capacity = level.fanout().size();
        if capacity <= 1 {
            continue;
        }
        let usable = level.fanout().usable_dims(layer);
        for &d in priority {
            if capacity <= 1 {
                break;
            }
            if !usable.contains(d) || remaining[d] <= 1 {
                continue;
            }
            let f = remaining[d].min(capacity);
            mapping.push_spatial(x, d, f);
            remaining[d] = remaining[d].div_ceil(f);
            capacity /= f;
        }
    }
    (mapping, remaining)
}

/// Where leftover temporal extents go after spatial packing.
///
/// Dimensions listed in `assignments` are placed at their level in the
/// given order (outermost first within a level); unlisted dimensions fall
/// back to `default_level`, appended outer→inner in the order
/// `N, P, Q, M, C, R, S` (reduction loops innermost, which keeps partial
/// sums resident — the usual output-stationary default).
#[derive(Debug, Clone)]
pub struct TemporalPlan {
    /// `(storage level index, dims outer→inner)` placements.
    pub assignments: Vec<(usize, Vec<Dim>)>,
    /// Level for dimensions not mentioned in `assignments`.
    pub default_level: usize,
}

impl TemporalPlan {
    /// Places everything at `level`.
    pub fn all_at(level: usize) -> TemporalPlan {
        TemporalPlan {
            assignments: Vec::new(),
            default_level: level,
        }
    }

    /// Builds the complete mapping from a spatially-packed prefix.
    pub fn apply(&self, mut mapping: Mapping, leftover: &DimMap<usize>) -> Mapping {
        const DEFAULT_ORDER: [Dim; 7] = [Dim::N, Dim::P, Dim::Q, Dim::M, Dim::C, Dim::R, Dim::S];
        let mut placed = [false; 7];
        for (level, dims) in &self.assignments {
            for &d in dims {
                if leftover[d] > 1 {
                    mapping.push_temporal(*level, d, leftover[d]);
                }
                placed[d.index()] = true;
            }
        }
        for d in DEFAULT_ORDER {
            if !placed[d.index()] && leftover[d] > 1 {
                mapping.push_temporal(self.default_level, d, leftover[d]);
            }
        }
        mapping
    }
}

/// A complete deterministic mapping: greedy spatial packing plus a
/// temporal plan.
pub fn greedy_mapping(
    arch: &Architecture,
    layer: &Layer,
    priority: &[Dim],
    plan: &TemporalPlan,
) -> Mapping {
    let (mapping, leftover) = greedy_spatial(arch, layer, priority);
    plan.apply(mapping, &leftover)
}

/// Configuration for [`random_search`].
///
/// A `SearchConfig` fully determines the candidate sequence: the search
/// draws from an [`StdRng`] seeded with `seed`, so equal configs produce
/// bit-identical winning mappings on equal *(architecture, layer)*
/// inputs. The derived `Eq` / `Hash` make that guarantee a typed one —
/// content-addressed evaluation caches key on the config itself, which is
/// sound precisely because the search is a pure function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchConfig {
    /// Number of random candidates to draw.
    pub iterations: usize,
    /// RNG seed (searches are reproducible).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 500,
            seed: 0xC1A0,
        }
    }
}

/// The outcome of a search: the best mapping, its analysis and its cost.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The winning mapping.
    pub mapping: Mapping,
    /// Its nest analysis.
    pub analysis: LayerAnalysis,
    /// Its cost under the caller's objective.
    pub cost: f64,
    /// Legal candidates whose cost was actually evaluated (structural
    /// duplicates and pruned candidates are excluded).
    pub evaluated: usize,
    /// Structurally-identical candidates skipped before analysis.
    pub deduped: usize,
    /// Candidates skipped because a lower bound on their cost already
    /// met or exceeded the incumbent's.
    pub pruned: usize,
}

impl SearchResult {
    /// Candidates skipped without an `analyze` call: `deduped + pruned`.
    pub fn skipped(&self) -> usize {
        self.deduped + self.pruned
    }
}

/// Memoizes [`greedy_spatial`] bases across the layers of one search
/// batch on **one architecture**.
///
/// The greedy spatial packing is a pure function of the architecture and
/// the layer's [`LayerSignature`] (shape, kind, stride, dilation, groups
/// — everything `usable_dims` and the packing walk read), so repeated
/// searches over same-shaped layers can share the base instead of
/// re-walking the hierarchy. A memo must not be reused across
/// architectures: the signature key deliberately excludes the arch, which
/// is fixed per batch.
#[derive(Debug, Default)]
pub struct SpatialBaseMemo {
    entries: HashMap<LayerSignature, (Mapping, DimMap<usize>)>,
    hits: usize,
}

impl SpatialBaseMemo {
    /// An empty memo.
    pub fn new() -> SpatialBaseMemo {
        SpatialBaseMemo::default()
    }

    /// The greedy spatial base for `layer` on `arch`, computed on first
    /// use and replayed from the memo afterwards.
    pub fn base(&mut self, arch: &Architecture, layer: &Layer) -> (Mapping, DimMap<usize>) {
        let key = layer.signature();
        if let Some(cached) = self.entries.get(&key) {
            self.hits += 1;
            return cached.clone();
        }
        let built = greedy_spatial(arch, layer, spatial_priority_for(layer));
        self.entries.insert(key, built.clone());
        built
    }

    /// Number of memo replays served so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of distinct layer signatures memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Seeded random mapping search.
///
/// Spatial packing is fixed (greedy); temporal factorizations and level
/// placements are randomized. Candidates failing validation or capacity
/// checks are discarded, and structurally-identical repeat draws are
/// deduplicated before analysis (the winner is unaffected: a duplicate
/// can never *strictly* beat the identical candidate that preceded it).
/// Returns `None` if no legal candidate was found.
pub fn random_search(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let base = greedy_spatial(arch, layer, spatial_priority_for(layer));
    search_core(arch, layer, config, base, None, true, cost)
}

/// [`random_search`] with a caller-supplied **lower bound** on the cost
/// of a candidate, computable from the [`Mapping`] alone (before the full
/// nest analysis). Candidates whose bound already meets or exceeds the
/// incumbent's cost are skipped without an `analyze` call.
///
/// The bound must satisfy `lower_bound(m) ≤ cost(analyze(m))` for every
/// legal mapping `m` (a small relative safety margin is applied
/// internally to absorb floating-point summation-order noise). Under that
/// contract the winning mapping and cost are bit-identical to the
/// unpruned search: acceptance is strict (`<`), so a candidate at or
/// above the incumbent could never have won.
pub fn random_search_pruned(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    lower_bound: impl Fn(&Mapping) -> f64,
    cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let base = greedy_spatial(arch, layer, spatial_priority_for(layer));
    search_core(arch, layer, config, base, Some(&lower_bound), true, cost)
}

/// [`random_search`] with the greedy spatial base served from a
/// [`SpatialBaseMemo`], for batches of searches over repeating layer
/// shapes on one architecture.
pub fn random_search_with_memo(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    memo: &mut SpatialBaseMemo,
    cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let base = memo.base(arch, layer);
    search_core(arch, layer, config, base, None, true, cost)
}

/// Reference implementation without deduplication or pruning: every
/// legal candidate is analyzed, duplicates included. Exists so benches
/// can A/B the optimized path against the naive one while asserting
/// bit-identical winners; not part of the supported API.
#[doc(hidden)]
pub fn random_search_baseline(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let base = greedy_spatial(arch, layer, spatial_priority_for(layer));
    search_core(arch, layer, config, base, None, false, cost)
}

/// Relative safety margin applied to lower bounds before pruning: shrinks
/// the bound so floating-point summation-order noise can never promote a
/// would-have-won candidate into the pruned set.
const PRUNE_MARGIN: f64 = 1.0 - 1e-9;

/// Shared engine behind the `random_search*` family. Candidate
/// *generation* is identical across all variants — every RNG draw for an
/// iteration happens before the dedup/prune decision — so skipping a
/// candidate leaves the stream, and therefore every later candidate,
/// untouched.
fn search_core(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    base: (Mapping, DimMap<usize>),
    lower_bound: Option<&dyn Fn(&Mapping) -> f64>,
    dedup: bool,
    mut cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (base, leftover) = base;
    let storage_levels: Vec<usize> = arch
        .levels()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kind().is_converter())
        .map(|(i, _)| i)
        .collect();

    let mut seen: HashSet<Mapping> = HashSet::new();
    let mut best: Option<SearchResult> = None;
    let mut evaluated = 0usize;
    let mut deduped = 0usize;
    let mut pruned = 0usize;
    for _ in 0..config.iterations {
        let mut candidate = base.clone();
        // Randomly split each leftover extent across storage levels.
        let mut per_level_loops: Vec<Vec<(Dim, usize)>> = vec![Vec::new(); arch.levels().len()];
        for d in Dim::ALL {
            let mut remaining = leftover[d];
            if remaining <= 1 {
                continue;
            }
            // Up to `storage_levels.len()` chunks.
            let chunks = rng.gen_range(1..=storage_levels.len());
            for i in 0..chunks {
                if remaining <= 1 {
                    break;
                }
                let f = if i + 1 == chunks {
                    remaining
                } else {
                    random_factor(remaining, &mut rng)
                };
                if f > 1 {
                    let level = storage_levels[rng.gen_range(0..storage_levels.len())];
                    per_level_loops[level].push((d, f));
                    remaining = remaining.div_ceil(f);
                }
            }
            if remaining > 1 {
                let level = storage_levels[rng.gen_range(0..storage_levels.len())];
                per_level_loops[level].push((d, remaining));
            }
        }
        // Random order within each level.
        for (level, loops) in per_level_loops.iter_mut().enumerate() {
            shuffle(loops, &mut rng);
            for &(d, f) in loops.iter() {
                candidate.push_temporal(level, d, f);
            }
        }
        // All RNG draws for this iteration are complete: skipping from
        // here on cannot perturb later candidates.
        if dedup && !seen.insert(candidate.clone()) {
            deduped += 1;
            continue;
        }
        let bound = lower_bound.map(|lb| lb(&candidate));
        if let (Some(bv), Some(b)) = (bound, best.as_ref()) {
            if bv * PRUNE_MARGIN >= b.cost {
                pruned += 1;
                continue;
            }
        }
        let Ok(analysis) = analyze(arch, layer, &candidate) else {
            continue;
        };
        evaluated += 1;
        let c = cost(&analysis);
        if let Some(bv) = bound {
            debug_assert!(
                bv <= c * (1.0 + 1e-6),
                "lower bound {bv} exceeds true cost {c}: pruning would be unsound"
            );
        }
        if best.as_ref().is_none_or(|b| c < b.cost) {
            best = Some(SearchResult {
                mapping: candidate,
                analysis,
                cost: c,
                evaluated: 0,
                deduped: 0,
                pruned: 0,
            });
        }
    }
    // Bookkeeping is stamped exactly once, after the loop: the fields
    // describe the whole search, not the state at the last improvement.
    if let Some(b) = &mut best {
        b.evaluated = evaluated;
        b.deduped = deduped;
        b.pruned = pruned;
    }
    best
}

/// Exhaustive search over per-dimension temporal homes (no splitting):
/// every dimension's leftover extent is assigned to one storage level.
/// The space is `|storage levels|^7`; suitable for tests and small cases.
pub fn exhaustive_search(
    arch: &Architecture,
    layer: &Layer,
    mut cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let (base, leftover) = greedy_spatial(arch, layer, spatial_priority_for(layer));
    let storage_levels: Vec<usize> = arch
        .levels()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kind().is_converter())
        .map(|(i, _)| i)
        .collect();
    let k = storage_levels.len();
    let total = (k as u64).pow(7);

    let mut seen: HashSet<Mapping> = HashSet::new();
    let mut best: Option<SearchResult> = None;
    let mut evaluated = 0usize;
    let mut deduped = 0usize;
    for combo in 0..total {
        let mut candidate = base.clone();
        let mut c = combo;
        // Assign dims in the default outer->inner order so within-level
        // ordering is deterministic.
        for d in [Dim::N, Dim::P, Dim::Q, Dim::M, Dim::C, Dim::R, Dim::S] {
            let level = storage_levels[(c % k as u64) as usize];
            c /= k as u64;
            if leftover[d] > 1 {
                candidate.push_temporal(level, d, leftover[d]);
            }
        }
        // Combos differing only in the home of a dim with no leftover
        // build the same mapping — skip the repeat analysis.
        if !seen.insert(candidate.clone()) {
            deduped += 1;
            continue;
        }
        let Ok(analysis) = analyze(arch, layer, &candidate) else {
            continue;
        };
        evaluated += 1;
        let cost_value = cost(&analysis);
        if best.as_ref().is_none_or(|b| cost_value < b.cost) {
            best = Some(SearchResult {
                mapping: candidate,
                analysis,
                cost: cost_value,
                evaluated: 0,
                deduped: 0,
                pruned: 0,
            });
        }
    }
    // Stamped once after the loop, as in `search_core`.
    if let Some(b) = &mut best {
        b.evaluated = evaluated;
        b.deduped = deduped;
    }
    best
}

/// A random factor of `v` (uniform over divisors > 1, or a ceil-factor
/// when `v` is prime-ish).
fn random_factor(v: usize, rng: &mut StdRng) -> usize {
    if v <= 1 {
        return 1;
    }
    let divisors: Vec<usize> = (2..=v).filter(|f| v.is_multiple_of(*f)).collect();
    if divisors.is_empty() {
        v
    } else {
        divisors[rng.gen_range(0..divisors.len())]
    }
}

/// Fisher-Yates shuffle (avoids pulling in rand's slice extension trait).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outer_read_traffic;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{DimSet, TensorSet};

    fn arch() -> Architecture {
        ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap()
    }

    fn layer() -> Layer {
        Layer::conv2d("l", 1, 16, 8, 8, 8, 3, 3)
    }

    #[test]
    fn greedy_fills_fanout_by_priority() {
        let (m, leftover) = greedy_spatial(&arch(), &layer(), &DEFAULT_SPATIAL_PRIORITY);
        // M=16 against capacity 8: all 8 lanes to M.
        assert_eq!(m.level(1).spatial_product(), 8);
        assert_eq!(leftover[Dim::M], 2);
        assert_eq!(leftover[Dim::C], 8);
    }

    #[test]
    fn greedy_respects_priority_order() {
        let (m, _) = greedy_spatial(&arch(), &layer(), &[Dim::C, Dim::M]);
        // C first: C=8 fills the whole fanout.
        let spatial = &m.level(1).spatial;
        assert_eq!(spatial.len(), 1);
        assert_eq!(spatial[0].dim, Dim::C);
        assert_eq!(spatial[0].bound, 8);
    }

    #[test]
    fn greedy_mapping_is_legal() {
        let m = greedy_mapping(
            &arch(),
            &layer(),
            &DEFAULT_SPATIAL_PRIORITY,
            &TemporalPlan::all_at(1),
        );
        assert!(m.validate(&arch(), &layer()).is_ok());
        let a = analyze(&arch(), &layer(), &m).unwrap();
        assert_eq!(a.macs, layer().macs());
    }

    #[test]
    fn temporal_plan_honors_explicit_assignment() {
        let (base, leftover) = greedy_spatial(&arch(), &layer(), &DEFAULT_SPATIAL_PRIORITY);
        let plan = TemporalPlan {
            assignments: vec![(0, vec![Dim::C])],
            default_level: 1,
        };
        let m = plan.apply(base, &leftover);
        assert!(m.level(0).temporal.iter().any(|l| l.dim == Dim::C));
        assert!(!m.level(1).temporal.iter().any(|l| l.dim == Dim::C));
    }

    #[test]
    fn random_search_finds_legal_mapping_and_is_reproducible() {
        let cfg = SearchConfig {
            iterations: 80,
            seed: 7,
        };
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let r1 = random_search(&arch(), &layer(), cfg, cost).expect("found mapping");
        let r2 = random_search(&arch(), &layer(), cfg, cost).expect("found mapping");
        assert_eq!(r1.mapping, r2.mapping, "seeded search is deterministic");
        assert!(r1.evaluated > 0);
        assert!(r1.cost >= 0.0);
    }

    #[test]
    fn random_search_beats_or_matches_worst_case() {
        // The best random candidate should not be worse than the greedy
        // all-at-buf mapping under the same cost.
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let greedy = greedy_mapping(
            &arch(),
            &layer(),
            &DEFAULT_SPATIAL_PRIORITY,
            &TemporalPlan::all_at(1),
        );
        let greedy_cost = cost(&analyze(&arch(), &layer(), &greedy).unwrap());
        let found = random_search(
            &arch(),
            &layer(),
            SearchConfig {
                iterations: 300,
                seed: 3,
            },
            cost,
        )
        .unwrap();
        assert!(
            found.cost <= greedy_cost * 1.001,
            "random best {} vs greedy {greedy_cost}",
            found.cost
        );
    }

    #[test]
    fn exhaustive_search_is_at_least_as_good_as_random() {
        let small = Layer::conv2d("s", 1, 8, 4, 4, 4, 3, 3);
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let ex = exhaustive_search(&arch(), &small, cost).unwrap();
        let rand = random_search(
            &arch(),
            &small,
            SearchConfig {
                iterations: 100,
                seed: 11,
            },
            cost,
        )
        .unwrap();
        assert!(ex.cost <= rand.cost * 1.001);
        assert!(ex.evaluated > 0);
    }

    #[test]
    fn matmul_priority_prefers_rows_over_reduction() {
        // Fanout wired for {M, C, P}: a matmul should spend lanes on the
        // sequence dimension before the reduction dimension.
        let a = ArchBuilder::new("mm", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let mm = Layer::matmul("mm", 1, 8, 16, 32);
        let (m, leftover) = greedy_spatial(&a, &mm, spatial_priority_for(&mm));
        // M=8 then P=8 fill the 64 lanes; C stays temporal.
        assert_eq!(m.total_bound(Dim::M), 8);
        assert_eq!(m.total_bound(Dim::P), 8);
        assert_eq!(m.total_bound(Dim::C), 1);
        assert_eq!(leftover[Dim::C], 16);
        assert_eq!(leftover[Dim::P], 4);
    }

    #[test]
    fn priority_selection_by_kind() {
        let mm = Layer::matmul("mm", 1, 4, 4, 4);
        assert_eq!(spatial_priority_for(&mm), &MATMUL_SPATIAL_PRIORITY);
        assert_eq!(spatial_priority_for(&layer()), &DEFAULT_SPATIAL_PRIORITY);
        let fc = Layer::fully_connected("fc", 1, 8, 8);
        assert_eq!(spatial_priority_for(&fc), &DEFAULT_SPATIAL_PRIORITY);
    }

    #[test]
    fn greedy_matmul_mapping_is_legal_and_counts_macs() {
        let mm = Layer::matmul("mm", 2, 24, 12, 40);
        let m = greedy_mapping(
            &arch(),
            &mm,
            spatial_priority_for(&mm),
            &TemporalPlan::all_at(1),
        );
        assert!(m.validate(&arch(), &mm).is_ok());
        let a = analyze(&arch(), &mm, &m).unwrap();
        assert_eq!(a.macs, mm.macs());
        assert!(a.utilization > 0.0 && a.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn dedup_preserves_winner_and_skips_repeats() {
        // A small leftover space with many iterations guarantees repeat
        // draws; the deduplicated search must keep the baseline's winner
        // bit-identical while skipping analyses.
        let small = Layer::conv2d("s", 1, 8, 4, 4, 4, 3, 3);
        let cfg = SearchConfig {
            iterations: 400,
            seed: 21,
        };
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let naive = random_search_baseline(&arch(), &small, cfg, cost).unwrap();
        let deduped = random_search(&arch(), &small, cfg, cost).unwrap();
        assert_eq!(naive.mapping, deduped.mapping);
        assert_eq!(naive.cost.to_bits(), deduped.cost.to_bits());
        assert!(deduped.deduped > 0, "expected repeat draws to be skipped");
        assert!(deduped.evaluated < naive.evaluated);
        assert_eq!(deduped.skipped(), deduped.deduped + deduped.pruned);
        assert_eq!(naive.deduped, 0);
        assert_eq!(naive.pruned, 0);
    }

    #[test]
    fn pruned_search_matches_unpruned_winner() {
        // Cost = total outermost-level accesses; the outer *read* traffic
        // of the read tensors is an exact subset of it, computable from
        // the mapping alone — a sound, candidate-varying lower bound.
        let a = arch();
        let l = layer();
        let cfg = SearchConfig {
            iterations: 300,
            seed: 9,
        };
        let cost = |x: &LayerAnalysis| x.level(0).total_accesses();
        let plain = random_search(&a, &l, cfg, cost).unwrap();
        let pruned = random_search_pruned(
            &a,
            &l,
            cfg,
            |m: &Mapping| {
                outer_read_traffic(&a, &l, m)
                    .iter()
                    .filter(|(level, _, _)| *level == 0)
                    .map(|(_, _, reads)| reads)
                    .sum()
            },
            cost,
        )
        .unwrap();
        assert_eq!(plain.mapping, pruned.mapping);
        assert_eq!(plain.cost.to_bits(), pruned.cost.to_bits());
        assert!(pruned.pruned > 0, "outer-read bound should prune losers");
        assert!(pruned.evaluated < plain.evaluated);
    }

    #[test]
    fn outer_read_traffic_matches_full_analysis() {
        // The fast bound must reproduce the analyzer's outer-keeper read
        // entries bit-for-bit on legal mappings.
        let a = arch();
        let l = layer();
        let cfg = SearchConfig {
            iterations: 50,
            seed: 13,
        };
        let r =
            random_search(&a, &l, cfg, |x: &LayerAnalysis| x.level(0).total_accesses()).unwrap();
        let full = analyze(&a, &l, &r.mapping).unwrap();
        for (level, tensor, reads) in outer_read_traffic(&a, &l, &r.mapping) {
            assert_eq!(
                reads.to_bits(),
                full.level(level).reads[tensor].to_bits(),
                "{tensor:?} at level {level}"
            );
        }
    }

    #[test]
    fn spatial_base_memo_replays_identical_bases() {
        let a = arch();
        let mut memo = SpatialBaseMemo::new();
        assert!(memo.is_empty());
        let direct = greedy_spatial(&a, &layer(), spatial_priority_for(&layer()));
        let first = memo.base(&a, &layer());
        // Same shape, different name: replayed from the memo.
        let twin = Layer::conv2d("renamed", 1, 16, 8, 8, 8, 3, 3);
        let second = memo.base(&a, &twin);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.len(), 1);
        // And the memoized search agrees with the plain one.
        let cfg = SearchConfig {
            iterations: 60,
            seed: 5,
        };
        let cost = |x: &LayerAnalysis| x.level(0).total_accesses();
        let plain = random_search(&a, &layer(), cfg, cost).unwrap();
        let memoized = random_search_with_memo(&a, &twin, cfg, &mut memo, cost).unwrap();
        assert_eq!(plain.mapping, memoized.mapping);
        assert_eq!(plain.cost.to_bits(), memoized.cost.to_bits());
    }

    #[test]
    fn exhaustive_search_dedupes_redundant_homes() {
        // A layer with several fully-packed (no-leftover) dims: the level
        // choice for those dims is irrelevant, so most combos repeat.
        let small = Layer::conv2d("s", 1, 8, 4, 4, 4, 3, 3);
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let ex = exhaustive_search(&arch(), &small, cost).unwrap();
        assert!(ex.deduped > 0);
        assert!(ex.evaluated > 0);
    }

    #[test]
    fn random_factor_divides_or_returns_v() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in 2..40usize {
            let f = random_factor(v, &mut rng);
            assert!(f == v || v % f == 0);
            assert!(f >= 2);
        }
    }
}
