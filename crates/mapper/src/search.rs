//! Mapping construction and search.
//!
//! Three engines with different determinism/coverage tradeoffs:
//!
//! * [`greedy_spatial`] + [`TemporalPlan`] — deterministic construction:
//!   pack every fan-out with the highest-priority usable dimensions, then
//!   place leftover temporal loops per an explicit plan. Experiments use
//!   this for reproducible, paper-dataflow mappings.
//! * [`random_search`] — seeded random tilings with best-of-N selection
//!   under a caller-supplied cost function (e.g. full-system energy).
//! * [`exhaustive_search`] — enumerates per-dimension temporal homes for
//!   small problems; ground truth for tests.

use crate::{analyze, LayerAnalysis, Mapping};
use lumen_arch::Architecture;
use lumen_workload::{Dim, DimMap, Layer, LayerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default spatial packing priority: parallelize output channels and
/// spatial window dims first (they are the broadcast-friendly dims in
/// photonic dataflows), batch last.
pub const DEFAULT_SPATIAL_PRIORITY: [Dim; 7] =
    [Dim::M, Dim::C, Dim::R, Dim::S, Dim::Q, Dim::P, Dim::N];

/// Spatial packing priority for GEMM-shaped layers: there is no sliding
/// window to exploit (`Q = R = S = 1`), so after output features the
/// independent output rows (`P`, the sequence dimension) are the
/// broadcast-friendly axis — parallelizing rows multicasts the stationary
/// operand without creating a spatial reduction, whereas `C` lanes need
/// partial-sum merging.
pub const MATMUL_SPATIAL_PRIORITY: [Dim; 7] =
    [Dim::M, Dim::P, Dim::C, Dim::N, Dim::Q, Dim::R, Dim::S];

/// The spatial packing priority suited to `layer`'s operator class:
/// [`MATMUL_SPATIAL_PRIORITY`] for [`LayerKind::Matmul`],
/// [`DEFAULT_SPATIAL_PRIORITY`] otherwise. (Fully-connected layers keep
/// the default: with `P = 1` the two orders coincide, and existing
/// dataflows depend on the default.)
pub fn spatial_priority_for(layer: &Layer) -> &'static [Dim; 7] {
    match layer.kind() {
        LayerKind::Matmul => &MATMUL_SPATIAL_PRIORITY,
        _ => &DEFAULT_SPATIAL_PRIORITY,
    }
}

/// Greedily packs every fan-out of `arch` with spatial loops for `layer`.
///
/// Walks levels outermost→innermost; at each fan-out, assigns dimensions
/// in `priority` order, taking as much of each dimension's remaining
/// extent as fits. Returns the partially-built mapping plus each
/// dimension's leftover (ceil) extent for temporal placement.
///
/// # Examples
///
/// ```
/// use lumen_arch::{ArchBuilder, Domain, Fanout};
/// use lumen_mapper::search::{greedy_spatial, DEFAULT_SPATIAL_PRIORITY};
/// use lumen_units::{Energy, Frequency};
/// use lumen_workload::{Dim, DimSet, Layer, TensorSet};
///
/// let arch = ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
///     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
///     .done()
///     .storage("buf", Domain::DigitalElectrical, TensorSet::all())
///     .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M])))
///     .done()
///     .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
///     .build()
///     .unwrap();
/// let layer = Layer::conv2d("l", 1, 16, 4, 8, 8, 3, 3);
/// let (mapping, leftover) = greedy_spatial(&arch, &layer, &DEFAULT_SPATIAL_PRIORITY);
/// assert_eq!(mapping.total_bound(Dim::M), 8); // fanout filled
/// assert_eq!(leftover[Dim::M], 2); // 16 / 8 remains temporal
/// ```
pub fn greedy_spatial(
    arch: &Architecture,
    layer: &Layer,
    priority: &[Dim],
) -> (Mapping, DimMap<usize>) {
    let mut mapping = Mapping::new(arch.levels().len());
    let mut remaining = DimMap::from_fn(|d| layer.shape()[d]);
    for (x, level) in arch.levels().iter().enumerate() {
        let mut capacity = level.fanout().size();
        if capacity <= 1 {
            continue;
        }
        let usable = level.fanout().usable_dims(layer);
        for &d in priority {
            if capacity <= 1 {
                break;
            }
            if !usable.contains(d) || remaining[d] <= 1 {
                continue;
            }
            let f = remaining[d].min(capacity);
            mapping.push_spatial(x, d, f);
            remaining[d] = remaining[d].div_ceil(f);
            capacity /= f;
        }
    }
    (mapping, remaining)
}

/// Where leftover temporal extents go after spatial packing.
///
/// Dimensions listed in `assignments` are placed at their level in the
/// given order (outermost first within a level); unlisted dimensions fall
/// back to `default_level`, appended outer→inner in the order
/// `N, P, Q, M, C, R, S` (reduction loops innermost, which keeps partial
/// sums resident — the usual output-stationary default).
#[derive(Debug, Clone)]
pub struct TemporalPlan {
    /// `(storage level index, dims outer→inner)` placements.
    pub assignments: Vec<(usize, Vec<Dim>)>,
    /// Level for dimensions not mentioned in `assignments`.
    pub default_level: usize,
}

impl TemporalPlan {
    /// Places everything at `level`.
    pub fn all_at(level: usize) -> TemporalPlan {
        TemporalPlan {
            assignments: Vec::new(),
            default_level: level,
        }
    }

    /// Builds the complete mapping from a spatially-packed prefix.
    pub fn apply(&self, mut mapping: Mapping, leftover: &DimMap<usize>) -> Mapping {
        const DEFAULT_ORDER: [Dim; 7] = [Dim::N, Dim::P, Dim::Q, Dim::M, Dim::C, Dim::R, Dim::S];
        let mut placed = [false; 7];
        for (level, dims) in &self.assignments {
            for &d in dims {
                if leftover[d] > 1 {
                    mapping.push_temporal(*level, d, leftover[d]);
                }
                placed[d.index()] = true;
            }
        }
        for d in DEFAULT_ORDER {
            if !placed[d.index()] && leftover[d] > 1 {
                mapping.push_temporal(self.default_level, d, leftover[d]);
            }
        }
        mapping
    }
}

/// A complete deterministic mapping: greedy spatial packing plus a
/// temporal plan.
pub fn greedy_mapping(
    arch: &Architecture,
    layer: &Layer,
    priority: &[Dim],
    plan: &TemporalPlan,
) -> Mapping {
    let (mapping, leftover) = greedy_spatial(arch, layer, priority);
    plan.apply(mapping, &leftover)
}

/// Configuration for [`random_search`].
///
/// A `SearchConfig` fully determines the candidate sequence: the search
/// draws from an [`StdRng`] seeded with `seed`, so equal configs produce
/// bit-identical winning mappings on equal *(architecture, layer)*
/// inputs. The derived `Eq` / `Hash` make that guarantee a typed one —
/// content-addressed evaluation caches key on the config itself, which is
/// sound precisely because the search is a pure function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchConfig {
    /// Number of random candidates to draw.
    pub iterations: usize,
    /// RNG seed (searches are reproducible).
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 500,
            seed: 0xC1A0,
        }
    }
}

/// The outcome of a search: the best mapping, its analysis and its cost.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The winning mapping.
    pub mapping: Mapping,
    /// Its nest analysis.
    pub analysis: LayerAnalysis,
    /// Its cost under the caller's objective.
    pub cost: f64,
    /// Legal candidates evaluated.
    pub evaluated: usize,
}

/// Seeded random mapping search.
///
/// Spatial packing is fixed (greedy); temporal factorizations and level
/// placements are randomized. Candidates failing validation or capacity
/// checks are discarded. Returns `None` if no legal candidate was found.
pub fn random_search(
    arch: &Architecture,
    layer: &Layer,
    config: SearchConfig,
    mut cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (base, leftover) = greedy_spatial(arch, layer, spatial_priority_for(layer));
    let storage_levels: Vec<usize> = arch
        .levels()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kind().is_converter())
        .map(|(i, _)| i)
        .collect();

    let mut best: Option<SearchResult> = None;
    let mut evaluated = 0usize;
    for _ in 0..config.iterations {
        let mut candidate = base.clone();
        // Randomly split each leftover extent across storage levels.
        let mut per_level_loops: Vec<Vec<(Dim, usize)>> = vec![Vec::new(); arch.levels().len()];
        for d in Dim::ALL {
            let mut remaining = leftover[d];
            if remaining <= 1 {
                continue;
            }
            // Up to `storage_levels.len()` chunks.
            let chunks = rng.gen_range(1..=storage_levels.len());
            for i in 0..chunks {
                if remaining <= 1 {
                    break;
                }
                let f = if i + 1 == chunks {
                    remaining
                } else {
                    random_factor(remaining, &mut rng)
                };
                if f > 1 {
                    let level = storage_levels[rng.gen_range(0..storage_levels.len())];
                    per_level_loops[level].push((d, f));
                    remaining = remaining.div_ceil(f);
                }
            }
            if remaining > 1 {
                let level = storage_levels[rng.gen_range(0..storage_levels.len())];
                per_level_loops[level].push((d, remaining));
            }
        }
        // Random order within each level.
        for (level, loops) in per_level_loops.iter_mut().enumerate() {
            shuffle(loops, &mut rng);
            for &(d, f) in loops.iter() {
                candidate.push_temporal(level, d, f);
            }
        }
        let Ok(analysis) = analyze(arch, layer, &candidate) else {
            continue;
        };
        evaluated += 1;
        let c = cost(&analysis);
        if best.as_ref().is_none_or(|b| c < b.cost) {
            best = Some(SearchResult {
                mapping: candidate,
                analysis,
                cost: c,
                evaluated,
            });
        }
    }
    if let Some(b) = &mut best {
        b.evaluated = evaluated;
    }
    best
}

/// Exhaustive search over per-dimension temporal homes (no splitting):
/// every dimension's leftover extent is assigned to one storage level.
/// The space is `|storage levels|^7`; suitable for tests and small cases.
pub fn exhaustive_search(
    arch: &Architecture,
    layer: &Layer,
    mut cost: impl FnMut(&LayerAnalysis) -> f64,
) -> Option<SearchResult> {
    let (base, leftover) = greedy_spatial(arch, layer, spatial_priority_for(layer));
    let storage_levels: Vec<usize> = arch
        .levels()
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.kind().is_converter())
        .map(|(i, _)| i)
        .collect();
    let k = storage_levels.len();
    let total = (k as u64).pow(7);

    let mut best: Option<SearchResult> = None;
    let mut evaluated = 0usize;
    for combo in 0..total {
        let mut candidate = base.clone();
        let mut c = combo;
        // Assign dims in the default outer->inner order so within-level
        // ordering is deterministic.
        for d in [Dim::N, Dim::P, Dim::Q, Dim::M, Dim::C, Dim::R, Dim::S] {
            let level = storage_levels[(c % k as u64) as usize];
            c /= k as u64;
            if leftover[d] > 1 {
                candidate.push_temporal(level, d, leftover[d]);
            }
        }
        let Ok(analysis) = analyze(arch, layer, &candidate) else {
            continue;
        };
        evaluated += 1;
        let cost_value = cost(&analysis);
        if best.as_ref().is_none_or(|b| cost_value < b.cost) {
            best = Some(SearchResult {
                mapping: candidate,
                analysis,
                cost: cost_value,
                evaluated,
            });
        }
    }
    if let Some(b) = &mut best {
        b.evaluated = evaluated;
    }
    best
}

/// A random factor of `v` (uniform over divisors > 1, or a ceil-factor
/// when `v` is prime-ish).
fn random_factor(v: usize, rng: &mut StdRng) -> usize {
    if v <= 1 {
        return 1;
    }
    let divisors: Vec<usize> = (2..=v).filter(|f| v.is_multiple_of(*f)).collect();
    if divisors.is_empty() {
        v
    } else {
        divisors[rng.gen_range(0..divisors.len())]
    }
}

/// Fisher-Yates shuffle (avoids pulling in rand's slice extension trait).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{DimSet, TensorSet};

    fn arch() -> Architecture {
        ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(8).allow(DimSet::from_dims(&[Dim::M, Dim::C])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap()
    }

    fn layer() -> Layer {
        Layer::conv2d("l", 1, 16, 8, 8, 8, 3, 3)
    }

    #[test]
    fn greedy_fills_fanout_by_priority() {
        let (m, leftover) = greedy_spatial(&arch(), &layer(), &DEFAULT_SPATIAL_PRIORITY);
        // M=16 against capacity 8: all 8 lanes to M.
        assert_eq!(m.level(1).spatial_product(), 8);
        assert_eq!(leftover[Dim::M], 2);
        assert_eq!(leftover[Dim::C], 8);
    }

    #[test]
    fn greedy_respects_priority_order() {
        let (m, _) = greedy_spatial(&arch(), &layer(), &[Dim::C, Dim::M]);
        // C first: C=8 fills the whole fanout.
        let spatial = &m.level(1).spatial;
        assert_eq!(spatial.len(), 1);
        assert_eq!(spatial[0].dim, Dim::C);
        assert_eq!(spatial[0].bound, 8);
    }

    #[test]
    fn greedy_mapping_is_legal() {
        let m = greedy_mapping(
            &arch(),
            &layer(),
            &DEFAULT_SPATIAL_PRIORITY,
            &TemporalPlan::all_at(1),
        );
        assert!(m.validate(&arch(), &layer()).is_ok());
        let a = analyze(&arch(), &layer(), &m).unwrap();
        assert_eq!(a.macs, layer().macs());
    }

    #[test]
    fn temporal_plan_honors_explicit_assignment() {
        let (base, leftover) = greedy_spatial(&arch(), &layer(), &DEFAULT_SPATIAL_PRIORITY);
        let plan = TemporalPlan {
            assignments: vec![(0, vec![Dim::C])],
            default_level: 1,
        };
        let m = plan.apply(base, &leftover);
        assert!(m.level(0).temporal.iter().any(|l| l.dim == Dim::C));
        assert!(!m.level(1).temporal.iter().any(|l| l.dim == Dim::C));
    }

    #[test]
    fn random_search_finds_legal_mapping_and_is_reproducible() {
        let cfg = SearchConfig {
            iterations: 80,
            seed: 7,
        };
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let r1 = random_search(&arch(), &layer(), cfg, cost).expect("found mapping");
        let r2 = random_search(&arch(), &layer(), cfg, cost).expect("found mapping");
        assert_eq!(r1.mapping, r2.mapping, "seeded search is deterministic");
        assert!(r1.evaluated > 0);
        assert!(r1.cost >= 0.0);
    }

    #[test]
    fn random_search_beats_or_matches_worst_case() {
        // The best random candidate should not be worse than the greedy
        // all-at-buf mapping under the same cost.
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let greedy = greedy_mapping(
            &arch(),
            &layer(),
            &DEFAULT_SPATIAL_PRIORITY,
            &TemporalPlan::all_at(1),
        );
        let greedy_cost = cost(&analyze(&arch(), &layer(), &greedy).unwrap());
        let found = random_search(
            &arch(),
            &layer(),
            SearchConfig {
                iterations: 300,
                seed: 3,
            },
            cost,
        )
        .unwrap();
        assert!(
            found.cost <= greedy_cost * 1.001,
            "random best {} vs greedy {greedy_cost}",
            found.cost
        );
    }

    #[test]
    fn exhaustive_search_is_at_least_as_good_as_random() {
        let small = Layer::conv2d("s", 1, 8, 4, 4, 4, 3, 3);
        let cost = |a: &LayerAnalysis| a.level(0).total_accesses();
        let ex = exhaustive_search(&arch(), &small, cost).unwrap();
        let rand = random_search(
            &arch(),
            &small,
            SearchConfig {
                iterations: 100,
                seed: 11,
            },
            cost,
        )
        .unwrap();
        assert!(ex.cost <= rand.cost * 1.001);
        assert!(ex.evaluated > 0);
    }

    #[test]
    fn matmul_priority_prefers_rows_over_reduction() {
        // Fanout wired for {M, C, P}: a matmul should spend lanes on the
        // sequence dimension before the reduction dimension.
        let a = ArchBuilder::new("mm", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(Fanout::new(64).allow(DimSet::from_dims(&[Dim::M, Dim::C, Dim::P])))
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let mm = Layer::matmul("mm", 1, 8, 16, 32);
        let (m, leftover) = greedy_spatial(&a, &mm, spatial_priority_for(&mm));
        // M=8 then P=8 fill the 64 lanes; C stays temporal.
        assert_eq!(m.total_bound(Dim::M), 8);
        assert_eq!(m.total_bound(Dim::P), 8);
        assert_eq!(m.total_bound(Dim::C), 1);
        assert_eq!(leftover[Dim::C], 16);
        assert_eq!(leftover[Dim::P], 4);
    }

    #[test]
    fn priority_selection_by_kind() {
        let mm = Layer::matmul("mm", 1, 4, 4, 4);
        assert_eq!(spatial_priority_for(&mm), &MATMUL_SPATIAL_PRIORITY);
        assert_eq!(spatial_priority_for(&layer()), &DEFAULT_SPATIAL_PRIORITY);
        let fc = Layer::fully_connected("fc", 1, 8, 8);
        assert_eq!(spatial_priority_for(&fc), &DEFAULT_SPATIAL_PRIORITY);
    }

    #[test]
    fn greedy_matmul_mapping_is_legal_and_counts_macs() {
        let mm = Layer::matmul("mm", 2, 24, 12, 40);
        let m = greedy_mapping(
            &arch(),
            &mm,
            spatial_priority_for(&mm),
            &TemporalPlan::all_at(1),
        );
        assert!(m.validate(&arch(), &mm).is_ok());
        let a = analyze(&arch(), &mm, &m).unwrap();
        assert_eq!(a.macs, mm.macs());
        assert!(a.utilization > 0.0 && a.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn random_factor_divides_or_returns_v() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in 2..40usize {
            let f = random_factor(v, &mut rng);
            assert!(f == v || v % f == 0);
            assert!(f >= 2);
        }
    }
}
