//! Mapping validation and analysis errors.

use lumen_workload::Dim;
use std::fmt;

/// An invalid mapping for a given architecture and layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The mapping has a different number of levels than the architecture.
    LevelCountMismatch {
        /// Levels in the mapping.
        mapping: usize,
        /// Levels in the architecture.
        arch: usize,
    },
    /// Temporal loops were assigned to a converter level.
    TemporalAtConverter {
        /// The offending level name.
        level: String,
    },
    /// The spatial loops at a level exceed its fan-out.
    FanoutExceeded {
        /// The offending level name.
        level: String,
        /// Parallel instances requested.
        used: u64,
        /// Parallel instances available.
        available: u64,
    },
    /// A spatial loop uses a dimension the fan-out does not support (or
    /// one gated off because the layer is strided).
    DimNotAllowed {
        /// The offending level name.
        level: String,
        /// The offending dimension.
        dim: Dim,
    },
    /// A dimension's mapped bound product does not cover the layer.
    Uncovered {
        /// The offending dimension.
        dim: Dim,
        /// Product of mapped bounds.
        mapped: u64,
        /// Layer requirement.
        needed: u64,
    },
    /// A tile does not fit in a bounded buffer.
    CapacityExceeded {
        /// The offending level name.
        level: String,
        /// Bits required by the mapping's tiles.
        required_bits: u64,
        /// Bits available.
        available_bits: u64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::LevelCountMismatch { mapping, arch } => write!(
                f,
                "mapping has {mapping} levels but the architecture has {arch}"
            ),
            MappingError::TemporalAtConverter { level } => write!(
                f,
                "temporal loops cannot be assigned to converter level `{level}`"
            ),
            MappingError::FanoutExceeded {
                level,
                used,
                available,
            } => write!(
                f,
                "level `{level}` maps {used} parallel instances but fans out to only {available}"
            ),
            MappingError::DimNotAllowed { level, dim } => write!(
                f,
                "dimension {dim} cannot map spatially at level `{level}` for this layer"
            ),
            MappingError::Uncovered {
                dim,
                mapped,
                needed,
            } => write!(
                f,
                "dimension {dim} is mapped to {mapped} iterations but the layer needs {needed}"
            ),
            MappingError::CapacityExceeded {
                level,
                required_bits,
                available_bits,
            } => write!(
                f,
                "tiles need {required_bits} bits at level `{level}` but only {available_bits} fit"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let samples = vec![
            MappingError::LevelCountMismatch {
                mapping: 2,
                arch: 3,
            },
            MappingError::TemporalAtConverter {
                level: "dac".into(),
            },
            MappingError::FanoutExceeded {
                level: "pe".into(),
                used: 9,
                available: 8,
            },
            MappingError::DimNotAllowed {
                level: "pe".into(),
                dim: Dim::Q,
            },
            MappingError::Uncovered {
                dim: Dim::M,
                mapped: 4,
                needed: 8,
            },
            MappingError::CapacityExceeded {
                level: "glb".into(),
                required_bits: 100,
                available_bits: 64,
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
