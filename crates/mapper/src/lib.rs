//! # lumen-mapper
//!
//! Timeloop-style loop-nest mapping and reuse analysis — the modeling core
//! that turns *(architecture, layer, mapping)* into access counts,
//! conversion counts, cycles and utilization.
//!
//! A [`Mapping`] assigns each architecture level an ordered list of
//! *temporal* loops and a set of *spatial* loops over the seven problem
//! dimensions. [`analyze`] then computes, per storage level and tensor:
//!
//! * tile footprints (sliding-window aware for inputs);
//! * fill / read / update counts using the classic buffer-revisit
//!   multiplicity walk (a loop multiplies traffic if it is relevant to the
//!   tensor, or if a relevant loop iterates inside it);
//! * spatial multicast and reduction factors from footprint ratios, which
//!   is exactly how "convert once, reuse spatially" saves DAC/ADC/modulator
//!   energy in photonic systems;
//! * conversion counts at every converter level;
//! * cycles, padding waste and spatial under-utilization (the effects that
//!   degrade strided-conv and fully-connected throughput in the paper's
//!   Fig. 3).
//!
//! The [`search`] module provides mapping construction and optimization:
//! a deterministic greedy constructor, seeded random search and an
//! exhaustive enumerator for small spaces.
//!
//! # Examples
//!
//! ```
//! use lumen_arch::{ArchBuilder, Domain, Fanout};
//! use lumen_mapper::{analyze, Mapping};
//! use lumen_units::{Energy, Frequency};
//! use lumen_workload::{Dim, DimSet, Layer, TensorSet};
//!
//! let arch = ArchBuilder::new("toy", Frequency::from_gigahertz(1.0))
//!     .storage("dram", Domain::DigitalElectrical, TensorSet::all())
//!     .done()
//!     .storage("buf", Domain::DigitalElectrical, TensorSet::all())
//!     .fanout(Fanout::new(4).allow(DimSet::from_dims(&[Dim::M])))
//!     .done()
//!     .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
//!     .build()
//!     .unwrap();
//!
//! let layer = Layer::conv2d("l", 1, 4, 4, 4, 4, 1, 1);
//! let mut mapping = Mapping::new(arch.levels().len());
//! mapping.push_temporal(0, Dim::C, 4);
//! mapping.push_temporal(1, Dim::P, 4);
//! mapping.push_temporal(1, Dim::Q, 4);
//! mapping.push_spatial(1, Dim::M, 4);
//!
//! let analysis = analyze(&arch, &layer, &mapping).unwrap();
//! assert_eq!(analysis.cycles, 4 * 4 * 4);
//! assert_eq!(analysis.macs, layer.macs());
//! ```

mod analysis;
mod error;
mod mapping;
pub mod search;

pub use analysis::{analyze, outer_read_traffic, LayerAnalysis, LevelTraffic};
pub use error::MappingError;
pub use mapping::{LevelLoops, Loop, Mapping};
