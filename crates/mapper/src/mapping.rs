//! Loop-nest mappings: how a layer's iteration space is tiled across the
//! hierarchy.

use crate::MappingError;
use lumen_arch::Architecture;
use lumen_workload::{Dim, DimMap, Layer};
use std::fmt;

/// One loop: a problem dimension iterated `bound` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loop {
    /// The iterated dimension.
    pub dim: Dim,
    /// The trip count (≥ 1).
    pub bound: usize,
}

impl Loop {
    /// Builds a loop.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(dim: Dim, bound: usize) -> Loop {
        assert!(bound > 0, "loop bound must be nonzero");
        Loop { dim, bound }
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.dim, self.bound)
    }
}

/// The loops assigned to one architecture level.
///
/// `temporal` is ordered **outermost first**; `spatial` is an unordered
/// set of parallel loops realized by the level's fan-out.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LevelLoops {
    /// Sequential loops, outermost first.
    pub temporal: Vec<Loop>,
    /// Parallel loops across the level's fan-out.
    pub spatial: Vec<Loop>,
}

impl LevelLoops {
    /// Product of spatial bounds (parallel instances used).
    pub fn spatial_product(&self) -> u64 {
        self.spatial.iter().map(|l| l.bound as u64).product()
    }

    /// Product of temporal bounds (sequential steps contributed).
    pub fn temporal_product(&self) -> u64 {
        self.temporal.iter().map(|l| l.bound as u64).product()
    }

    /// `true` if no loops are assigned.
    pub fn is_empty(&self) -> bool {
        self.temporal.is_empty() && self.spatial.is_empty()
    }
}

/// A complete mapping: one [`LevelLoops`] per architecture level
/// (outermost first, aligned with [`Architecture::levels`]).
///
/// Temporal loops may be assigned to storage levels and to the compute
/// level (the innermost sequencing, which defines the tiles resident in
/// the innermost buffers) — but not to converters. Spatial loops may go to
/// any level with a fan-out (including converters — e.g. a DAC whose
/// output drives several analog units). Dimensions not mentioned anywhere
/// default to a bound of 1.
///
/// # Examples
///
/// ```
/// use lumen_mapper::Mapping;
/// use lumen_workload::Dim;
///
/// let mut m = Mapping::new(3);
/// m.push_temporal(0, Dim::C, 8);
/// m.push_spatial(1, Dim::M, 16);
/// assert_eq!(m.total_bound(Dim::C), 8);
/// assert_eq!(m.total_bound(Dim::M), 16);
/// assert_eq!(m.total_bound(Dim::N), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    levels: Vec<LevelLoops>,
}

impl Mapping {
    /// Creates an empty mapping over `num_levels` architecture levels.
    pub fn new(num_levels: usize) -> Mapping {
        Mapping {
            levels: vec![LevelLoops::default(); num_levels],
        }
    }

    /// Appends a temporal loop at `level` (inside any existing temporal
    /// loops at that level).
    pub fn push_temporal(&mut self, level: usize, dim: Dim, bound: usize) -> &mut Mapping {
        if bound > 1 {
            self.levels[level].temporal.push(Loop::new(dim, bound));
        }
        self
    }

    /// Adds a spatial loop at `level`.
    pub fn push_spatial(&mut self, level: usize, dim: Dim, bound: usize) -> &mut Mapping {
        if bound > 1 {
            self.levels[level].spatial.push(Loop::new(dim, bound));
        }
        self
    }

    /// The loops of every level, outermost level first.
    pub fn levels(&self) -> &[LevelLoops] {
        &self.levels
    }

    /// The loops at one level.
    pub fn level(&self, index: usize) -> &LevelLoops {
        &self.levels[index]
    }

    /// Product of all bounds (temporal and spatial) of `dim` — the padded
    /// extent the hardware iterates.
    pub fn total_bound(&self, dim: Dim) -> u64 {
        self.levels
            .iter()
            .flat_map(|l| l.temporal.iter().chain(l.spatial.iter()))
            .filter(|l| l.dim == dim)
            .map(|l| l.bound as u64)
            .product()
    }

    /// Padded extents of all dimensions.
    pub fn padded_shape(&self) -> DimMap<u64> {
        DimMap::from_fn(|d| self.total_bound(d))
    }

    /// Product of every temporal bound: the steady-state cycle count of one
    /// channel group.
    pub fn total_temporal_product(&self) -> u64 {
        self.levels
            .iter()
            .map(LevelLoops::temporal_product)
            .product()
    }

    /// Product of every spatial bound: parallel lanes used per cycle.
    pub fn total_spatial_product(&self) -> u64 {
        self.levels
            .iter()
            .map(LevelLoops::spatial_product)
            .product()
    }

    /// Checks this mapping against an architecture and layer.
    ///
    /// # Errors
    ///
    /// * [`MappingError::LevelCountMismatch`] — wrong number of levels;
    /// * [`MappingError::TemporalAtConverter`] — temporal loops on a
    ///   converter level;
    /// * [`MappingError::FanoutExceeded`] — spatial product above the
    ///   level's fan-out;
    /// * [`MappingError::DimNotAllowed`] — spatial dim the fan-out does not
    ///   wire, or one gated off by a stride requirement;
    /// * [`MappingError::Uncovered`] — a dimension whose mapped product is
    ///   below the layer bound.
    pub fn validate(&self, arch: &Architecture, layer: &Layer) -> Result<(), MappingError> {
        if self.levels.len() != arch.levels().len() {
            return Err(MappingError::LevelCountMismatch {
                mapping: self.levels.len(),
                arch: arch.levels().len(),
            });
        }
        for (i, (loops, level)) in self.levels.iter().zip(arch.levels()).enumerate() {
            if !loops.temporal.is_empty() && level.kind().is_converter() {
                return Err(MappingError::TemporalAtConverter {
                    level: level.name().to_string(),
                });
            }
            let fanout = level.fanout();
            if loops.spatial_product() > fanout.size() as u64 {
                return Err(MappingError::FanoutExceeded {
                    level: level.name().to_string(),
                    used: loops.spatial_product(),
                    available: fanout.size() as u64,
                });
            }
            let usable = fanout.usable_dims(layer);
            for l in &loops.spatial {
                if !usable.contains(l.dim) {
                    return Err(MappingError::DimNotAllowed {
                        level: level.name().to_string(),
                        dim: l.dim,
                    });
                }
            }
            let _ = i;
        }
        for d in Dim::ALL {
            let mapped = self.total_bound(d);
            let needed = layer.shape()[d] as u64;
            if mapped < needed {
                return Err(MappingError::Uncovered {
                    dim: d,
                    mapped,
                    needed,
                });
            }
        }
        Ok(())
    }

    /// Padding waste: padded iteration volume over the true volume (≥ 1).
    pub fn padding_factor(&self, layer: &Layer) -> f64 {
        let padded: f64 = Dim::ALL
            .iter()
            .map(|&d| self.total_bound(d) as f64)
            .product();
        padded / layer.shape().volume() as f64
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, loops) in self.levels.iter().enumerate() {
            write!(f, "L{i}:")?;
            if loops.is_empty() {
                write!(f, " -")?;
            }
            for l in &loops.temporal {
                write!(f, " t{l}")?;
            }
            for l in &loops.spatial {
                write!(f, " s{l}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_arch::{ArchBuilder, Domain, Fanout};
    use lumen_units::{Energy, Frequency};
    use lumen_workload::{DimSet, TensorSet};

    fn arch() -> Architecture {
        ArchBuilder::new("t", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .storage("buf", Domain::DigitalElectrical, TensorSet::all())
            .fanout(
                Fanout::new(8)
                    .allow(DimSet::from_dims(&[Dim::M, Dim::Q]))
                    .require_unit_stride(DimSet::from_dims(&[Dim::Q])),
            )
            .done()
            .compute("mac", Domain::DigitalElectrical, Energy::ZERO)
            .build()
            .unwrap()
    }

    fn layer() -> Layer {
        Layer::conv2d("l", 1, 8, 2, 4, 4, 3, 3)
    }

    #[test]
    fn bound_products() {
        let mut m = Mapping::new(3);
        m.push_temporal(0, Dim::C, 2);
        m.push_temporal(1, Dim::P, 4);
        m.push_spatial(1, Dim::M, 8);
        assert_eq!(m.total_bound(Dim::M), 8);
        assert_eq!(m.total_temporal_product(), 8);
        assert_eq!(m.total_spatial_product(), 8);
    }

    #[test]
    fn unit_bounds_are_elided() {
        let mut m = Mapping::new(3);
        m.push_temporal(0, Dim::C, 1);
        assert!(m.level(0).is_empty());
    }

    #[test]
    fn valid_mapping_passes() {
        let mut m = Mapping::new(3);
        m.push_temporal(0, Dim::C, 2);
        m.push_temporal(1, Dim::P, 4);
        m.push_temporal(1, Dim::Q, 4);
        m.push_temporal(1, Dim::R, 3);
        m.push_temporal(1, Dim::S, 3);
        m.push_spatial(1, Dim::M, 8);
        assert_eq!(m.validate(&arch(), &layer()), Ok(()));
    }

    #[test]
    fn uncovered_dim_rejected() {
        let mut m = Mapping::new(3);
        m.push_spatial(1, Dim::M, 8);
        let err = m.validate(&arch(), &layer()).unwrap_err();
        assert!(matches!(err, MappingError::Uncovered { .. }));
    }

    #[test]
    fn fanout_capacity_enforced() {
        let mut m = Mapping::new(3);
        m.push_spatial(1, Dim::M, 16);
        let err = m.validate(&arch(), &layer()).unwrap_err();
        assert!(matches!(err, MappingError::FanoutExceeded { .. }));
    }

    #[test]
    fn disallowed_spatial_dim_rejected() {
        let mut m = Mapping::new(3);
        m.push_spatial(1, Dim::C, 2);
        let err = m.validate(&arch(), &layer()).unwrap_err();
        assert!(matches!(err, MappingError::DimNotAllowed { .. }));
    }

    #[test]
    fn stride_gated_dim_rejected_for_strided_layer() {
        let strided = layer().with_stride(2, 2);
        let mut m = Mapping::new(3);
        m.push_spatial(1, Dim::Q, 2);
        // Q requires unit stride on this fanout.
        let err = m.validate(&arch(), &strided).unwrap_err();
        assert!(matches!(
            err,
            MappingError::DimNotAllowed { dim: Dim::Q, .. }
        ));
    }

    #[test]
    fn temporal_on_converter_rejected() {
        let carch = ArchBuilder::new("c", Frequency::from_gigahertz(1.0))
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .done()
            .converter("dac", Domain::AnalogElectrical, TensorSet::all())
            .done()
            .compute("mac", Domain::AnalogElectrical, Energy::ZERO)
            .build()
            .unwrap();
        let mut m = Mapping::new(3);
        m.push_temporal(1, Dim::C, 2);
        let err = m.validate(&carch, &layer()).unwrap_err();
        assert!(matches!(err, MappingError::TemporalAtConverter { .. }));
    }

    #[test]
    fn temporal_on_compute_allowed() {
        let mut m = Mapping::new(3);
        m.push_temporal(2, Dim::C, 2);
        m.push_temporal(1, Dim::P, 4);
        m.push_temporal(1, Dim::Q, 4);
        m.push_temporal(1, Dim::R, 3);
        m.push_temporal(1, Dim::S, 3);
        m.push_spatial(1, Dim::M, 8);
        assert_eq!(m.validate(&arch(), &layer()), Ok(()));
    }

    #[test]
    fn padding_factor() {
        let mut m = Mapping::new(3);
        // Layer C=2 mapped as 3 -> 1.5x padding.
        m.push_temporal(0, Dim::C, 3);
        m.push_temporal(1, Dim::P, 4);
        m.push_temporal(1, Dim::Q, 4);
        m.push_temporal(1, Dim::R, 3);
        m.push_temporal(1, Dim::S, 3);
        m.push_spatial(1, Dim::M, 8);
        assert!((m.padding_factor(&layer()) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_loops() {
        let mut m = Mapping::new(2);
        m.push_temporal(0, Dim::C, 2);
        m.push_spatial(0, Dim::M, 4);
        let shown = format!("{m}");
        assert!(shown.contains("tC:2") && shown.contains("sM:4"));
    }
}
