//! The seven problem dimensions of a convolutional loop nest.

use std::fmt;

/// One dimension of the 7-D convolution iteration space.
///
/// The ordering (`N`, `M`, `C`, `P`, `Q`, `R`, `S`) is fixed and used as the
/// canonical index for [`DimMap`] and [`Shape`].
///
/// # Examples
///
/// ```
/// use lumen_workload::Dim;
/// assert_eq!(Dim::ALL.len(), 7);
/// assert_eq!(Dim::M.index(), 1);
/// assert_eq!(format!("{}", Dim::Q), "Q");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Dim {
    /// Batch.
    N = 0,
    /// Output channels.
    M = 1,
    /// Input channels.
    C = 2,
    /// Output rows.
    P = 3,
    /// Output columns.
    Q = 4,
    /// Filter rows.
    R = 5,
    /// Filter columns.
    S = 6,
}

impl Dim {
    /// All dimensions in canonical order.
    pub const ALL: [Dim; 7] = [Dim::N, Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S];

    /// Canonical index of this dimension (0..7).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The dimension with the given canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 7`.
    #[inline]
    pub const fn from_index(index: usize) -> Dim {
        Dim::ALL[index]
    }

    /// `true` for the reduction dimensions `C`, `R`, `S` — iterating them
    /// accumulates into the same output element.
    #[inline]
    pub const fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::R | Dim::S)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Dim::N => 'N',
            Dim::M => 'M',
            Dim::C => 'C',
            Dim::P => 'P',
            Dim::Q => 'Q',
            Dim::R => 'R',
            Dim::S => 'S',
        };
        write!(f, "{c}")
    }
}

/// A set of [`Dim`]s, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, DimSet};
/// let spatial = DimSet::from_dims(&[Dim::P, Dim::Q]);
/// assert!(spatial.contains(Dim::P));
/// assert!(!spatial.contains(Dim::C));
/// assert_eq!(spatial.len(), 2);
/// let all = spatial.union(DimSet::all());
/// assert_eq!(all, DimSet::all());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DimSet(u8);

impl DimSet {
    /// The empty set.
    pub const EMPTY: DimSet = DimSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> DimSet {
        DimSet(0)
    }

    /// The set of all seven dimensions.
    #[inline]
    pub const fn all() -> DimSet {
        DimSet(0b111_1111)
    }

    /// Builds a set from a slice of dimensions.
    pub fn from_dims(dims: &[Dim]) -> DimSet {
        let mut set = DimSet(0);
        for &d in dims {
            set = set.with(d);
        }
        set
    }

    /// Returns this set with `dim` added.
    #[inline]
    pub const fn with(self, dim: Dim) -> DimSet {
        DimSet(self.0 | (1 << dim.index()))
    }

    /// Returns this set with `dim` removed.
    #[inline]
    pub const fn without(self, dim: Dim) -> DimSet {
        DimSet(self.0 & !(1 << dim.index()))
    }

    /// `true` if `dim` is a member.
    #[inline]
    pub const fn contains(self, dim: Dim) -> bool {
        self.0 & (1 << dim.index()) != 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: DimSet) -> DimSet {
        DimSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: DimSet) -> DimSet {
        DimSet(self.0 & other.0)
    }

    /// `true` if the sets share no members.
    #[inline]
    pub const fn is_disjoint(self, other: DimSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Dim> {
        Dim::ALL.into_iter().filter(move |d| self.contains(*d))
    }
}

impl FromIterator<Dim> for DimSet {
    fn from_iter<I: IntoIterator<Item = Dim>>(iter: I) -> DimSet {
        iter.into_iter().fold(DimSet::new(), DimSet::with)
    }
}

impl fmt::Display for DimSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// A value of type `T` per [`Dim`].
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, DimMap};
/// let mut factors = DimMap::filled(1usize);
/// factors[Dim::M] = 8;
/// assert_eq!(factors[Dim::M], 8);
/// assert_eq!(factors.iter().map(|(_, v)| *v).product::<usize>(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DimMap<T> {
    values: [T; 7],
}

impl<T> DimMap<T> {
    /// Builds a map from a function of the dimension.
    pub fn from_fn(mut f: impl FnMut(Dim) -> T) -> DimMap<T> {
        DimMap {
            values: Dim::ALL.map(&mut f),
        }
    }

    /// Iterates `(dim, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, &T)> {
        Dim::ALL.iter().map(move |&d| (d, &self.values[d.index()]))
    }
}

impl<T: Copy> DimMap<T> {
    /// Builds a map with every dimension set to `value`.
    pub fn filled(value: T) -> DimMap<T> {
        DimMap { values: [value; 7] }
    }
}

impl<T> std::ops::Index<Dim> for DimMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, dim: Dim) -> &T {
        &self.values[dim.index()]
    }
}

impl<T> std::ops::IndexMut<Dim> for DimMap<T> {
    #[inline]
    fn index_mut(&mut self, dim: Dim) -> &mut T {
        &mut self.values[dim.index()]
    }
}

/// The concrete bounds of a layer's 7-D iteration space.
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, Shape};
/// let s = Shape::new(1, 64, 3, 224, 224, 3, 3);
/// assert_eq!(s[Dim::M], 64);
/// assert_eq!(s.volume(), 64 * 3 * 224 * 224 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape(DimMap<usize>);

impl Shape {
    /// Builds a shape from the seven canonical bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(n: usize, m: usize, c: usize, p: usize, q: usize, r: usize, s: usize) -> Shape {
        let mut map = DimMap::filled(1);
        map[Dim::N] = n;
        map[Dim::M] = m;
        map[Dim::C] = c;
        map[Dim::P] = p;
        map[Dim::Q] = q;
        map[Dim::R] = r;
        map[Dim::S] = s;
        Shape(map)
    }

    /// The bound of one dimension.
    #[inline]
    pub fn bound(&self, dim: Dim) -> usize {
        self.0[dim]
    }

    /// Sets the bound of one dimension (builder style).
    #[must_use]
    pub fn with_bound(mut self, dim: Dim, bound: usize) -> Shape {
        self.0[dim] = bound;
        self
    }

    /// Product of all bounds — the number of MACs of one group.
    pub fn volume(&self) -> u64 {
        Dim::ALL.iter().map(|&d| self.0[d] as u64).product()
    }

    /// `true` if every bound is at least 1.
    pub fn is_valid(&self) -> bool {
        Dim::ALL.iter().all(|&d| self.0[d] >= 1)
    }
}

impl std::ops::Index<Dim> for Shape {
    type Output = usize;
    #[inline]
    fn index(&self, dim: Dim) -> &usize {
        &self.0[dim]
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in Dim::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}={}", self.0[*d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_index_round_trip() {
        for d in Dim::ALL {
            assert_eq!(Dim::from_index(d.index()), d);
        }
    }

    #[test]
    fn reduction_dims() {
        let reductions: Vec<Dim> = Dim::ALL.into_iter().filter(|d| d.is_reduction()).collect();
        assert_eq!(reductions, vec![Dim::C, Dim::R, Dim::S]);
    }

    #[test]
    fn dimset_ops() {
        let a = DimSet::from_dims(&[Dim::M, Dim::C]);
        let b = DimSet::from_dims(&[Dim::C, Dim::P]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(Dim::C));
        assert!(!a.is_disjoint(b));
        assert!(a.without(Dim::C).is_disjoint(b.without(Dim::C)));
        assert_eq!(DimSet::all().len(), 7);
        assert!(DimSet::EMPTY.is_empty());
    }

    #[test]
    fn dimset_iter_order() {
        let s = DimSet::from_dims(&[Dim::S, Dim::N, Dim::Q]);
        let v: Vec<Dim> = s.iter().collect();
        assert_eq!(v, vec![Dim::N, Dim::Q, Dim::S]);
    }

    #[test]
    fn dimset_display() {
        let s = DimSet::from_dims(&[Dim::M, Dim::R]);
        assert_eq!(format!("{s}"), "{M,R}");
    }

    #[test]
    fn dimmap_from_fn() {
        let m = DimMap::from_fn(|d| d.index() * 2);
        assert_eq!(m[Dim::S], 12);
        assert_eq!(m.iter().count(), 7);
    }

    #[test]
    fn shape_volume_and_validity() {
        let s = Shape::new(2, 4, 8, 16, 16, 3, 3);
        assert_eq!(s.volume(), 2 * 4 * 8 * 16 * 16 * 9);
        assert!(s.is_valid());
        let bad = s.with_bound(Dim::C, 0);
        assert!(!bad.is_valid());
    }

    #[test]
    fn shape_display_contains_bounds() {
        let s = Shape::new(1, 2, 3, 4, 5, 6, 7);
        let shown = format!("{s}");
        assert!(shown.contains("M=2") && shown.contains("S=7"));
    }
}
