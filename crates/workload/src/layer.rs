//! Layer shapes: convolutions, fully-connected layers and friends.

use crate::{Dim, Shape, TensorKind};
use std::fmt;

/// The operator class of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard 2-D convolution (possibly grouped / strided / dilated).
    Conv2d,
    /// Fully-connected (dense) layer: a conv with `P=Q=R=S=1`.
    FullyConnected,
    /// Depthwise convolution: `groups == input channels`, one filter per
    /// channel.
    DepthwiseConv2d,
    /// Batched matrix multiply `O[n,p,m] = Σ_c A[n,p,c] · B[c,m]`:
    /// a conv with `Q=R=S=1` whose `P` dimension carries the row
    /// (sequence) extent. Transformer attention and MLP blocks lower to
    /// this kind, with heads folded onto [`Layer::groups`].
    Matmul,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::FullyConnected => "fc",
            LayerKind::DepthwiseConv2d => "dwconv2d",
            LayerKind::Matmul => "matmul",
        };
        write!(f, "{s}")
    }
}

/// Errors produced when constructing or validating a [`Layer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerError {
    /// A dimension bound, stride, dilation or group count was zero.
    ZeroParameter(&'static str),
    /// Channel counts are not divisible by the group count.
    BadGrouping {
        /// Output channels of the full layer.
        m: usize,
        /// Input channels of the full layer.
        c: usize,
        /// Requested group count.
        groups: usize,
    },
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::ZeroParameter(what) => {
                write!(f, "layer parameter `{what}` must be nonzero")
            }
            LayerError::BadGrouping { m, c, groups } => write!(
                f,
                "channels (M={m}, C={c}) are not divisible by groups={groups}"
            ),
        }
    }
}

impl std::error::Error for LayerError {}

/// One DNN layer, described as a (possibly grouped) 7-D loop nest.
///
/// The stored [`Shape`] is *per group*: `M` and `C` are the per-group channel
/// counts and the full layer repeats the nest [`Layer::groups`] times. This
/// matches how grouped layers execute: groups share no data, so a mapper
/// schedules one group at a time.
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, Layer};
///
/// // AlexNet conv2: 5x5, 256 output channels in 2 groups of 48->128.
/// let conv2 = Layer::conv2d("conv2", 1, 256, 96, 27, 27, 5, 5).with_groups(2);
/// assert_eq!(conv2.shape()[Dim::M], 128);
/// assert_eq!(conv2.shape()[Dim::C], 48);
/// assert_eq!(conv2.macs(), 2 * 128 * 48 * 27 * 27 * 25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    shape: Shape,
    stride: (usize, usize),
    dilation: (usize, usize),
    groups: usize,
    /// Batch-sample replicas of the whole nest, for layers whose
    /// stationary operand is a per-sample activation (attention K/V).
    /// Always 1 for ordinary layers, whose batch lives in `N`.
    batch_replicas: usize,
    per_sample_stationary: bool,
    /// Stationary-operand elements appended to a KV cache per evaluated
    /// step, per batch sample (0 = the operand is not a growing cache).
    kv_append: usize,
    /// Cache elements copied copy-on-write before this step's append,
    /// per batch sample: a shared page the sample must privatise before
    /// writing into it (0 = no copy). Only meaningful alongside
    /// `kv_append`.
    kv_cow: usize,
}

impl Layer {
    /// Builds a standard convolution.
    ///
    /// `m` and `c` are the *full-layer* channel counts; use
    /// [`Layer::with_groups`] afterwards for grouped convolutions.
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero (use [`Layer::try_new`] for fallible
    /// construction).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: impl Into<String>,
        n: usize,
        m: usize,
        c: usize,
        p: usize,
        q: usize,
        r: usize,
        s: usize,
    ) -> Layer {
        Layer::try_new(
            name,
            LayerKind::Conv2d,
            Shape::new(n, m, c, p, q, r, s),
            (1, 1),
            (1, 1),
            1,
        )
        .expect("conv2d bounds must be nonzero")
    }

    /// Builds a fully-connected layer with `m` outputs and `c` inputs.
    pub fn fully_connected(name: impl Into<String>, n: usize, m: usize, c: usize) -> Layer {
        Layer::try_new(
            name,
            LayerKind::FullyConnected,
            Shape::new(n, m, c, 1, 1, 1, 1),
            (1, 1),
            (1, 1),
            1,
        )
        .expect("fc bounds must be nonzero")
    }

    /// Builds a batched matrix multiply with `rows` output rows of `m`
    /// features each, reducing over `k` — `O[n,rows,m] = Σ_k A[n,rows,k]
    /// · B[k,m]`.
    ///
    /// The GEMM folds onto the convolution nest as `P = rows` (sequence /
    /// token positions), `M = m` (output features), `C = k` (reduction)
    /// and `Q = R = S = 1`: the B operand projects onto the weight tensor
    /// `W[M,C]`, the A operand onto the input tensor (whose sliding-window
    /// footprint degenerates to exactly `N·C·P` elements at `R = 1`) and
    /// the result onto the output tensor `O[N,M,P]`. Per-head attention
    /// matmuls stack heads with [`Layer::with_groups`], which matches
    /// their execution: heads share no data, so a mapper schedules one at
    /// a time.
    ///
    /// # Examples
    ///
    /// ```
    /// use lumen_workload::{Dim, Layer, TensorKind};
    ///
    /// // BERT-base attention logits: 12 heads of Q[128,64] x K^T[64,128].
    /// let logits = Layer::matmul("logits", 1, 12 * 128, 12 * 64, 128).with_groups(12);
    /// assert_eq!(logits.shape()[Dim::M], 128); // per-head seq
    /// assert_eq!(logits.shape()[Dim::C], 64); // per-head d_head
    /// assert_eq!(logits.macs(), 12 * 128 * 64 * 128);
    /// // The stationary operand (K) counts as the layer's weight tensor.
    /// assert_eq!(logits.tensor_elements(TensorKind::Weight), 12 * 128 * 64);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero.
    pub fn matmul(name: impl Into<String>, n: usize, m: usize, k: usize, rows: usize) -> Layer {
        Layer::try_new(
            name,
            LayerKind::Matmul,
            Shape::new(n, m, k, rows, 1, 1, 1),
            (1, 1),
            (1, 1),
            1,
        )
        .expect("matmul bounds must be nonzero")
    }

    /// Builds a GEMV — a matrix-vector product `O[n,m] = Σ_k A[n,k] ·
    /// B[k,m]`, the shape of one autoregressive decode step.
    ///
    /// This is exactly [`Layer::matmul`] with a single output row
    /// (`rows = 1`): the two constructions produce equal
    /// [`signature`](Layer::signature)s and therefore bit-identical
    /// mappings and evaluations on every architecture (pinned by
    /// `tests/decode_properties.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero.
    pub fn gemv(name: impl Into<String>, n: usize, m: usize, k: usize) -> Layer {
        Layer::matmul(name, n, m, k, 1)
    }

    /// Builds a depthwise convolution over `c` channels.
    #[allow(clippy::too_many_arguments)]
    pub fn depthwise_conv2d(
        name: impl Into<String>,
        n: usize,
        c: usize,
        p: usize,
        q: usize,
        r: usize,
        s: usize,
    ) -> Layer {
        // Depthwise = `c` groups of a 1->1 channel convolution; the full
        // layer has M = C = c channels, divided into c groups.
        Layer::try_new(
            name,
            LayerKind::DepthwiseConv2d,
            Shape::new(n, c, c, p, q, r, s),
            (1, 1),
            (1, 1),
            c,
        )
        .expect("depthwise bounds must be nonzero")
    }

    /// Fallible constructor with every knob exposed.
    ///
    /// `shape` carries the *full-layer* `M`/`C`; they are divided by `groups`.
    ///
    /// # Errors
    ///
    /// Returns [`LayerError::ZeroParameter`] if any bound / stride / dilation
    /// / group count is zero and [`LayerError::BadGrouping`] if the channel
    /// counts are not divisible by `groups`.
    pub fn try_new(
        name: impl Into<String>,
        kind: LayerKind,
        shape: Shape,
        stride: (usize, usize),
        dilation: (usize, usize),
        groups: usize,
    ) -> Result<Layer, LayerError> {
        if !shape.is_valid() {
            return Err(LayerError::ZeroParameter("shape bound"));
        }
        if stride.0 == 0 || stride.1 == 0 {
            return Err(LayerError::ZeroParameter("stride"));
        }
        if dilation.0 == 0 || dilation.1 == 0 {
            return Err(LayerError::ZeroParameter("dilation"));
        }
        if groups == 0 {
            return Err(LayerError::ZeroParameter("groups"));
        }
        let (m, c) = (shape[Dim::M], shape[Dim::C]);
        if m % groups != 0 || c % groups != 0 {
            return Err(LayerError::BadGrouping { m, c, groups });
        }
        let per_group = shape
            .with_bound(Dim::M, m / groups)
            .with_bound(Dim::C, c / groups);
        Ok(Layer {
            name: name.into(),
            kind,
            shape: per_group,
            stride,
            dilation,
            groups,
            batch_replicas: 1,
            per_sample_stationary: false,
            kv_append: 0,
            kv_cow: 0,
        })
    }

    /// Returns this layer with the given stride (builder style).
    #[must_use]
    pub fn with_stride(mut self, vertical: usize, horizontal: usize) -> Layer {
        assert!(vertical > 0 && horizontal > 0, "stride must be nonzero");
        self.stride = (vertical, horizontal);
        self
    }

    /// Returns this layer with the given dilation (builder style).
    #[must_use]
    pub fn with_dilation(mut self, vertical: usize, horizontal: usize) -> Layer {
        assert!(vertical > 0 && horizontal > 0, "dilation must be nonzero");
        self.dilation = (vertical, horizontal);
        self
    }

    /// Splits the layer's channels into `groups` independent groups
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the current per-group channel counts are not divisible by
    /// `groups`.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Layer {
        assert!(groups > 0, "groups must be nonzero");
        let (m, c) = (self.shape[Dim::M], self.shape[Dim::C]);
        assert!(
            m % groups == 0 && c % groups == 0,
            "channels (M={m}, C={c}) not divisible by groups={groups}"
        );
        self.shape = self
            .shape
            .with_bound(Dim::M, m / groups)
            .with_bound(Dim::C, c / groups);
        self.groups *= groups;
        self
    }

    /// Returns this layer with a new batch size (builder style).
    ///
    /// For ordinary layers the batch is the nest's `N` bound, and every
    /// loop dimension outside a tensor's projection reuses it — weights
    /// in particular are shared across the batch. For layers marked
    /// [`Layer::with_per_sample_stationary`] the batch instead replicates
    /// the whole nest (like extra groups), because their stationary
    /// operand is a per-sample activation that batching must *not* share.
    #[must_use]
    pub fn with_batch(mut self, n: usize) -> Layer {
        assert!(n > 0, "batch must be nonzero");
        if self.per_sample_stationary {
            self.batch_replicas = n;
        } else {
            self.shape = self.shape.with_bound(Dim::N, n);
        }
        self
    }

    /// Marks the layer's stationary ("weight") operand as a per-sample
    /// activation — attention K/V rather than model weights (builder
    /// style). Any batch currently carried by `N` moves into whole-nest
    /// replicas, and future [`Layer::with_batch`] calls set the replica
    /// count, so the stationary tensor's footprint and traffic scale
    /// with the batch instead of being modeled as batch-shared.
    #[must_use]
    pub fn with_per_sample_stationary(mut self) -> Layer {
        let n = self.shape[Dim::N];
        self.shape = self.shape.with_bound(Dim::N, 1);
        self.batch_replicas *= n;
        self.per_sample_stationary = true;
        self
    }

    /// Marks the layer's stationary ("weight") operand as a KV-cache
    /// resident tensor that *grows* by `appended` elements per evaluated
    /// step, per batch sample (builder style).
    ///
    /// A KV cache behaves like weights that are appended to every step:
    /// it is replicated per sample — this builder implies
    /// [`Layer::with_per_sample_stationary`], so batching replicates the
    /// cache instead of sharing it — and it is never reused across steps,
    /// so each step's evaluation re-reads the whole cache (which separate
    /// per-step evaluations model naturally) *and* pays the append write
    /// of the step's new K/V slice. The evaluator charges that append as
    /// `appended × batch` extra writes of the weight tensor at its
    /// backing store.
    ///
    /// `appended` counts elements across all channel groups (for an
    /// `H`-head attention cache layer, one token's slice is
    /// `H · d_head = d_model` elements).
    ///
    /// # Panics
    ///
    /// Panics if `appended` is zero.
    #[must_use]
    pub fn with_kv_cache_residency(mut self, appended: usize) -> Layer {
        assert!(appended > 0, "appended elements must be nonzero");
        self = self.with_per_sample_stationary();
        self.kv_append = appended;
        self
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator class.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Per-group loop bounds.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// `(vertical, horizontal)` stride.
    pub fn stride(&self) -> (usize, usize) {
        self.stride
    }

    /// `(vertical, horizontal)` dilation.
    pub fn dilation(&self) -> (usize, usize) {
        self.dilation
    }

    /// Number of independent nest repetitions: channel groups times the
    /// batch replicas of a per-sample-stationary layer.
    pub fn groups(&self) -> usize {
        self.groups * self.batch_replicas
    }

    /// Channel groups alone (no batch replicas folded in).
    pub fn channel_groups(&self) -> usize {
        self.groups
    }

    /// Whole-nest batch replicas of a per-sample-stationary layer (1 for
    /// ordinary layers, whose batch lives in `N`).
    pub fn batch_replicas(&self) -> usize {
        self.batch_replicas
    }

    /// `true` if the stationary operand is a per-sample activation (see
    /// [`Layer::with_per_sample_stationary`]).
    pub fn per_sample_stationary(&self) -> bool {
        self.per_sample_stationary
    }

    /// `true` if the stationary operand is a growing KV cache (see
    /// [`Layer::with_kv_cache_residency`]).
    pub fn kv_cache_resident(&self) -> bool {
        self.kv_append > 0
    }

    /// Stationary-operand elements appended to the KV cache by one
    /// evaluated step, across all batch samples (0 for ordinary layers).
    pub fn kv_append_elements(&self) -> u64 {
        self.kv_append as u64 * self.batch_replicas as u64
    }

    /// Per-sample KV-cache append count, as given to
    /// [`Layer::with_kv_cache_residency`].
    pub fn kv_append_per_sample(&self) -> usize {
        self.kv_append
    }

    /// Marks this step as privatising `copied` shared cache elements per
    /// batch sample before its append lands (builder style): the
    /// copy-on-write of a shared prefix's trailing partial page. The
    /// evaluator charges `copied × batch` extra reads *and* writes of the
    /// weight tensor at its backing store, on top of the append writes.
    ///
    /// # Panics
    ///
    /// Panics if `copied` is zero or the layer is not KV-cache resident
    /// (call [`Layer::with_kv_cache_residency`] first — a copy without an
    /// append has no modeled trigger).
    #[must_use]
    pub fn with_kv_cow(mut self, copied: usize) -> Layer {
        assert!(copied > 0, "copied elements must be nonzero");
        assert!(
            self.kv_append > 0,
            "copy-on-write applies only to KV-cache-resident layers"
        );
        self.kv_cow = copied;
        self
    }

    /// Shared cache elements copied copy-on-write by this step, across
    /// all batch samples (0 for ordinary layers and plain appends).
    pub fn kv_cow_elements(&self) -> u64 {
        self.kv_cow as u64 * self.batch_replicas as u64
    }

    /// Per-sample copy-on-write count, as given to [`Layer::with_kv_cow`].
    pub fn kv_cow_per_sample(&self) -> usize {
        self.kv_cow
    }

    /// `true` if both strides are 1 (many photonic dataflows require this
    /// for their sliding-window reuse to function).
    pub fn is_unit_stride(&self) -> bool {
        self.stride == (1, 1)
    }

    /// Total multiply-accumulates for the full layer (all groups and
    /// batch replicas).
    pub fn macs(&self) -> u64 {
        self.shape.volume() * self.groups() as u64
    }

    /// Input feature-map height consumed by `p_extent` output rows with
    /// `r_extent` filter rows (the sliding-window footprint rule).
    pub fn input_rows(&self, p_extent: usize, r_extent: usize) -> usize {
        (p_extent - 1) * self.stride.0 + (r_extent - 1) * self.dilation.0 + 1
    }

    /// Input feature-map width consumed by `q_extent` output columns with
    /// `s_extent` filter columns.
    pub fn input_cols(&self, q_extent: usize, s_extent: usize) -> usize {
        (q_extent - 1) * self.stride.1 + (s_extent - 1) * self.dilation.1 + 1
    }

    /// Number of elements of `tensor` touched by the full layer (all groups).
    pub fn tensor_elements(&self, tensor: TensorKind) -> u64 {
        let s = &self.shape;
        let per_group: u64 = match tensor {
            TensorKind::Weight => (s[Dim::M] * s[Dim::C] * s[Dim::R] * s[Dim::S]) as u64,
            TensorKind::Output => (s[Dim::N] * s[Dim::M] * s[Dim::P] * s[Dim::Q]) as u64,
            TensorKind::Input => {
                let h = self.input_rows(s[Dim::P], s[Dim::R]);
                let w = self.input_cols(s[Dim::Q], s[Dim::S]);
                (s[Dim::N] * s[Dim::C] * h * w) as u64
            }
        };
        per_group * self.groups() as u64
    }

    /// Arithmetic intensity: MACs per element moved if every tensor were
    /// touched exactly once (an upper bound on achievable reuse).
    pub fn ideal_arithmetic_intensity(&self) -> f64 {
        let moved: u64 = TensorKind::ALL
            .iter()
            .map(|&t| self.tensor_elements(t))
            .sum();
        self.macs() as f64 / moved as f64
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) {} stride={:?} groups={}",
            self.name,
            self.kind,
            self.shape,
            self.stride,
            self.groups()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs() {
        let l = Layer::conv2d("c", 1, 64, 3, 224, 224, 3, 3);
        assert_eq!(l.macs(), 64 * 3 * 224 * 224 * 9);
    }

    #[test]
    fn fc_is_degenerate_conv() {
        let l = Layer::fully_connected("fc", 1, 1000, 4096);
        assert_eq!(l.shape()[Dim::P], 1);
        assert_eq!(l.shape()[Dim::R], 1);
        assert_eq!(l.macs(), 1000 * 4096);
        assert_eq!(l.kind(), LayerKind::FullyConnected);
    }

    #[test]
    fn grouped_conv_divides_channels() {
        let l = Layer::conv2d("g", 1, 256, 96, 27, 27, 5, 5).with_groups(2);
        assert_eq!(l.shape()[Dim::M], 128);
        assert_eq!(l.shape()[Dim::C], 48);
        assert_eq!(l.groups(), 2);
        // MACs include both groups.
        assert_eq!(l.macs(), 2 * 128 * 48 * 27 * 27 * 25);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_grouping_panics() {
        let _ = Layer::conv2d("g", 1, 10, 9, 4, 4, 1, 1).with_groups(4);
    }

    #[test]
    fn try_new_rejects_zero() {
        let err = Layer::try_new(
            "bad",
            LayerKind::Conv2d,
            Shape::new(1, 0, 1, 1, 1, 1, 1),
            (1, 1),
            (1, 1),
            1,
        )
        .unwrap_err();
        assert_eq!(err, LayerError::ZeroParameter("shape bound"));
    }

    #[test]
    fn input_footprint_accounts_for_stride() {
        // AlexNet conv1: 11x11 stride 4 on 227x227 -> 55x55 outputs.
        let l = Layer::conv2d("conv1", 1, 96, 3, 55, 55, 11, 11).with_stride(4, 4);
        assert_eq!(l.input_rows(55, 11), 227);
        assert_eq!(l.input_cols(55, 11), 227);
        assert_eq!(l.tensor_elements(TensorKind::Input), 3 * 227 * 227);
    }

    #[test]
    fn input_footprint_accounts_for_dilation() {
        let l = Layer::conv2d("d", 1, 1, 1, 8, 8, 3, 3).with_dilation(2, 2);
        assert_eq!(l.input_rows(8, 3), 7 + 4 + 1);
    }

    #[test]
    fn tensor_elements_output_and_weight() {
        let l = Layer::conv2d("c", 2, 8, 4, 5, 6, 3, 3);
        assert_eq!(l.tensor_elements(TensorKind::Output), 2 * 8 * 5 * 6);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 8 * 4 * 9);
    }

    #[test]
    fn depthwise_builds_groups() {
        let l = Layer::depthwise_conv2d("dw", 1, 32, 16, 16, 3, 3);
        assert_eq!(l.groups(), 32);
        assert_eq!(l.macs(), 32 * 16 * 16 * 9);
    }

    #[test]
    fn with_batch_changes_n_only() {
        let l = Layer::conv2d("c", 1, 8, 8, 8, 8, 3, 3).with_batch(16);
        assert_eq!(l.shape()[Dim::N], 16);
        assert_eq!(l.macs(), 16 * 8 * 8 * 8 * 8 * 9);
    }

    #[test]
    fn matmul_folds_onto_the_conv_nest() {
        let l = Layer::matmul("mm", 2, 64, 32, 128);
        assert_eq!(l.kind(), LayerKind::Matmul);
        assert_eq!(l.shape()[Dim::M], 64);
        assert_eq!(l.shape()[Dim::C], 32);
        assert_eq!(l.shape()[Dim::P], 128);
        assert_eq!(l.shape()[Dim::Q], 1);
        assert_eq!(l.macs(), 2 * 64 * 32 * 128);
        // Operand footprints are exact (no sliding-window halo at R=S=1).
        assert_eq!(l.tensor_elements(TensorKind::Weight), 64 * 32);
        assert_eq!(l.tensor_elements(TensorKind::Input), 2 * 32 * 128);
        assert_eq!(l.tensor_elements(TensorKind::Output), 2 * 64 * 128);
    }

    #[test]
    fn grouped_matmul_models_per_head_attention() {
        // 4 heads of probs[16,16] x V[16,8]: per-head M=8, C=16, P=16.
        let l = Layer::matmul("attend", 1, 4 * 8, 4 * 16, 16).with_groups(4);
        assert_eq!(l.groups(), 4);
        assert_eq!(l.shape()[Dim::M], 8);
        assert_eq!(l.shape()[Dim::C], 16);
        assert_eq!(l.macs(), 4 * 8 * 16 * 16);
        // Heads do not share the stationary operand.
        assert_eq!(l.tensor_elements(TensorKind::Weight), 4 * 8 * 16);
    }

    #[test]
    fn per_sample_stationary_batches_via_replicas() {
        let l = Layer::matmul("attn", 1, 4 * 8, 4 * 16, 16)
            .with_groups(4)
            .with_per_sample_stationary()
            .with_batch(8);
        // Batch lives in replicas, not N.
        assert_eq!(l.shape()[Dim::N], 1);
        assert_eq!(l.groups(), 4 * 8);
        assert_eq!(l.macs(), 8 * 4 * 8 * 16 * 16);
        // The stationary operand is replicated per sample, not shared.
        assert_eq!(l.tensor_elements(TensorKind::Weight), 8 * 4 * 8 * 16);
        // `with_batch` stays absolute: re-batching replaces the count.
        let rebatched = l.with_batch(2);
        assert_eq!(rebatched.groups(), 4 * 2);
    }

    #[test]
    fn per_sample_stationary_absorbs_existing_batch() {
        let l = Layer::matmul("attn", 8, 4, 4, 4).with_per_sample_stationary();
        assert_eq!(l.shape()[Dim::N], 1);
        assert_eq!(l.groups(), 8);
        assert_eq!(l.macs(), 8 * 4 * 4 * 4);
        assert!(l.per_sample_stationary());
    }

    #[test]
    fn ordinary_layers_share_weights_across_batch() {
        let l = Layer::matmul("proj", 1, 8, 8, 4).with_batch(8);
        assert_eq!(l.shape()[Dim::N], 8);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 8 * 8);
        assert!(!l.per_sample_stationary());
    }

    #[test]
    fn gemv_is_matmul_with_one_row() {
        let g = Layer::gemv("g", 2, 64, 32);
        let m = Layer::matmul("m", 2, 64, 32, 1);
        assert_eq!(g.kind(), LayerKind::Matmul);
        assert_eq!(g.shape(), m.shape());
        assert_eq!(g.shape()[Dim::P], 1);
        assert_eq!(g.macs(), 2 * 64 * 32);
    }

    #[test]
    fn kv_residency_implies_per_sample_stationary() {
        let l = Layer::matmul("kv", 1, 4 * 8, 4 * 16, 1)
            .with_groups(4)
            .with_kv_cache_residency(32);
        assert!(l.kv_cache_resident());
        assert!(l.per_sample_stationary());
        assert_eq!(l.kv_append_per_sample(), 32);
        assert_eq!(l.kv_append_elements(), 32);
        // Batching replicates the cache, so the append scales with it.
        let batched = l.with_batch(8);
        assert_eq!(batched.kv_append_elements(), 8 * 32);
        assert_eq!(batched.groups(), 8 * 4);
    }

    #[test]
    fn ordinary_layers_have_no_kv_append() {
        let l = Layer::matmul("proj", 1, 8, 8, 4).with_batch(8);
        assert!(!l.kv_cache_resident());
        assert_eq!(l.kv_append_elements(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_kv_append_panics() {
        let _ = Layer::matmul("kv", 1, 8, 8, 1).with_kv_cache_residency(0);
    }

    #[test]
    fn arithmetic_intensity_positive() {
        let l = Layer::conv2d("c", 1, 64, 64, 56, 56, 3, 3);
        assert!(l.ideal_arithmetic_intensity() > 1.0);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let l = Layer::fully_connected("fc8", 1, 1000, 4096);
        let shown = format!("{l}");
        assert!(shown.contains("fc8") && shown.contains("(fc)"));
    }
}
