//! Layer shapes: convolutions, fully-connected layers and friends.

use crate::{Dim, Shape, TensorKind};
use std::fmt;

/// The operator class of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard 2-D convolution (possibly grouped / strided / dilated).
    Conv2d,
    /// Fully-connected (dense) layer: a conv with `P=Q=R=S=1`.
    FullyConnected,
    /// Depthwise convolution: `groups == input channels`, one filter per
    /// channel.
    DepthwiseConv2d,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::FullyConnected => "fc",
            LayerKind::DepthwiseConv2d => "dwconv2d",
        };
        write!(f, "{s}")
    }
}

/// Errors produced when constructing or validating a [`Layer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerError {
    /// A dimension bound, stride, dilation or group count was zero.
    ZeroParameter(&'static str),
    /// Channel counts are not divisible by the group count.
    BadGrouping {
        /// Output channels of the full layer.
        m: usize,
        /// Input channels of the full layer.
        c: usize,
        /// Requested group count.
        groups: usize,
    },
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::ZeroParameter(what) => {
                write!(f, "layer parameter `{what}` must be nonzero")
            }
            LayerError::BadGrouping { m, c, groups } => write!(
                f,
                "channels (M={m}, C={c}) are not divisible by groups={groups}"
            ),
        }
    }
}

impl std::error::Error for LayerError {}

/// One DNN layer, described as a (possibly grouped) 7-D loop nest.
///
/// The stored [`Shape`] is *per group*: `M` and `C` are the per-group channel
/// counts and the full layer repeats the nest [`Layer::groups`] times. This
/// matches how grouped layers execute: groups share no data, so a mapper
/// schedules one group at a time.
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, Layer};
///
/// // AlexNet conv2: 5x5, 256 output channels in 2 groups of 48->128.
/// let conv2 = Layer::conv2d("conv2", 1, 256, 96, 27, 27, 5, 5).with_groups(2);
/// assert_eq!(conv2.shape()[Dim::M], 128);
/// assert_eq!(conv2.shape()[Dim::C], 48);
/// assert_eq!(conv2.macs(), 2 * 128 * 48 * 27 * 27 * 25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    shape: Shape,
    stride: (usize, usize),
    dilation: (usize, usize),
    groups: usize,
}

impl Layer {
    /// Builds a standard convolution.
    ///
    /// `m` and `c` are the *full-layer* channel counts; use
    /// [`Layer::with_groups`] afterwards for grouped convolutions.
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero (use [`Layer::try_new`] for fallible
    /// construction).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: impl Into<String>,
        n: usize,
        m: usize,
        c: usize,
        p: usize,
        q: usize,
        r: usize,
        s: usize,
    ) -> Layer {
        Layer::try_new(
            name,
            LayerKind::Conv2d,
            Shape::new(n, m, c, p, q, r, s),
            (1, 1),
            (1, 1),
            1,
        )
        .expect("conv2d bounds must be nonzero")
    }

    /// Builds a fully-connected layer with `m` outputs and `c` inputs.
    pub fn fully_connected(name: impl Into<String>, n: usize, m: usize, c: usize) -> Layer {
        Layer::try_new(
            name,
            LayerKind::FullyConnected,
            Shape::new(n, m, c, 1, 1, 1, 1),
            (1, 1),
            (1, 1),
            1,
        )
        .expect("fc bounds must be nonzero")
    }

    /// Builds a depthwise convolution over `c` channels.
    #[allow(clippy::too_many_arguments)]
    pub fn depthwise_conv2d(
        name: impl Into<String>,
        n: usize,
        c: usize,
        p: usize,
        q: usize,
        r: usize,
        s: usize,
    ) -> Layer {
        // Depthwise = `c` groups of a 1->1 channel convolution; the full
        // layer has M = C = c channels, divided into c groups.
        Layer::try_new(
            name,
            LayerKind::DepthwiseConv2d,
            Shape::new(n, c, c, p, q, r, s),
            (1, 1),
            (1, 1),
            c,
        )
        .expect("depthwise bounds must be nonzero")
    }

    /// Fallible constructor with every knob exposed.
    ///
    /// `shape` carries the *full-layer* `M`/`C`; they are divided by `groups`.
    ///
    /// # Errors
    ///
    /// Returns [`LayerError::ZeroParameter`] if any bound / stride / dilation
    /// / group count is zero and [`LayerError::BadGrouping`] if the channel
    /// counts are not divisible by `groups`.
    pub fn try_new(
        name: impl Into<String>,
        kind: LayerKind,
        shape: Shape,
        stride: (usize, usize),
        dilation: (usize, usize),
        groups: usize,
    ) -> Result<Layer, LayerError> {
        if !shape.is_valid() {
            return Err(LayerError::ZeroParameter("shape bound"));
        }
        if stride.0 == 0 || stride.1 == 0 {
            return Err(LayerError::ZeroParameter("stride"));
        }
        if dilation.0 == 0 || dilation.1 == 0 {
            return Err(LayerError::ZeroParameter("dilation"));
        }
        if groups == 0 {
            return Err(LayerError::ZeroParameter("groups"));
        }
        let (m, c) = (shape[Dim::M], shape[Dim::C]);
        if m % groups != 0 || c % groups != 0 {
            return Err(LayerError::BadGrouping { m, c, groups });
        }
        let per_group = shape
            .with_bound(Dim::M, m / groups)
            .with_bound(Dim::C, c / groups);
        Ok(Layer {
            name: name.into(),
            kind,
            shape: per_group,
            stride,
            dilation,
            groups,
        })
    }

    /// Returns this layer with the given stride (builder style).
    #[must_use]
    pub fn with_stride(mut self, vertical: usize, horizontal: usize) -> Layer {
        assert!(vertical > 0 && horizontal > 0, "stride must be nonzero");
        self.stride = (vertical, horizontal);
        self
    }

    /// Returns this layer with the given dilation (builder style).
    #[must_use]
    pub fn with_dilation(mut self, vertical: usize, horizontal: usize) -> Layer {
        assert!(vertical > 0 && horizontal > 0, "dilation must be nonzero");
        self.dilation = (vertical, horizontal);
        self
    }

    /// Splits the layer's channels into `groups` independent groups
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the current per-group channel counts are not divisible by
    /// `groups`.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Layer {
        assert!(groups > 0, "groups must be nonzero");
        let (m, c) = (self.shape[Dim::M], self.shape[Dim::C]);
        assert!(
            m % groups == 0 && c % groups == 0,
            "channels (M={m}, C={c}) not divisible by groups={groups}"
        );
        self.shape = self
            .shape
            .with_bound(Dim::M, m / groups)
            .with_bound(Dim::C, c / groups);
        self.groups *= groups;
        self
    }

    /// Returns this layer with a new batch size (builder style).
    #[must_use]
    pub fn with_batch(mut self, n: usize) -> Layer {
        assert!(n > 0, "batch must be nonzero");
        self.shape = self.shape.with_bound(Dim::N, n);
        self
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator class.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Per-group loop bounds.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// `(vertical, horizontal)` stride.
    pub fn stride(&self) -> (usize, usize) {
        self.stride
    }

    /// `(vertical, horizontal)` dilation.
    pub fn dilation(&self) -> (usize, usize) {
        self.dilation
    }

    /// Number of independent channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// `true` if both strides are 1 (many photonic dataflows require this
    /// for their sliding-window reuse to function).
    pub fn is_unit_stride(&self) -> bool {
        self.stride == (1, 1)
    }

    /// Total multiply-accumulates for the full layer (all groups).
    pub fn macs(&self) -> u64 {
        self.shape.volume() * self.groups as u64
    }

    /// Input feature-map height consumed by `p_extent` output rows with
    /// `r_extent` filter rows (the sliding-window footprint rule).
    pub fn input_rows(&self, p_extent: usize, r_extent: usize) -> usize {
        (p_extent - 1) * self.stride.0 + (r_extent - 1) * self.dilation.0 + 1
    }

    /// Input feature-map width consumed by `q_extent` output columns with
    /// `s_extent` filter columns.
    pub fn input_cols(&self, q_extent: usize, s_extent: usize) -> usize {
        (q_extent - 1) * self.stride.1 + (s_extent - 1) * self.dilation.1 + 1
    }

    /// Number of elements of `tensor` touched by the full layer (all groups).
    pub fn tensor_elements(&self, tensor: TensorKind) -> u64 {
        let s = &self.shape;
        let per_group: u64 = match tensor {
            TensorKind::Weight => (s[Dim::M] * s[Dim::C] * s[Dim::R] * s[Dim::S]) as u64,
            TensorKind::Output => (s[Dim::N] * s[Dim::M] * s[Dim::P] * s[Dim::Q]) as u64,
            TensorKind::Input => {
                let h = self.input_rows(s[Dim::P], s[Dim::R]);
                let w = self.input_cols(s[Dim::Q], s[Dim::S]);
                (s[Dim::N] * s[Dim::C] * h * w) as u64
            }
        };
        per_group * self.groups as u64
    }

    /// Arithmetic intensity: MACs per element moved if every tensor were
    /// touched exactly once (an upper bound on achievable reuse).
    pub fn ideal_arithmetic_intensity(&self) -> f64 {
        let moved: u64 = TensorKind::ALL
            .iter()
            .map(|&t| self.tensor_elements(t))
            .sum();
        self.macs() as f64 / moved as f64
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) {} stride={:?} groups={}",
            self.name, self.kind, self.shape, self.stride, self.groups
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs() {
        let l = Layer::conv2d("c", 1, 64, 3, 224, 224, 3, 3);
        assert_eq!(l.macs(), 64 * 3 * 224 * 224 * 9);
    }

    #[test]
    fn fc_is_degenerate_conv() {
        let l = Layer::fully_connected("fc", 1, 1000, 4096);
        assert_eq!(l.shape()[Dim::P], 1);
        assert_eq!(l.shape()[Dim::R], 1);
        assert_eq!(l.macs(), 1000 * 4096);
        assert_eq!(l.kind(), LayerKind::FullyConnected);
    }

    #[test]
    fn grouped_conv_divides_channels() {
        let l = Layer::conv2d("g", 1, 256, 96, 27, 27, 5, 5).with_groups(2);
        assert_eq!(l.shape()[Dim::M], 128);
        assert_eq!(l.shape()[Dim::C], 48);
        assert_eq!(l.groups(), 2);
        // MACs include both groups.
        assert_eq!(l.macs(), 2 * 128 * 48 * 27 * 27 * 25);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_grouping_panics() {
        let _ = Layer::conv2d("g", 1, 10, 9, 4, 4, 1, 1).with_groups(4);
    }

    #[test]
    fn try_new_rejects_zero() {
        let err = Layer::try_new(
            "bad",
            LayerKind::Conv2d,
            Shape::new(1, 0, 1, 1, 1, 1, 1),
            (1, 1),
            (1, 1),
            1,
        )
        .unwrap_err();
        assert_eq!(err, LayerError::ZeroParameter("shape bound"));
    }

    #[test]
    fn input_footprint_accounts_for_stride() {
        // AlexNet conv1: 11x11 stride 4 on 227x227 -> 55x55 outputs.
        let l = Layer::conv2d("conv1", 1, 96, 3, 55, 55, 11, 11).with_stride(4, 4);
        assert_eq!(l.input_rows(55, 11), 227);
        assert_eq!(l.input_cols(55, 11), 227);
        assert_eq!(l.tensor_elements(TensorKind::Input), 3 * 227 * 227);
    }

    #[test]
    fn input_footprint_accounts_for_dilation() {
        let l = Layer::conv2d("d", 1, 1, 1, 8, 8, 3, 3).with_dilation(2, 2);
        assert_eq!(l.input_rows(8, 3), 7 + 4 + 1);
    }

    #[test]
    fn tensor_elements_output_and_weight() {
        let l = Layer::conv2d("c", 2, 8, 4, 5, 6, 3, 3);
        assert_eq!(l.tensor_elements(TensorKind::Output), 2 * 8 * 5 * 6);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 8 * 4 * 9);
    }

    #[test]
    fn depthwise_builds_groups() {
        let l = Layer::depthwise_conv2d("dw", 1, 32, 16, 16, 3, 3);
        assert_eq!(l.groups(), 32);
        assert_eq!(l.macs(), 32 * 16 * 16 * 9);
    }

    #[test]
    fn with_batch_changes_n_only() {
        let l = Layer::conv2d("c", 1, 8, 8, 8, 8, 3, 3).with_batch(16);
        assert_eq!(l.shape()[Dim::N], 16);
        assert_eq!(l.macs(), 16 * 8 * 8 * 8 * 8 * 9);
    }

    #[test]
    fn arithmetic_intensity_positive() {
        let l = Layer::conv2d("c", 1, 64, 64, 56, 56, 3, 3);
        assert!(l.ideal_arithmetic_intensity() > 1.0);
    }

    #[test]
    fn display_contains_name_and_kind() {
        let l = Layer::fully_connected("fc8", 1, 1000, 4096);
        let shown = format!("{l}");
        assert!(shown.contains("fc8") && shown.contains("(fc)"));
    }
}
