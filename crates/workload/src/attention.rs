//! Multi-head attention lowered onto [`Matmul`](crate::LayerKind::Matmul)
//! layers.
//!
//! Architecture-level models see a transformer block as a sequence of
//! batched GEMMs; softmax, layer norm and residual adds carry no MACs and
//! are omitted, matching how the CNN builders drop pooling and
//! normalization. The lowering of one multi-head attention (MHA) block
//! with sequence length `S`, model width `D` and `H` heads of width
//! `d = D/H` is:
//!
//! | layer | GEMM | stationary ("weight") operand |
//! |---|---|---|
//! | `query`/`key`/`value` | `[S,D] x [D,D]` | projection weights |
//! | `logits` | per head `[S,d] x [d,S]` | K activations |
//! | `attend` | per head `[S,S] x [S,d]` | V activations |
//! | `out` | `[S,D] x [D,D]` | projection weights |
//!
//! The per-head matmuls stack heads as [`Layer::with_groups`] groups:
//! heads share no data, exactly like grouped convolutions. Note that for
//! `logits`/`attend` the stationary operand is itself an activation
//! (K resp. V), so "weight" traffic for those layers models K/V reuse —
//! the distinction that makes attention memory behavior differ from
//! convolutions and motivates evaluating transformers at all.

use crate::{DecodePhase, Layer, Network};

/// Shape of one multi-head attention block, plus lowering helpers.
///
/// # Examples
///
/// ```
/// use lumen_workload::Attention;
///
/// let mha = Attention::new("enc0.attn", 128, 768, 12);
/// let layers = mha.lower();
/// assert_eq!(layers.len(), 6);
/// let total: u64 = layers.iter().map(|l| l.macs()).sum();
/// assert_eq!(total, mha.macs());
/// ```
#[derive(Debug, Clone)]
pub struct Attention {
    prefix: String,
    seq: usize,
    d_model: usize,
    heads: usize,
    batch: usize,
}

impl Attention {
    /// Builds an MHA block description.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `d_model` is not divisible by
    /// `heads`.
    pub fn new(prefix: impl Into<String>, seq: usize, d_model: usize, heads: usize) -> Attention {
        assert!(
            seq > 0 && d_model > 0 && heads > 0,
            "attention dimensions must be nonzero"
        );
        assert!(
            d_model.is_multiple_of(heads),
            "d_model={d_model} not divisible by heads={heads}"
        );
        Attention {
            prefix: prefix.into(),
            seq,
            d_model,
            heads,
            batch: 1,
        }
    }

    /// Sets the batch size (builder style).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Attention {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// Per-head width `d_model / heads`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Lowers the block into its six matmul layers, execution order:
    /// `query`, `key`, `value`, `logits`, `attend`, `out`.
    ///
    /// The projection layers carry the batch in `N` (their weights are
    /// batch-shared); `logits`/`attend` are marked per-sample-stationary,
    /// so batching replicates their K/V operands instead of sharing them.
    pub fn lower(&self) -> Vec<Layer> {
        let (s, d, h, n) = (self.seq, self.d_model, self.heads, self.batch);
        let name = |suffix: &str| format!("{}.{suffix}", self.prefix);
        // Per head (and per sample): the stationary operand is K / V.
        let per_head = |name: String, m: usize, c: usize| {
            Layer::matmul(name, 1, m, c, s)
                .with_groups(h)
                .with_per_sample_stationary()
                .with_batch(n)
        };
        vec![
            Layer::matmul(name("query"), n, d, d, s),
            Layer::matmul(name("key"), n, d, d, s),
            Layer::matmul(name("value"), n, d, d, s),
            // Per head: Q[s, d/h] x K^T[d/h, s] -> logits[s, s].
            per_head(name("logits"), h * s, d),
            // Per head: probs[s, s] x V[s, d/h] -> context[s, d/h].
            per_head(name("attend"), d, h * s),
            Layer::matmul(name("out"), n, d, d, s),
        ]
    }

    /// Closed-form MAC count of the block:
    /// `batch · (4·S·D² + 2·S²·D)`.
    pub fn macs(&self) -> u64 {
        let (s, d, n) = (self.seq as u64, self.d_model as u64, self.batch as u64);
        n * (4 * s * d * d + 2 * s * s * d)
    }

    /// The autoregressive decode step of this block with `kv_len` tokens
    /// already cached: same prefix, width, heads and batch, but `seq = 1`
    /// by definition — the prefill sequence length plays no role in
    /// decode, where each step processes exactly one new token against
    /// the cache (see [`DecodePhase`]). The batch set via
    /// [`Attention::with_batch`] carries over and replicates the cache
    /// per sample.
    pub fn decode_step(&self, kv_len: usize) -> DecodePhase {
        DecodePhase::new(self.prefix.clone(), self.d_model, self.heads)
            .with_kv_len(kv_len)
            .with_batch(self.batch)
    }
}

/// Appends one pre-norm transformer encoder block (MHA + 2-layer MLP with
/// hidden width `d_ff`) to `net`.
pub fn push_encoder_block(
    net: Network,
    prefix: &str,
    seq: usize,
    d_model: usize,
    heads: usize,
    d_ff: usize,
) -> Network {
    let mut net = net;
    for layer in Attention::new(format!("{prefix}.attn"), seq, d_model, heads).lower() {
        net = net.push(layer);
    }
    net.push(Layer::matmul(
        format!("{prefix}.mlp.fc1"),
        1,
        d_ff,
        d_model,
        seq,
    ))
    .push(Layer::matmul(
        format!("{prefix}.mlp.fc2"),
        1,
        d_model,
        d_ff,
        seq,
    ))
}

/// Closed-form MAC count of [`push_encoder_block`]:
/// `4·S·D² + 2·S²·D + 2·S·D·D_ff`.
pub fn encoder_block_macs(seq: usize, d_model: usize, d_ff: usize) -> u64 {
    let (s, d, f) = (seq as u64, d_model as u64, d_ff as u64);
    4 * s * d * d + 2 * s * s * d + 2 * s * d * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, LayerKind, TensorKind};

    #[test]
    fn lowering_macs_match_closed_form() {
        for (seq, d, h) in [(128, 768, 12), (197, 768, 12), (64, 256, 4)] {
            let mha = Attention::new("a", seq, d, h);
            let sum: u64 = mha.lower().iter().map(Layer::macs).sum();
            assert_eq!(sum, mha.macs(), "seq={seq} d={d} h={h}");
        }
    }

    #[test]
    fn logits_layer_is_per_head_grouped() {
        let mha = Attention::new("a", 128, 768, 12);
        let layers = mha.lower();
        let logits = layers.iter().find(|l| l.name() == "a.logits").unwrap();
        assert_eq!(logits.kind(), LayerKind::Matmul);
        assert_eq!(logits.groups(), 12);
        assert_eq!(logits.shape()[Dim::M], 128); // per-head seq
        assert_eq!(logits.shape()[Dim::C], 64); // per-head width

        // Stationary operand = all of K: seq x d_model elements.
        assert_eq!(
            logits.tensor_elements(TensorKind::Weight),
            128 * 768,
            "K activations counted once"
        );
    }

    #[test]
    fn attend_layer_reduces_over_sequence() {
        let layers = Attention::new("a", 128, 768, 12).lower();
        let attend = layers.iter().find(|l| l.name() == "a.attend").unwrap();
        assert_eq!(attend.groups(), 12);
        assert_eq!(attend.shape()[Dim::M], 64);
        assert_eq!(attend.shape()[Dim::C], 128);
        assert_eq!(attend.macs(), 12 * 64 * 128 * 128);
    }

    #[test]
    fn batch_scales_all_layers() {
        let base = Attention::new("a", 64, 256, 4);
        let batched = base.clone().with_batch(8);
        assert_eq!(batched.macs(), 8 * base.macs());
        let sum: u64 = batched.lower().iter().map(Layer::macs).sum();
        assert_eq!(sum, batched.macs());
    }

    #[test]
    fn batching_replicates_kv_but_shares_projection_weights() {
        let layers = Attention::new("a", 64, 256, 4).with_batch(8).lower();
        let by_name = |n: &str| layers.iter().find(|l| l.name() == n).unwrap();
        // K is per-sample: 8x the batch-1 footprint, whether reached via
        // Attention::with_batch or re-batched through Layer::with_batch.
        let logits = by_name("a.logits");
        assert_eq!(logits.tensor_elements(TensorKind::Weight), 8 * 64 * 256);
        let rebatched = logits.clone().with_batch(16);
        assert_eq!(rebatched.tensor_elements(TensorKind::Weight), 16 * 64 * 256);
        // Projection weights are batch-shared.
        let query = by_name("a.query");
        assert_eq!(query.tensor_elements(TensorKind::Weight), 256 * 256);
        assert_eq!(query.shape()[Dim::N], 8);
    }

    #[test]
    fn encoder_block_macs_match() {
        let net = push_encoder_block(Network::new("t"), "b0", 128, 768, 12, 3072);
        assert_eq!(net.layers().len(), 8);
        assert_eq!(net.total_macs(), encoder_block_macs(128, 768, 3072));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panic() {
        let _ = Attention::new("a", 16, 100, 7);
    }

    #[test]
    fn decode_step_carries_batch_and_ignores_seq() {
        // The prefill seq (here 64) does not leak into the decode step:
        // decode is seq-1 by definition, and only the batch carries over.
        let mha = Attention::new("a", 64, 256, 4).with_batch(8);
        let step = mha.decode_step(31);
        assert_eq!(step.attend_len(), 32);
        assert_eq!(step.macs(), 8 * (4 * 256 * 256 + 2 * 32 * 256));
        let layers = step.lower();
        let logits = layers.iter().find(|l| l.name() == "a.logits").unwrap();
        assert_eq!(logits.batch_replicas(), 8, "cache replicated per sample");
        assert_eq!(logits.shape()[Dim::P], 1);
    }
}
