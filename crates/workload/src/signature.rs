//! Content-addressed layer identity for evaluation caching.
//!
//! Timeloop-family evaluation is a pure function of a layer's *shape*,
//! never its *name*: two layers with identical loop bounds, strides,
//! grouping and batching semantics map and cost identically on any
//! architecture. [`LayerSignature`] captures exactly that equivalence
//! class — everything that influences mapping and energy accounting,
//! nothing else — so evaluation pipelines can deduplicate work across the
//! 12 identical encoder blocks of a transformer or the repeated residual
//! stages of a CNN.
//!
//! # Examples
//!
//! ```
//! use lumen_workload::Layer;
//!
//! let a = Layer::matmul("encoder.0.query", 1, 768, 768, 128);
//! let b = Layer::matmul("encoder.11.key", 1, 768, 768, 128);
//! assert_eq!(a.signature(), b.signature()); // names are irrelevant
//!
//! let c = Layer::matmul("encoder.0.logits", 1, 768, 768, 128)
//!     .with_per_sample_stationary();
//! assert_ne!(a.signature(), c.signature()); // batching semantics are not
//! ```

use crate::{Dim, Layer, LayerKind, Shape};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a domain-separation tag followed by raw bytes.
///
/// The workspace's one stable content hash: unlike `DefaultHasher`,
/// whose keys the standard library does not pin, this is identical
/// across runs, platforms and Rust versions, so digests may appear in
/// logs, JSON artifacts and cache keys that outlive a process.
pub fn fnv1a_bytes(tag: &[u8], bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in tag.iter().chain(bytes) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a over a tag followed by a word sequence (each word eaten
/// little-endian). See [`fnv1a_bytes`] for the stability contract.
pub fn fnv1a(tag: &[u8], words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for &b in tag {
        eat(b);
    }
    for w in words {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// The canonical identity of a [`Layer`] for mapping and evaluation.
///
/// Two layers with equal signatures produce bit-identical mappings,
/// analyses and energy breakdowns on every architecture and under every
/// deterministic mapping strategy. The signature covers the per-group
/// loop bounds, operator class, stride, dilation, group count, batch
/// replicas, the per-sample-stationary flag, the KV-cache append count
/// and the copy-on-write count; it deliberately excludes the layer's
/// name.
///
/// The struct itself is the collision-free cache key (derived `Eq` /
/// `Hash` over all fields); [`LayerSignature::digest`] additionally
/// provides a stable 64-bit FNV-1a content hash that does not depend on
/// the process, platform or standard-library hasher — suitable for
/// logging, JSON artifacts and cross-run comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerSignature {
    kind: LayerKind,
    shape: Shape,
    stride: (usize, usize),
    dilation: (usize, usize),
    groups: usize,
    batch_replicas: usize,
    per_sample_stationary: bool,
    kv_append: usize,
    kv_cow: usize,
}

impl LayerSignature {
    /// Computes the signature of `layer`.
    pub fn of(layer: &Layer) -> LayerSignature {
        LayerSignature {
            kind: layer.kind(),
            shape: layer.shape(),
            stride: layer.stride(),
            dilation: layer.dilation(),
            groups: layer.channel_groups(),
            batch_replicas: layer.batch_replicas(),
            per_sample_stationary: layer.per_sample_stationary(),
            kv_append: layer.kv_append_per_sample(),
            kv_cow: layer.kv_cow_per_sample(),
        }
    }

    /// A stable 64-bit content hash of the signature ([`fnv1a`] over the
    /// canonical field encoding). Identical across runs, platforms and
    /// Rust versions; independent of the layer's name.
    pub fn digest(&self) -> u64 {
        let mut words = Vec::with_capacity(16);
        words.push(match self.kind {
            LayerKind::Conv2d => 0,
            LayerKind::FullyConnected => 1,
            LayerKind::DepthwiseConv2d => 2,
            LayerKind::Matmul => 3,
        });
        for d in Dim::ALL {
            words.push(self.shape[d] as u64);
        }
        words.extend([
            self.stride.0 as u64,
            self.stride.1 as u64,
            self.dilation.0 as u64,
            self.dilation.1 as u64,
            self.groups as u64,
            self.batch_replicas as u64,
            u64::from(self.per_sample_stationary),
        ]);
        // KV-cache residency extends the encoding only for layers that
        // carry it: every pre-existing layer's digest — including the
        // hard-pinned constant below and any digest persisted in logs or
        // bench artifacts — is unchanged, while cache layers with
        // different append counts stay distinguishable.
        if self.kv_append > 0 {
            words.push(self.kv_append as u64);
        }
        // Same preservation rule for the copy-on-write count (PR 9):
        // only layers that actually privatise a shared page extend the
        // encoding further. `kv_cow > 0` implies `kv_append > 0` (the
        // `Layer::with_kv_cow` precondition), so the variable-length
        // word list stays prefix-unambiguous.
        if self.kv_cow > 0 {
            words.push(self.kv_cow as u64);
        }
        fnv1a(b"layer", &words)
    }

    /// Number of words in the [`LayerSignature::encode_words`] encoding.
    pub const ENCODED_WORDS: usize = 17;

    /// A lossless fixed-width word encoding of the signature, suitable
    /// for on-disk cache snapshots. Unlike [`LayerSignature::digest`]
    /// (which is a one-way hash), [`LayerSignature::decode_words`]
    /// reconstructs the exact signature, so persisted cache entries can
    /// be re-keyed without collisions.
    ///
    /// Layout: kind tag, the 7 shape bounds in [`Dim::ALL`] order,
    /// stride (h, w), dilation (h, w), groups, batch replicas, the
    /// per-sample-stationary flag, the KV append count and the
    /// copy-on-write count.
    pub fn encode_words(&self) -> [u64; Self::ENCODED_WORDS] {
        let mut words = [0u64; Self::ENCODED_WORDS];
        words[0] = match self.kind {
            LayerKind::Conv2d => 0,
            LayerKind::FullyConnected => 1,
            LayerKind::DepthwiseConv2d => 2,
            LayerKind::Matmul => 3,
        };
        for (i, d) in Dim::ALL.into_iter().enumerate() {
            words[1 + i] = self.shape[d] as u64;
        }
        words[8] = self.stride.0 as u64;
        words[9] = self.stride.1 as u64;
        words[10] = self.dilation.0 as u64;
        words[11] = self.dilation.1 as u64;
        words[12] = self.groups as u64;
        words[13] = self.batch_replicas as u64;
        words[14] = u64::from(self.per_sample_stationary);
        words[15] = self.kv_append as u64;
        words[16] = self.kv_cow as u64;
        words
    }

    /// Inverse of [`LayerSignature::encode_words`]. Returns `None` for
    /// words that are not a valid encoding (unknown kind tag, non-boolean
    /// flag, or values outside `usize`), so corrupt snapshots degrade to
    /// a cache miss instead of a bogus key.
    pub fn decode_words(words: &[u64; Self::ENCODED_WORDS]) -> Option<LayerSignature> {
        let kind = match words[0] {
            0 => LayerKind::Conv2d,
            1 => LayerKind::FullyConnected,
            2 => LayerKind::DepthwiseConv2d,
            3 => LayerKind::Matmul,
            _ => return None,
        };
        let to_usize = |w: u64| usize::try_from(w).ok();
        let mut dims = [0usize; 7];
        for (slot, &w) in dims.iter_mut().zip(&words[1..8]) {
            *slot = to_usize(w)?;
        }
        let [n, m, c, p, q, r, s] = dims;
        if words[14] > 1 {
            return None;
        }
        // A copy-on-write count without an append count has no valid
        // `Layer` constructor; reject it like any other corrupt word.
        if words[16] > 0 && words[15] == 0 {
            return None;
        }
        Some(LayerSignature {
            kind,
            shape: Shape::new(n, m, c, p, q, r, s),
            stride: (to_usize(words[8])?, to_usize(words[9])?),
            dilation: (to_usize(words[10])?, to_usize(words[11])?),
            groups: to_usize(words[12])?,
            batch_replicas: to_usize(words[13])?,
            per_sample_stationary: words[14] == 1,
            kv_append: to_usize(words[15])?,
            kv_cow: to_usize(words[16])?,
        })
    }
}

impl fmt::Display for LayerSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest())
    }
}

impl Layer {
    /// The layer's [`LayerSignature`]: its content-addressed identity for
    /// mapping and evaluation, covering everything that affects results
    /// and ignoring the name.
    pub fn signature(&self) -> LayerSignature {
        LayerSignature::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_do_not_matter() {
        let a = Layer::conv2d("conv1", 1, 64, 3, 56, 56, 3, 3);
        let b = Layer::conv2d("a-completely-different-name", 1, 64, 3, 56, 56, 3, 3);
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature().digest(), b.signature().digest());
    }

    #[test]
    fn per_sample_stationary_is_distinguished() {
        let shared = Layer::matmul("mm", 1, 96, 96, 16).with_groups(4);
        let per_sample = Layer::matmul("mm", 1, 96, 96, 16)
            .with_groups(4)
            .with_per_sample_stationary();
        // At batch 1 the two layers have identical bounds, groups and
        // replicas; only the stationarity flag differs — and it changes
        // how batching scales traffic, so the signatures must differ.
        assert_ne!(shared.signature(), per_sample.signature());
        assert_ne!(shared.signature().digest(), per_sample.signature().digest());
    }

    #[test]
    fn every_shape_knob_is_distinguished() {
        let base = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        let variants = [
            Layer::conv2d("c", 2, 16, 8, 8, 8, 3, 3),
            Layer::conv2d("c", 1, 32, 8, 8, 8, 3, 3),
            Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3).with_stride(2, 1),
            Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3).with_dilation(1, 2),
            Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3).with_groups(2),
            Layer::fully_connected("c", 1, 16, 8 * 8 * 8 * 9),
        ];
        for v in &variants {
            assert_ne!(base.signature(), v.signature(), "{v}");
        }
    }

    #[test]
    fn batching_changes_the_signature() {
        let l = Layer::conv2d("c", 1, 16, 8, 8, 8, 3, 3);
        assert_ne!(l.signature(), l.clone().with_batch(8).signature());
        let attn = Layer::matmul("a", 1, 8, 8, 8).with_per_sample_stationary();
        assert_ne!(attn.signature(), attn.clone().with_batch(4).signature());
    }

    #[test]
    fn kv_cache_residency_is_distinguished() {
        let plain = Layer::matmul("mm", 1, 96, 96, 1)
            .with_groups(4)
            .with_per_sample_stationary();
        let resident = Layer::matmul("mm", 1, 96, 96, 1)
            .with_groups(4)
            .with_kv_cache_residency(96);
        // Same bounds, groups and stationarity: only the growing-cache
        // annotation differs, and it changes the append energy the
        // evaluator charges — the signatures must differ.
        assert_ne!(plain.signature(), resident.signature());
        assert_ne!(plain.signature().digest(), resident.signature().digest());
        // Different append counts are different identities too.
        let bigger = Layer::matmul("mm", 1, 96, 96, 1)
            .with_groups(4)
            .with_kv_cache_residency(192);
        assert_ne!(resident.signature(), bigger.signature());
        assert_ne!(resident.signature().digest(), bigger.signature().digest());
    }

    #[test]
    fn kv_cow_is_distinguished() {
        let append = Layer::matmul("kv", 1, 96, 96, 1)
            .with_groups(4)
            .with_kv_cache_residency(96);
        let cow = append.clone().with_kv_cow(10 * 96);
        // The copy-on-write privatisation pays extra backing-store
        // traffic, so it is a distinct evaluation identity.
        assert_ne!(append.signature(), cow.signature());
        assert_ne!(append.signature().digest(), cow.signature().digest());
        let bigger = append.clone().with_kv_cow(12 * 96);
        assert_ne!(cow.signature(), bigger.signature());
        assert_ne!(cow.signature().digest(), bigger.signature().digest());
    }

    #[test]
    fn digest_is_stable_across_calls_and_clones() {
        let l = Layer::matmul("mm", 1, 768, 768, 128);
        assert_eq!(l.signature().digest(), l.clone().signature().digest());
        // Pin one digest to a hard constant so accidental encoding
        // changes fail loudly; if this is changed intentionally, any
        // persisted digests (bench artifacts, logs) lose comparability
        // across the change — update the constant knowingly.
        assert_eq!(l.signature().digest(), 0x042c_6127_e10f_8c55);
        assert_eq!(format!("{}", l.signature()).len(), 16);
    }

    #[test]
    fn fnv_helpers_agree_on_word_encoding() {
        let words = [1u64, 0xdead_beef];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend(w.to_le_bytes());
        }
        assert_eq!(fnv1a(b"t", &words), fnv1a_bytes(b"t", &bytes));
        // Tags domain-separate.
        assert_ne!(fnv1a(b"a", &words), fnv1a(b"b", &words));
        assert_ne!(fnv1a_bytes(b"a", &bytes), fnv1a_bytes(b"b", &bytes));
    }

    #[test]
    fn encode_words_round_trips_exactly() {
        let layers = [
            Layer::conv2d("c", 1, 64, 3, 56, 56, 3, 3)
                .with_stride(2, 1)
                .with_dilation(1, 2)
                .with_groups(1),
            Layer::matmul("mm", 1, 768, 768, 128),
            Layer::matmul("a", 2, 96, 96, 16)
                .with_groups(4)
                .with_per_sample_stationary(),
            Layer::matmul("kv", 1, 96, 96, 1)
                .with_groups(4)
                .with_kv_cache_residency(192),
            Layer::matmul("cow", 1, 96, 96, 1)
                .with_groups(4)
                .with_kv_cache_residency(192)
                .with_kv_cow(960),
            Layer::fully_connected("fc", 8, 1000, 2048),
        ];
        for l in &layers {
            let sig = l.signature();
            let decoded = LayerSignature::decode_words(&sig.encode_words());
            assert_eq!(decoded, Some(sig), "{l}");
            assert_eq!(decoded.map(|d| d.digest()), Some(sig.digest()));
        }
    }

    #[test]
    fn decode_words_rejects_invalid_encodings() {
        let good = Layer::matmul("mm", 1, 8, 8, 8).signature().encode_words();
        let mut bad_kind = good;
        bad_kind[0] = 17;
        assert_eq!(LayerSignature::decode_words(&bad_kind), None);
        let mut bad_flag = good;
        bad_flag[14] = 2;
        assert_eq!(LayerSignature::decode_words(&bad_flag), None);
        // A cow count without an append count is unconstructible.
        let mut bad_cow = good;
        bad_cow[16] = 5;
        assert_eq!(LayerSignature::decode_words(&bad_cow), None);
    }

    #[test]
    fn display_is_hex_of_digest() {
        let l = Layer::conv2d("c", 1, 4, 4, 4, 4, 3, 3);
        assert_eq!(
            format!("{}", l.signature()),
            format!("{:016x}", l.signature().digest())
        );
    }
}
