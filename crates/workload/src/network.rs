//! Whole-network workloads: ordered layers plus inter-layer linkage.

use crate::{Layer, LayerKind, TensorKind};
use std::fmt;

/// An ordered sequence of layers forming one inference workload.
///
/// The layer order is the execution (and fusion) order: layer `i+1` consumes
/// layer `i`'s output activations. Branchy networks (e.g. ResNet shortcuts)
/// are linearized; for energy modeling this is the standard approximation
/// used by Timeloop-family tools, which evaluate layers independently.
///
/// # Examples
///
/// ```
/// use lumen_workload::{Layer, Network};
///
/// let net = Network::new("tiny")
///     .push(Layer::conv2d("conv1", 1, 16, 3, 32, 32, 3, 3))
///     .push(Layer::fully_connected("fc", 1, 10, 16 * 32 * 32));
/// assert_eq!(net.layers().len(), 2);
/// assert!(net.total_macs() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Network {
        Network {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: Layer) -> Network {
        self.layers.push(layer);
        self
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Returns a copy of this network with every layer's batch set to `n`.
    #[must_use]
    pub fn with_batch(&self, n: usize) -> Network {
        Network {
            name: self.name.clone(),
            layers: self
                .layers
                .iter()
                .map(|l| l.clone().with_batch(n))
                .collect(),
        }
    }

    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total MACs over layers of one operator class.
    pub fn macs_of_kind(&self, kind: LayerKind) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind() == kind)
            .map(Layer::macs)
            .sum()
    }

    /// Fraction of MACs spent in GEMM-shaped layers (matmul +
    /// fully-connected) — near 0 for the paper's CNNs, near 1 for
    /// transformers. Returns 0 for an empty network.
    pub fn gemm_mac_fraction(&self) -> f64 {
        let total = self.total_macs();
        if total == 0 {
            return 0.0;
        }
        let gemm =
            self.macs_of_kind(LayerKind::Matmul) + self.macs_of_kind(LayerKind::FullyConnected);
        gemm as f64 / total as f64
    }

    /// Total weight elements over all layers (the model size).
    pub fn total_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.tensor_elements(TensorKind::Weight))
            .sum()
    }

    /// The largest single inter-layer activation footprint, in elements:
    /// `max_i (outputs of layer i + inputs of layer i+1's next stage)`.
    ///
    /// This bounds the global-buffer capacity needed for a fused-layer
    /// dataflow in which activations never leave the chip. We use the
    /// conservative `out(i) + out(i+1)` double-buffering rule.
    pub fn max_fused_activation_elements(&self) -> u64 {
        let outs: Vec<u64> = self
            .layers
            .iter()
            .map(|l| l.tensor_elements(TensorKind::Output))
            .collect();
        outs.windows(2)
            .map(|w| w[0] + w[1])
            .chain(outs.first().copied())
            .max()
            .unwrap_or(0)
    }

    /// Summary statistics used by reports and experiments.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            layers: self.layers.len(),
            total_macs: self.total_macs(),
            total_weights: self.total_weights(),
            total_activations: self
                .layers
                .iter()
                .map(|l| l.tensor_elements(TensorKind::Output))
                .sum(),
        }
    }
}

/// Aggregate size statistics of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Number of layers.
    pub layers: usize,
    /// Total multiply-accumulates per inference.
    pub total_macs: u64,
    /// Total weight elements (model size).
    pub total_weights: u64,
    /// Total output-activation elements across layers.
    pub total_activations: u64,
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers, {:.2} GMACs, {:.2} M weights, {:.2} M activations",
            self.layers,
            self.total_macs as f64 / 1e9,
            self.total_weights as f64 / 1e6,
            self.total_activations as f64 / 1e6
        )
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network {} ({})", self.name, self.stats())?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    fn tiny() -> Network {
        Network::new("tiny")
            .push(Layer::conv2d("a", 1, 8, 3, 16, 16, 3, 3))
            .push(Layer::conv2d("b", 1, 16, 8, 8, 8, 3, 3).with_stride(2, 2))
            .push(Layer::fully_connected("fc", 1, 10, 16 * 8 * 8))
    }

    #[test]
    fn totals_add_up() {
        let net = tiny();
        let by_hand: u64 = net.layers().iter().map(Layer::macs).sum();
        assert_eq!(net.total_macs(), by_hand);
        assert_eq!(net.layers().len(), 3);
    }

    #[test]
    fn with_batch_scales_macs() {
        let net = tiny();
        let batched = net.with_batch(4);
        assert_eq!(batched.total_macs(), 4 * net.total_macs());
        // Weights unchanged by batching.
        assert_eq!(batched.total_weights(), net.total_weights());
    }

    #[test]
    fn fused_footprint_is_max_of_adjacent_pairs() {
        let net = tiny();
        let outs: Vec<u64> = net
            .layers()
            .iter()
            .map(|l| l.tensor_elements(TensorKind::Output))
            .collect();
        let expected = (outs[0] + outs[1]).max(outs[1] + outs[2]).max(outs[0]);
        assert_eq!(net.max_fused_activation_elements(), expected);
    }

    #[test]
    fn empty_network_is_harmless() {
        let net = Network::new("empty");
        assert_eq!(net.total_macs(), 0);
        assert_eq!(net.max_fused_activation_elements(), 0);
        assert_eq!(net.gemm_mac_fraction(), 0.0);
    }

    #[test]
    fn kind_totals_partition_macs() {
        let net = tiny().push(Layer::matmul("mm", 1, 8, 8, 4));
        let by_kind: u64 = [
            LayerKind::Conv2d,
            LayerKind::FullyConnected,
            LayerKind::DepthwiseConv2d,
            LayerKind::Matmul,
        ]
        .iter()
        .map(|&k| net.macs_of_kind(k))
        .sum();
        assert_eq!(by_kind, net.total_macs());
        let frac = net.gemm_mac_fraction();
        assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    fn stats_display() {
        let shown = format!("{}", tiny().stats());
        assert!(shown.contains("3 layers"));
    }
}
