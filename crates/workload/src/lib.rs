//! # lumen-workload
//!
//! DNN workload descriptions for architecture-level modeling.
//!
//! A convolutional / fully-connected layer is described as a seven-dimensional
//! loop nest over [`Dim`]s `(N, M, C, P, Q, R, S)`:
//!
//! * `N` — batch
//! * `M` — output channels
//! * `C` — input channels
//! * `P`/`Q` — output feature-map rows / columns
//! * `R`/`S` — filter rows / columns
//!
//! with strides, dilation and channel groups. Three operand tensors project
//! out of this nest ([`TensorKind`]): weights `W[M,C,R,S]`, inputs
//! `I[N,C,H,W]` (sliding-window footprint) and outputs `O[N,M,P,Q]`.
//!
//! The [`networks`] module provides the three networks evaluated by the
//! paper: [`networks::alexnet`], [`networks::vgg16`] and
//! [`networks::resnet18`].
//!
//! # Examples
//!
//! ```
//! use lumen_workload::{Layer, networks};
//!
//! let conv = Layer::conv2d("conv", 1, 64, 3, 224, 224, 3, 3);
//! assert_eq!(conv.macs(), 64 * 3 * 224 * 224 * 9);
//!
//! let net = networks::resnet18();
//! assert!(net.total_macs() > 1_700_000_000);
//! ```

mod dims;
mod layer;
mod network;
pub mod networks;
mod tensor;

pub use dims::{Dim, DimMap, DimSet, Shape};
pub use layer::{Layer, LayerError, LayerKind};
pub use network::{Network, NetworkStats};
pub use tensor::{TensorKind, TensorMap, TensorSet};
