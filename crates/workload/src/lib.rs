//! # lumen-workload
//!
//! DNN workload descriptions for architecture-level modeling.
//!
//! A convolutional / fully-connected layer is described as a seven-dimensional
//! loop nest over [`Dim`]s `(N, M, C, P, Q, R, S)`:
//!
//! * `N` — batch
//! * `M` — output channels
//! * `C` — input channels
//! * `P`/`Q` — output feature-map rows / columns
//! * `R`/`S` — filter rows / columns
//!
//! with strides, dilation and channel groups. Three operand tensors project
//! out of this nest ([`TensorKind`]): weights `W[M,C,R,S]`, inputs
//! `I[N,C,H,W]` (sliding-window footprint) and outputs `O[N,M,P,Q]`.
//!
//! Batched GEMMs ([`LayerKind::Matmul`]) fold onto the same nest with
//! `P` carrying the row/sequence extent and `Q = R = S = 1`; multi-head
//! attention lowers onto grouped matmuls via [`Attention`], with heads as
//! channel groups. Autoregressive decoding lowers onto seq-1 GEMVs with
//! a growing, per-sample-resident KV cache via [`DecodePhase`] and
//! [`decode_trace`]; continuous batching of mixed-length serving traffic
//! lowers scheduler steps onto bucketed decode groups via the [`serving`]
//! module ([`RequestMix`], [`BatchSchedule`], [`ServingModel`]).
//!
//! The [`networks`] module provides the four CNNs evaluated by the paper
//! ([`networks::alexnet`], [`networks::vgg16`], [`networks::resnet18`],
//! [`networks::mobilenetv1`]) plus three transformer workloads
//! ([`networks::bert_base`], [`networks::gpt2_small`],
//! [`networks::vit_b16`]).
//!
//! # Examples
//!
//! ```
//! use lumen_workload::{Layer, networks};
//!
//! let conv = Layer::conv2d("conv", 1, 64, 3, 224, 224, 3, 3);
//! assert_eq!(conv.macs(), 64 * 3 * 224 * 224 * 9);
//!
//! let net = networks::resnet18();
//! assert!(net.total_macs() > 1_700_000_000);
//! ```

mod attention;
mod decode;
mod dims;
mod layer;
mod network;
pub mod networks;
pub mod serving;
mod signature;
mod tensor;

pub use attention::{encoder_block_macs, push_encoder_block, Attention};
pub use decode::{decode_block_macs, decode_trace, push_decode_block, DecodePhase};
pub use dims::{Dim, DimMap, DimSet, Shape};
pub use layer::{Layer, LayerError, LayerKind};
pub use network::{Network, NetworkStats};
pub use serving::{
    ActiveSlot, AdmissionPolicy, ArrivalProcess, BatchSchedule, Fleet, FleetRouter,
    InstanceAssignment, KvLayout, PageTable, PagedResidency, PrefillMode, PrefillSlot, Request,
    RequestMix, ScheduleStep, ServingConfig, ServingError, ServingModel, ServingScenario,
    ServingScenarioBuilder, ServingSchedule, ServingStep, StepResidency,
};
pub use signature::{fnv1a, fnv1a_bytes, LayerSignature};
pub use tensor::{TensorKind, TensorMap, TensorSet};
