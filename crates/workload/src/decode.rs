//! Autoregressive decode: one token per step against a growing KV cache.
//!
//! Prefill ([`Attention::lower`]) processes a whole sequence at once;
//! decode generates one token per step, so every matmul degenerates to a
//! GEMV (`seq = 1`) and the attention operands split into a *new* part
//! (the step's query/key/value vectors) and a *resident* part (the KV
//! cache accumulated over all previous steps). [`DecodePhase`] lowers one
//! attention block's decode step:
//!
//! | layer | GEMM | stationary ("weight") operand |
//! |---|---|---|
//! | `query`/`key`/`value` | `[1,D] x [D,D]` | projection weights |
//! | `logits` | per head `[1,d] x [d,L]` | **K cache** (`L` tokens) |
//! | `attend` | per head `[1,L] x [L,d]` | **V cache** (`L` tokens) |
//! | `out` | `[1,D] x [D,D]` | projection weights |
//!
//! with `L` the *attend length*. The chosen semantics, pinned by
//! `tests/decode_properties.rs`:
//!
//! * **`kv_len` counts the tokens cached before the step.** The step
//!   first appends the new token's K/V, then attends over `kv_len + 1`
//!   positions — so `kv_len = 0` (the first generated token) is legal and
//!   attends over exactly the new token itself.
//! * **The cache is a growing per-sample weight.** `logits`/`attend`
//!   carry [`Layer::with_kv_cache_residency`]: batching replicates the
//!   cache (never shares it), each step re-reads the whole cache, and the
//!   evaluator charges the append write of the step's `d_model`-element
//!   K (resp. V) slice.
//! * **`kv_bucket` pads the attend length** up to the next multiple of
//!   the bucket, the way dense hardware pads a GEMV's reduction to its
//!   tile size (and paged KV allocates whole pages). Padded positions
//!   count as padded MACs, matching the model's padded-MAC accounting —
//!   and steps inside one bucket share a [`Layer::signature`], which is
//!   what makes a multi-thousand-step decode trace collapse to a handful
//!   of mapping searches in an `EvalSession`.
//!
//! # Examples
//!
//! ```
//! use lumen_workload::DecodePhase;
//!
//! let step = DecodePhase::new("dec.attn", 768, 12).with_kv_len(511);
//! assert_eq!(step.attend_len(), 512);
//! let layers = step.lower();
//! assert_eq!(layers.len(), 6);
//! let total: u64 = layers.iter().map(|l| l.macs()).sum();
//! assert_eq!(total, step.macs());
//! ```

use crate::{Layer, Network};

/// One autoregressive decode step of a multi-head attention block.
#[derive(Debug, Clone)]
pub struct DecodePhase {
    prefix: String,
    d_model: usize,
    heads: usize,
    kv_len: usize,
    kv_bucket: usize,
    batch: usize,
}

impl DecodePhase {
    /// Builds a decode-step description with an empty cache
    /// (`kv_len = 0`), no bucketing and batch 1.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `d_model` is not divisible by
    /// `heads`.
    pub fn new(prefix: impl Into<String>, d_model: usize, heads: usize) -> DecodePhase {
        assert!(
            d_model > 0 && heads > 0,
            "decode dimensions must be nonzero"
        );
        assert!(
            d_model.is_multiple_of(heads),
            "d_model={d_model} not divisible by heads={heads}"
        );
        DecodePhase {
            prefix: prefix.into(),
            d_model,
            heads,
            kv_len: 0,
            kv_bucket: 1,
            batch: 1,
        }
    }

    /// Sets the number of tokens already cached before this step
    /// (builder style). The step attends over `kv_len + 1` positions.
    #[must_use]
    pub fn with_kv_len(mut self, kv_len: usize) -> DecodePhase {
        self.kv_len = kv_len;
        self
    }

    /// Pads the attend length up to a multiple of `bucket` (builder
    /// style) — hardware tile / KV-page granularity. Bucket 1 is exact.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    #[must_use]
    pub fn with_kv_bucket(mut self, bucket: usize) -> DecodePhase {
        assert!(bucket > 0, "kv bucket must be nonzero");
        self.kv_bucket = bucket;
        self
    }

    /// Sets the batch size (builder style): projections carry it in `N`,
    /// while the KV cache of `logits`/`attend` is replicated per sample.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> DecodePhase {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// Per-head width `d_model / heads`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Tokens cached before the step.
    pub fn kv_len(&self) -> usize {
        self.kv_len
    }

    /// The number of positions the step attends over: `kv_len + 1` (the
    /// cache plus the token being generated), rounded up to the bucket.
    pub fn attend_len(&self) -> usize {
        (self.kv_len + 1).div_ceil(self.kv_bucket) * self.kv_bucket
    }

    /// Lowers the step into its six GEMV layers, execution order:
    /// `query`, `key`, `value`, `logits`, `attend`, `out`.
    pub fn lower(&self) -> Vec<Layer> {
        let (d, h, n) = (self.d_model, self.heads, self.batch);
        let len = self.attend_len();
        let name = |suffix: &str| format!("{}.{suffix}", self.prefix);
        vec![
            Layer::gemv(name("query"), n, d, d),
            Layer::gemv(name("key"), n, d, d),
            Layer::gemv(name("value"), n, d, d),
            // Per head: q[1, d/h] x K^T[d/h, L] -> logits[1, L]. The K
            // cache grows by the new token's d_model-element slice.
            Layer::matmul(name("logits"), 1, h * len, d, 1)
                .with_groups(h)
                .with_kv_cache_residency(d)
                .with_batch(n),
            // Per head: probs[1, L] x V[L, d/h] -> context[1, d/h].
            Layer::matmul(name("attend"), 1, d, h * len, 1)
                .with_groups(h)
                .with_kv_cache_residency(d)
                .with_batch(n),
            Layer::gemv(name("out"), n, d, d),
        ]
    }

    /// Closed-form MAC count of the step:
    /// `batch · (4·D² + 2·L·D)` with `L` = [`DecodePhase::attend_len`].
    pub fn macs(&self) -> u64 {
        let (d, n) = (self.d_model as u64, self.batch as u64);
        let len = self.attend_len() as u64;
        n * (4 * d * d + 2 * len * d)
    }
}

/// Appends one pre-norm transformer decoder block's *decode step* (MHA
/// over the cache + 2-layer MLP with hidden width `d_ff`, all at
/// `seq = 1`) to `net`.
#[allow(clippy::too_many_arguments)]
pub fn push_decode_block(
    net: Network,
    prefix: &str,
    d_model: usize,
    heads: usize,
    d_ff: usize,
    kv_len: usize,
    kv_bucket: usize,
) -> Network {
    let mut net = net;
    let phase = DecodePhase::new(format!("{prefix}.attn"), d_model, heads)
        .with_kv_len(kv_len)
        .with_kv_bucket(kv_bucket);
    for layer in phase.lower() {
        net = net.push(layer);
    }
    net.push(Layer::gemv(format!("{prefix}.mlp.fc1"), 1, d_ff, d_model))
        .push(Layer::gemv(format!("{prefix}.mlp.fc2"), 1, d_model, d_ff))
}

/// Closed-form MAC count of [`push_decode_block`] at attend length
/// `attend_len`: `4·D² + 2·L·D + 2·D·D_ff`.
pub fn decode_block_macs(attend_len: usize, d_model: usize, d_ff: usize) -> u64 {
    let (len, d, f) = (attend_len as u64, d_model as u64, d_ff as u64);
    4 * d * d + 2 * len * d + 2 * d * f
}

/// Iterates a decode trace: `steps` consecutive per-step networks built
/// by `build`, with the KV length growing by one token per step starting
/// from `start_kv`. Yields `(kv_len, network)` pairs.
///
/// The builder receives the *exact* cache length; bucketing (if any) is
/// the builder's concern, which is what lets per-step networks inside one
/// KV-length bucket share every layer signature and collapse to cache
/// hits in an `EvalSession`.
pub fn decode_trace<F>(
    start_kv: usize,
    steps: usize,
    build: F,
) -> impl Iterator<Item = (usize, Network)>
where
    F: Fn(usize) -> Network,
{
    (start_kv..start_kv + steps).map(move |kv_len| (kv_len, build(kv_len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, LayerKind, TensorKind};

    #[test]
    fn lowering_macs_match_closed_form() {
        for (kv, d, h) in [(0, 768, 12), (1, 768, 12), (511, 256, 4), (2048, 64, 2)] {
            let step = DecodePhase::new("a", d, h).with_kv_len(kv);
            let sum: u64 = step.lower().iter().map(Layer::macs).sum();
            assert_eq!(sum, step.macs(), "kv={kv} d={d} h={h}");
        }
    }

    #[test]
    fn first_token_attends_over_itself_only() {
        // kv_len = 0: the cache is empty, the step appends the new token
        // and attends over exactly that one position.
        let step = DecodePhase::new("a", 768, 12);
        assert_eq!(step.attend_len(), 1);
        let layers = step.lower();
        let logits = layers.iter().find(|l| l.name() == "a.logits").unwrap();
        assert_eq!(logits.shape()[Dim::M], 1, "one attendable position");
        assert_eq!(logits.shape()[Dim::C], 64);
        assert_eq!(logits.shape()[Dim::P], 1, "one query token");
        assert_eq!(logits.macs(), 12 * 64);
    }

    #[test]
    fn cache_layers_are_kv_resident_gemvs() {
        let step = DecodePhase::new("a", 768, 12).with_kv_len(127);
        let layers = step.lower();
        let by_name = |n: &str| layers.iter().find(|l| l.name() == n).unwrap();
        for name in ["a.logits", "a.attend"] {
            let l = by_name(name);
            assert_eq!(l.kind(), LayerKind::Matmul);
            assert_eq!(l.shape()[Dim::P], 1, "{name} is a GEMV");
            assert!(l.kv_cache_resident(), "{name} reads the cache");
            assert_eq!(l.kv_append_elements(), 768, "one token's K/V slice");
            // The whole 128-token cache is the stationary operand.
            assert_eq!(l.tensor_elements(TensorKind::Weight), 128 * 768);
        }
        for name in ["a.query", "a.key", "a.value", "a.out"] {
            let l = by_name(name);
            assert!(!l.kv_cache_resident(), "{name} holds model weights");
            assert_eq!(l.tensor_elements(TensorKind::Weight), 768 * 768);
        }
    }

    #[test]
    fn batching_replicates_the_cache_but_shares_projections() {
        let layers = DecodePhase::new("a", 256, 4)
            .with_kv_len(63)
            .with_batch(8)
            .lower();
        let by_name = |n: &str| layers.iter().find(|l| l.name() == n).unwrap();
        let logits = by_name("a.logits");
        assert_eq!(logits.tensor_elements(TensorKind::Weight), 8 * 64 * 256);
        assert_eq!(logits.kv_append_elements(), 8 * 256);
        let query = by_name("a.query");
        assert_eq!(query.shape()[Dim::N], 8);
        assert_eq!(query.tensor_elements(TensorKind::Weight), 256 * 256);
    }

    #[test]
    fn bucketing_pads_the_attend_length() {
        let step = DecodePhase::new("a", 256, 4)
            .with_kv_len(129)
            .with_kv_bucket(64);
        assert_eq!(step.attend_len(), 192);
        // Exact multiples don't over-pad.
        let exact = DecodePhase::new("a", 256, 4)
            .with_kv_len(127)
            .with_kv_bucket(64);
        assert_eq!(exact.attend_len(), 128);
        // Steps inside one bucket share every layer signature.
        let a = DecodePhase::new("a", 256, 4)
            .with_kv_len(130)
            .with_kv_bucket(64);
        let sigs = |p: &DecodePhase| -> Vec<_> { p.lower().iter().map(Layer::signature).collect() };
        assert_eq!(sigs(&step), sigs(&a));
    }

    #[test]
    fn decode_block_macs_match() {
        let net = push_decode_block(Network::new("d"), "b0", 768, 12, 3072, 255, 1);
        assert_eq!(net.layers().len(), 8);
        assert_eq!(net.total_macs(), decode_block_macs(256, 768, 3072));
    }

    #[test]
    fn trace_yields_growing_kv_lengths() {
        let trace: Vec<(usize, Network)> = decode_trace(7, 3, |kv| {
            push_decode_block(Network::new("d"), "b0", 64, 2, 128, kv, 1)
        })
        .collect();
        assert_eq!(trace.len(), 3);
        assert_eq!(
            trace.iter().map(|(kv, _)| *kv).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        // MACs grow with the cache.
        let macs: Vec<u64> = trace.iter().map(|(_, n)| n.total_macs()).collect();
        assert!(macs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panic() {
        let _ = DecodePhase::new("a", 100, 7);
    }
}
