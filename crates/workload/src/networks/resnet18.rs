//! ResNet-18 (He et al., CVPR 2016) with projection shortcuts.

use crate::{Layer, Network};

/// Builds batch-1 ResNet-18.
///
/// The residual topology is linearized into 21 MAC layers (1 stem conv,
/// 16 block convs, 3 projection shortcuts, 1 classifier). This is the
/// workload of the paper's full-system (Fig. 4) and architecture-
/// exploration (Fig. 5) experiments.
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::resnet18;
/// let net = resnet18();
/// assert_eq!(net.layers().len(), 21);
/// ```
pub fn resnet18() -> Network {
    let mut net = Network::new("resnet18")
        // 224x224x3 -> 112x112x64, 7x7 stride 2.
        .push(Layer::conv2d("conv1", 1, 64, 3, 112, 112, 7, 7).with_stride(2, 2));

    // After 3x3/2 max-pool the feature map is 56x56x64.
    // Stage 1: two basic blocks at 56x56, 64 channels.
    for block in 0..2 {
        for conv in 1..=2 {
            net = net.push(Layer::conv2d(
                format!("layer1.{block}.conv{conv}"),
                1,
                64,
                64,
                56,
                56,
                3,
                3,
            ));
        }
    }

    // Stages 2-4 halve the spatial size and double the channels; the first
    // block of each stage has a strided conv1 and a 1x1 projection shortcut.
    let stages: [(&str, usize, usize, usize); 3] = [
        ("layer2", 128, 64, 28),
        ("layer3", 256, 128, 14),
        ("layer4", 512, 256, 7),
    ];
    for (stage, m, c_in, pq) in stages {
        // Block 0 (downsampling).
        net = net
            .push(
                Layer::conv2d(format!("{stage}.0.conv1"), 1, m, c_in, pq, pq, 3, 3)
                    .with_stride(2, 2),
            )
            .push(Layer::conv2d(
                format!("{stage}.0.conv2"),
                1,
                m,
                m,
                pq,
                pq,
                3,
                3,
            ))
            .push(
                Layer::conv2d(format!("{stage}.0.downsample"), 1, m, c_in, pq, pq, 1, 1)
                    .with_stride(2, 2),
            );
        // Block 1.
        net = net
            .push(Layer::conv2d(
                format!("{stage}.1.conv1"),
                1,
                m,
                m,
                pq,
                pq,
                3,
                3,
            ))
            .push(Layer::conv2d(
                format!("{stage}.1.conv2"),
                1,
                m,
                m,
                pq,
                pq,
                3,
                3,
            ));
    }

    net.push(Layer::fully_connected("fc", 1, 1000, 512))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, LayerKind};

    #[test]
    fn layer_inventory() {
        let net = resnet18();
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Conv2d)
            .count();
        let fcs = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::FullyConnected)
            .count();
        assert_eq!((convs, fcs), (20, 1));
    }

    #[test]
    fn stage_shapes_halve() {
        let net = resnet18();
        let l2 = net
            .layers()
            .iter()
            .find(|l| l.name() == "layer2.0.conv1")
            .unwrap();
        assert_eq!(l2.shape()[Dim::M], 128);
        assert_eq!(l2.shape()[Dim::P], 28);
        assert_eq!(l2.stride(), (2, 2));
    }

    #[test]
    fn downsample_convs_are_1x1_strided() {
        let net = resnet18();
        for l in net
            .layers()
            .iter()
            .filter(|l| l.name().contains("downsample"))
        {
            assert_eq!(l.shape()[Dim::R], 1);
            assert_eq!(l.stride(), (2, 2));
        }
    }

    #[test]
    fn stem_dominates_no_single_layer() {
        let net = resnet18();
        let max_layer = net.layers().iter().map(Layer::macs).max().unwrap();
        // No layer is more than 10% of... actually conv stages are balanced;
        // the stem is ~6.5% and block convs ~6.4% each.
        assert!(
            max_layer * 5 < net.total_macs(),
            "layers reasonably balanced"
        );
    }
}
