//! ViT-B/16 (Dosovitskiy et al., ICLR 2021): a vision transformer whose
//! first layer is a genuine (non-overlapping) convolution, followed by a
//! pure-matmul encoder — it exercises the CNN and transformer paths of
//! the model in one workload.

use crate::attention::{encoder_block_macs, push_encoder_block};
use crate::{Layer, Network};

/// Token count: 14x14 patches + 1 class token.
pub const VIT_B16_SEQ: usize = 197;
/// Model width.
pub const VIT_B16_D_MODEL: usize = 768;
/// Attention heads per layer.
pub const VIT_B16_HEADS: usize = 12;
/// MLP hidden width.
pub const VIT_B16_D_FF: usize = 3072;
/// Encoder layers.
pub const VIT_B16_LAYERS: usize = 12;

/// Builds batch-1 ViT-B/16 at 224x224 input: a 16x16/16 patch-embedding
/// convolution (3 -> 768 channels over a 14x14 grid), 12 encoder blocks
/// at 197 tokens, and the 1000-way classifier head (98 layers).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::vit_b16;
/// let net = vit_b16();
/// assert_eq!(net.layers().len(), 98);
/// // ~17.6 GMACs, the commonly quoted ViT-B/16 figure.
/// assert!(net.total_macs() > 17_000_000_000);
/// ```
pub fn vit_b16() -> Network {
    let mut net = Network::new("vit-b16").push(
        Layer::conv2d("patch-embed", 1, VIT_B16_D_MODEL, 3, 14, 14, 16, 16).with_stride(16, 16),
    );
    for block in 0..VIT_B16_LAYERS {
        net = push_encoder_block(
            net,
            &format!("encoder.{block}"),
            VIT_B16_SEQ,
            VIT_B16_D_MODEL,
            VIT_B16_HEADS,
            VIT_B16_D_FF,
        );
    }
    // Classification head reads the class token only.
    net.push(Layer::matmul("head", 1, 1000, VIT_B16_D_MODEL, 1))
}

/// Closed-form MAC count of [`vit_b16`].
pub fn vit_b16_macs() -> u64 {
    let patch = (VIT_B16_D_MODEL * 3 * 14 * 14 * 16 * 16) as u64;
    let encoder =
        VIT_B16_LAYERS as u64 * encoder_block_macs(VIT_B16_SEQ, VIT_B16_D_MODEL, VIT_B16_D_FF);
    let head = (1000 * VIT_B16_D_MODEL) as u64;
    patch + encoder + head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn totals_match_closed_form() {
        assert_eq!(vit_b16().total_macs(), vit_b16_macs());
        assert_eq!(vit_b16_macs(), 17_563_828_224);
    }

    #[test]
    fn patch_embed_is_a_nonoverlapping_conv() {
        let net = vit_b16();
        let patch = net.layers().first().unwrap();
        assert_eq!(patch.kind(), LayerKind::Conv2d);
        assert_eq!(patch.stride(), (16, 16));
        assert!(!patch.is_unit_stride());
        // 224 = 14 patches x 16 pixels: the footprint tiles exactly.
        assert_eq!(
            patch.tensor_elements(crate::TensorKind::Input),
            3 * 224 * 224
        );
    }

    #[test]
    fn encoder_is_matmul_only() {
        let net = vit_b16();
        assert!(net.layers()[1..]
            .iter()
            .all(|l| l.kind() == LayerKind::Matmul));
    }
}
