//! Prebuilt networks used in the paper's evaluation, plus the
//! transformer extensions.
//!
//! All shapes follow the original publications (AlexNet with its two-group
//! convolutions, VGG16 configuration D, ResNet-18 with projection
//! shortcuts, BERT-base / GPT-2 small / ViT-B/16 at their published
//! widths). Pooling, normalization, softmax and residual adds carry no
//! MACs and are omitted, matching Timeloop-family modeling practice.

mod alexnet;
mod bert_base;
mod gpt2_small;
mod mobilenetv1;
mod resnet18;
mod vgg16;
mod vit_b16;

pub use alexnet::alexnet;
pub use bert_base::{bert_base, bert_base_macs};
pub use gpt2_small::{
    gpt2_small, gpt2_small_decode, gpt2_small_decode_bucketed, gpt2_small_decode_macs,
    gpt2_small_decode_trace, gpt2_small_macs,
};
pub use mobilenetv1::mobilenetv1;
pub use resnet18::resnet18;
pub use vgg16::vgg16;
pub use vit_b16::{vit_b16, vit_b16_macs};

use crate::Network;

/// Looks a prebuilt network up by (case-insensitive) name.
///
/// # Examples
///
/// ```
/// use lumen_workload::networks;
/// assert!(networks::by_name("VGG16").is_some());
/// assert!(networks::by_name("bert-base").is_some());
/// assert!(networks::by_name("mystery-net").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(alexnet()),
        "vgg16" | "vgg-16" => Some(vgg16()),
        "resnet18" | "resnet-18" => Some(resnet18()),
        "mobilenetv1" | "mobilenet-v1" | "mobilenet" => Some(mobilenetv1()),
        "bert-base" | "bert_base" | "bert" => Some(bert_base()),
        "gpt2-small" | "gpt2_small" | "gpt2" => Some(gpt2_small()),
        // One decode step at the full context (1023 cached tokens) — the
        // serving-phase counterpart of the `gpt2-small` prefill network.
        // Deliberately not part of `NAMES`: the figure/study drivers
        // iterate that inventory, and the decode phase has its own study.
        "gpt2-small-decode" | "gpt2_small_decode" | "gpt2-decode" => {
            Some(gpt2_small_decode(gpt2_small::GPT2_SMALL_SEQ - 1))
        }
        "vit-b16" | "vit_b16" | "vit" => Some(vit_b16()),
        _ => None,
    }
}

/// Names accepted by [`by_name`]: the paper's CNNs first, then the
/// transformer workloads.
pub const NAMES: [&str; 7] = [
    "alexnet",
    "vgg16",
    "resnet18",
    "mobilenetv1",
    "bert-base",
    "gpt2-small",
    "vit-b16",
];

/// The CNN subset of [`NAMES`] (the paper's original evaluation).
pub const CNN_NAMES: [&str; 4] = ["alexnet", "vgg16", "resnet18", "mobilenetv1"];

/// The transformer subset of [`NAMES`].
pub const TRANSFORMER_NAMES: [&str; 3] = ["bert-base", "gpt2-small", "vit-b16"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_finds_all() {
        for name in NAMES {
            assert!(by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn alexnet_mac_count_matches_literature() {
        // ~724 MMACs for batch-1 AlexNet (original grouped version).
        let macs = alexnet().total_macs();
        assert!(
            (600_000_000..800_000_000).contains(&macs),
            "AlexNet MACs out of range: {macs}"
        );
    }

    #[test]
    fn vgg16_mac_count_matches_literature() {
        // ~15.5 GMACs for batch-1 VGG16.
        let macs = vgg16().total_macs();
        assert!(
            (15_000_000_000..16_000_000_000).contains(&macs),
            "VGG16 MACs out of range: {macs}"
        );
    }

    #[test]
    fn resnet18_mac_count_matches_literature() {
        // ~1.8 GMACs for batch-1 ResNet-18.
        let macs = resnet18().total_macs();
        assert!(
            (1_700_000_000..1_950_000_000).contains(&macs),
            "ResNet18 MACs out of range: {macs}"
        );
    }

    #[test]
    fn resnet18_weight_count_matches_literature() {
        // ~11.2M conv+fc weights.
        let w = resnet18().total_weights();
        assert!((10_500_000..12_000_000).contains(&w), "weights: {w}");
    }

    #[test]
    fn vgg16_is_weight_heavy_in_fc() {
        // The three FC layers hold most of VGG16's ~138M weights.
        let w = vgg16().total_weights();
        assert!((130_000_000..145_000_000).contains(&w), "weights: {w}");
    }

    #[test]
    fn name_subsets_partition_the_inventory() {
        assert_eq!(CNN_NAMES.len() + TRANSFORMER_NAMES.len(), NAMES.len());
        for name in CNN_NAMES.iter().chain(TRANSFORMER_NAMES.iter()) {
            assert!(NAMES.contains(name), "{name} missing from NAMES");
        }
    }

    #[test]
    fn transformer_aliases_resolve() {
        for alias in ["bert", "gpt2", "vit", "BERT-Base", "vit_b16"] {
            assert!(by_name(alias).is_some(), "alias {alias} should resolve");
        }
    }

    #[test]
    fn decode_aliases_resolve_to_full_context_step() {
        for alias in ["gpt2-small-decode", "gpt2_small_decode", "gpt2-decode"] {
            let net = by_name(alias).unwrap_or_else(|| panic!("alias {alias}"));
            assert_eq!(net.total_macs(), gpt2_small_decode_macs(1023));
        }
        // The decode step stays out of the driver-facing inventory.
        assert!(!NAMES.contains(&"gpt2-small-decode"));
    }

    #[test]
    fn transformer_mac_counts_match_literature() {
        // BERT-base @128: ~11.2 GMACs; GPT-2 prefill @1024: ~106 GMACs;
        // ViT-B/16: ~17.6 GMACs.
        let bert = bert_base().total_macs();
        assert!((11_000_000_000..11_500_000_000).contains(&bert), "{bert}");
        let gpt2 = gpt2_small().total_macs();
        assert!((100_000_000_000..110_000_000_000).contains(&gpt2), "{gpt2}");
        let vit = vit_b16().total_macs();
        assert!((17_000_000_000..18_000_000_000).contains(&vit), "{vit}");
    }

    #[test]
    fn alexnet_has_strided_and_grouped_layers() {
        let net = alexnet();
        assert!(net.layers().iter().any(|l| !l.is_unit_stride()));
        assert!(net.layers().iter().any(|l| l.groups() > 1));
    }
}
