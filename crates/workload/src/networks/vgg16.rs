//! VGG16 (Simonyan & Zisserman, ICLR 2015) — configuration D.

use crate::{Layer, Network};

/// Builds batch-1 VGG16.
///
/// All thirteen convolutions are 3×3 with unit stride and "same" padding —
/// the shape class Albireo's optical sliding-window dataflow is designed
/// for, which is why VGG16 throughput stays near ideal in Fig. 3.
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::vgg16;
/// let net = vgg16();
/// assert_eq!(net.layers().len(), 16);
/// assert!(net.layers().iter().all(|l| l.is_unit_stride()));
/// ```
pub fn vgg16() -> Network {
    let mut net = Network::new("vgg16");
    // (name, M, C, P=Q)
    let convs: [(&str, usize, usize, usize); 13] = [
        ("conv1_1", 64, 3, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 128, 64, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 256, 128, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 512, 256, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ];
    for (name, m, c, pq) in convs {
        net = net.push(Layer::conv2d(name, 1, m, c, pq, pq, 3, 3));
    }
    net.push(Layer::fully_connected("fc6", 1, 4096, 512 * 7 * 7))
        .push(Layer::fully_connected("fc7", 1, 4096, 4096))
        .push(Layer::fully_connected("fc8", 1, 1000, 4096))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn layer_counts() {
        let net = vgg16();
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Conv2d)
            .count();
        let fcs = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::FullyConnected)
            .count();
        assert_eq!((convs, fcs), (13, 3));
    }

    #[test]
    fn conv_macs_dominate() {
        let net = vgg16();
        let conv_macs: u64 = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::Conv2d)
            .map(Layer::macs)
            .sum();
        // Convs are ~99% of VGG16 MACs.
        assert!(conv_macs * 100 > net.total_macs() * 98);
    }

    #[test]
    fn all_convs_are_3x3_unit_stride() {
        for l in vgg16().layers() {
            if l.kind() == LayerKind::Conv2d {
                assert_eq!(l.shape().bound(crate::Dim::R), 3);
                assert!(l.is_unit_stride());
            }
        }
    }
}
