//! AlexNet (Krizhevsky et al., NeurIPS 2012) — the original two-GPU grouped
//! topology with a 227×227 input.

use crate::{Layer, Network};

/// Builds batch-1 AlexNet.
///
/// Notable for the modeling experiments: `conv1` is an 11×11 convolution
/// with **stride 4** and the last three layers are **fully connected** —
/// both shapes severely underutilize dataflows designed around unit-stride
/// sliding-window reuse (the paper's Fig. 3 observation).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::alexnet;
/// let net = alexnet();
/// assert_eq!(net.layers().len(), 8);
/// assert!(!net.layers()[0].is_unit_stride());
/// ```
pub fn alexnet() -> Network {
    Network::new("alexnet")
        // 227x227x3 -> 55x55x96, 11x11 stride 4.
        .push(Layer::conv2d("conv1", 1, 96, 3, 55, 55, 11, 11).with_stride(4, 4))
        // After 3x3/2 max-pool: 27x27x96. Grouped 5x5.
        .push(Layer::conv2d("conv2", 1, 256, 96, 27, 27, 5, 5).with_groups(2))
        // After pool: 13x13x256.
        .push(Layer::conv2d("conv3", 1, 384, 256, 13, 13, 3, 3))
        .push(Layer::conv2d("conv4", 1, 384, 384, 13, 13, 3, 3).with_groups(2))
        .push(Layer::conv2d("conv5", 1, 256, 384, 13, 13, 3, 3).with_groups(2))
        // After pool: 6x6x256 = 9216 inputs.
        .push(Layer::fully_connected("fc6", 1, 4096, 9216))
        .push(Layer::fully_connected("fc7", 1, 4096, 4096))
        .push(Layer::fully_connected("fc8", 1, 1000, 4096))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, LayerKind, TensorKind};

    #[test]
    fn conv1_shape() {
        let net = alexnet();
        let conv1 = &net.layers()[0];
        assert_eq!(conv1.shape()[Dim::M], 96);
        assert_eq!(conv1.stride(), (4, 4));
        assert_eq!(conv1.input_rows(55, 11), 227);
        assert_eq!(conv1.macs(), 96 * 3 * 55 * 55 * 121);
    }

    #[test]
    fn grouped_layers() {
        let net = alexnet();
        let conv2 = &net.layers()[1];
        assert_eq!(conv2.groups(), 2);
        assert_eq!(conv2.shape()[Dim::M], 128);
        assert_eq!(conv2.shape()[Dim::C], 48);
    }

    #[test]
    fn fc_macs() {
        let net = alexnet();
        let fc: u64 = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::FullyConnected)
            .map(Layer::macs)
            .sum();
        assert_eq!(fc, 4096 * 9216 + 4096 * 4096 + 1000 * 4096);
    }

    #[test]
    fn fc_layers_dominate_weights() {
        let net = alexnet();
        let fc_weights: u64 = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::FullyConnected)
            .map(|l| l.tensor_elements(TensorKind::Weight))
            .sum();
        assert!(
            fc_weights * 10 > net.total_weights() * 9,
            "FC >90% of weights"
        );
    }
}
