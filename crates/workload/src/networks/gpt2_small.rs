//! GPT-2 small (Radford et al., 2019) decoder: the prefill phase at the
//! model's full 1024-token context, and the autoregressive decode phase
//! (one GEMV-shaped step per token against a growing KV cache).

use crate::attention::{encoder_block_macs, push_encoder_block};
use crate::decode::{decode_block_macs, decode_trace, push_decode_block};
use crate::{Layer, Network};

/// Prefill sequence length (the model's full context window).
pub const GPT2_SMALL_SEQ: usize = 1024;
/// Model width.
pub const GPT2_SMALL_D_MODEL: usize = 768;
/// Attention heads per layer.
pub const GPT2_SMALL_HEADS: usize = 12;
/// MLP hidden width.
pub const GPT2_SMALL_D_FF: usize = 3072;
/// Decoder layers.
pub const GPT2_SMALL_LAYERS: usize = 12;
/// BPE vocabulary size (the LM head's output width).
pub const GPT2_SMALL_VOCAB: usize = 50257;

/// Builds batch-1 GPT-2 small in its *prefill* phase: 12 decoder blocks
/// over the full 1024-token context, plus the tied LM head projecting the
/// final position onto the 50257-token vocabulary (97 matmul layers).
///
/// Causal masking zeroes roughly half of each logits/attend product, but
/// dense hardware iterates the full rectangle; charging the full GEMM
/// matches how dense accelerators (and this model's padded-MAC
/// accounting) execute prefill. The decode phase — one token per step,
/// GEMV-shaped — is a separate future workload (see ROADMAP).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::gpt2_small;
/// let net = gpt2_small();
/// assert_eq!(net.layers().len(), 97);
/// // ~106 GMACs of decoder blocks plus the single-position LM head.
/// assert!(net.total_macs() > 100_000_000_000);
/// ```
pub fn gpt2_small() -> Network {
    let mut net = Network::new("gpt2-small");
    for block in 0..GPT2_SMALL_LAYERS {
        net = push_encoder_block(
            net,
            &format!("decoder.{block}"),
            GPT2_SMALL_SEQ,
            GPT2_SMALL_D_MODEL,
            GPT2_SMALL_HEADS,
            GPT2_SMALL_D_FF,
        );
    }
    // Prefill only needs next-token logits for the last position.
    net.push(Layer::matmul(
        "lm-head",
        1,
        GPT2_SMALL_VOCAB,
        GPT2_SMALL_D_MODEL,
        1,
    ))
}

/// Closed-form MAC count of [`gpt2_small`].
pub fn gpt2_small_macs() -> u64 {
    GPT2_SMALL_LAYERS as u64
        * encoder_block_macs(GPT2_SMALL_SEQ, GPT2_SMALL_D_MODEL, GPT2_SMALL_D_FF)
        + (GPT2_SMALL_VOCAB * GPT2_SMALL_D_MODEL) as u64
}

/// Builds one batch-1 GPT-2 small *decode* step with `kv_len` tokens
/// already cached: 12 decoder blocks of seq-1 GEMVs attending over
/// `kv_len + 1` positions, plus the LM head (97 layers, like prefill).
///
/// `kv_len` counts the tokens cached *before* the step; the step appends
/// the new token's K/V and attends over the result, so `kv_len = 0` is
/// the first generated token. See [`crate::DecodePhase`] for the pinned
/// semantics (per-sample cache replication, append accounting).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::{gpt2_small_decode, gpt2_small_decode_macs};
/// let net = gpt2_small_decode(1023);
/// assert_eq!(net.layers().len(), 97);
/// assert_eq!(net.total_macs(), gpt2_small_decode_macs(1023));
/// ```
pub fn gpt2_small_decode(kv_len: usize) -> Network {
    gpt2_small_decode_bucketed(kv_len, 1)
}

/// [`gpt2_small_decode`] with the attend length padded up to multiples
/// of `kv_bucket` (hardware tile / KV-page granularity): all steps
/// inside one bucket share every layer signature, which is what lets an
/// `EvalSession` answer a long decode trace with a handful of mapping
/// searches.
pub fn gpt2_small_decode_bucketed(kv_len: usize, kv_bucket: usize) -> Network {
    let mut net = Network::new(format!("gpt2-small-decode@kv{kv_len}"));
    for block in 0..GPT2_SMALL_LAYERS {
        net = push_decode_block(
            net,
            &format!("decoder.{block}"),
            GPT2_SMALL_D_MODEL,
            GPT2_SMALL_HEADS,
            GPT2_SMALL_D_FF,
            kv_len,
            kv_bucket,
        );
    }
    net.push(Layer::gemv(
        "lm-head",
        1,
        GPT2_SMALL_VOCAB,
        GPT2_SMALL_D_MODEL,
    ))
}

/// Closed-form MAC count of [`gpt2_small_decode`] (bucket 1).
pub fn gpt2_small_decode_macs(kv_len: usize) -> u64 {
    GPT2_SMALL_LAYERS as u64 * decode_block_macs(kv_len + 1, GPT2_SMALL_D_MODEL, GPT2_SMALL_D_FF)
        + (GPT2_SMALL_VOCAB * GPT2_SMALL_D_MODEL) as u64
}

/// A GPT-2 small decode trace: `steps` per-step networks starting with
/// `start_kv` cached tokens, the cache growing by one token per step.
/// Yields `(kv_len, network)` pairs; see
/// [`gpt2_small_decode_bucketed`] for what `kv_bucket` buys.
pub fn gpt2_small_decode_trace(
    start_kv: usize,
    steps: usize,
    kv_bucket: usize,
) -> impl Iterator<Item = (usize, Network)> {
    decode_trace(start_kv, steps, move |kv_len| {
        gpt2_small_decode_bucketed(kv_len, kv_bucket)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_closed_form() {
        assert_eq!(gpt2_small().total_macs(), gpt2_small_macs());
        // 12 * (4*768^2*1024 + 2*1024^2*768 + 2*768*3072*1024) + 50257*768.
        assert_eq!(gpt2_small_macs(), 106_339_037_952);
    }

    #[test]
    fn logits_layers_dominate_more_than_bert() {
        // At seq 1024 the quadratic attention matmuls are ~18% of MACs,
        // versus ~2.7% for BERT at seq 128 — the scaling regime the
        // topology-aware photonic literature targets.
        let net = gpt2_small();
        let attn: u64 = net
            .layers()
            .iter()
            .filter(|l| l.groups() > 1)
            .map(Layer::macs)
            .sum();
        let share = attn as f64 / net.total_macs() as f64;
        assert!((0.15..0.25).contains(&share), "share {share:.3}");
    }

    #[test]
    fn lm_head_projects_one_position() {
        let net = gpt2_small();
        let head = net.layers().iter().find(|l| l.name() == "lm-head").unwrap();
        assert_eq!(head.macs(), (GPT2_SMALL_VOCAB * GPT2_SMALL_D_MODEL) as u64);
    }

    #[test]
    fn decode_totals_match_closed_form() {
        for kv in [0, 1, 127, 1023, 2047] {
            let net = gpt2_small_decode(kv);
            assert_eq!(net.layers().len(), 97, "kv={kv}");
            assert_eq!(net.total_macs(), gpt2_small_decode_macs(kv), "kv={kv}");
        }
    }

    #[test]
    fn decode_step_is_a_tiny_fraction_of_prefill() {
        // One decode token at the full context is ~1000x cheaper than
        // prefilling the whole context — the serving regime's economics.
        let step = gpt2_small_decode_macs(GPT2_SMALL_SEQ - 1);
        assert!(step * 500 < gpt2_small_macs(), "step {step}");
        // And every layer is a GEMV (seq = 1).
        for layer in gpt2_small_decode(GPT2_SMALL_SEQ - 1).layers() {
            assert_eq!(layer.shape()[crate::Dim::P], 1, "{}", layer.name());
        }
    }

    #[test]
    fn bucketed_trace_dedupes_signatures() {
        use std::collections::HashSet;
        let mut unique = HashSet::new();
        let mut layers = 0usize;
        for (_, net) in gpt2_small_decode_trace(0, 128, 64) {
            layers += net.layers().len();
            unique.extend(net.layers().iter().map(Layer::signature));
        }
        assert_eq!(layers, 128 * 97);
        // 4 KV-independent signatures (proj, fc1, fc2, lm-head) + up to 2
        // per KV-length bucket (logits, attend); 128 steps at bucket 64
        // span attend lengths {64, 128} -> 2 buckets. At attend length 64
        // (= d_head) logits and attend are transposed nests with equal
        // per-group bounds, so that bucket contributes one signature.
        assert_eq!(unique.len(), 4 + 1 + 2);
    }
}
