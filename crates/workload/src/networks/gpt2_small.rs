//! GPT-2 small (Radford et al., 2019) decoder, prefill phase, at the
//! model's full 1024-token context.

use crate::attention::{encoder_block_macs, push_encoder_block};
use crate::{Layer, Network};

/// Prefill sequence length (the model's full context window).
pub const GPT2_SMALL_SEQ: usize = 1024;
/// Model width.
pub const GPT2_SMALL_D_MODEL: usize = 768;
/// Attention heads per layer.
pub const GPT2_SMALL_HEADS: usize = 12;
/// MLP hidden width.
pub const GPT2_SMALL_D_FF: usize = 3072;
/// Decoder layers.
pub const GPT2_SMALL_LAYERS: usize = 12;
/// BPE vocabulary size (the LM head's output width).
pub const GPT2_SMALL_VOCAB: usize = 50257;

/// Builds batch-1 GPT-2 small in its *prefill* phase: 12 decoder blocks
/// over the full 1024-token context, plus the tied LM head projecting the
/// final position onto the 50257-token vocabulary (97 matmul layers).
///
/// Causal masking zeroes roughly half of each logits/attend product, but
/// dense hardware iterates the full rectangle; charging the full GEMM
/// matches how dense accelerators (and this model's padded-MAC
/// accounting) execute prefill. The decode phase — one token per step,
/// GEMV-shaped — is a separate future workload (see ROADMAP).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::gpt2_small;
/// let net = gpt2_small();
/// assert_eq!(net.layers().len(), 97);
/// // ~106 GMACs of decoder blocks plus the single-position LM head.
/// assert!(net.total_macs() > 100_000_000_000);
/// ```
pub fn gpt2_small() -> Network {
    let mut net = Network::new("gpt2-small");
    for block in 0..GPT2_SMALL_LAYERS {
        net = push_encoder_block(
            net,
            &format!("decoder.{block}"),
            GPT2_SMALL_SEQ,
            GPT2_SMALL_D_MODEL,
            GPT2_SMALL_HEADS,
            GPT2_SMALL_D_FF,
        );
    }
    // Prefill only needs next-token logits for the last position.
    net.push(Layer::matmul(
        "lm-head",
        1,
        GPT2_SMALL_VOCAB,
        GPT2_SMALL_D_MODEL,
        1,
    ))
}

/// Closed-form MAC count of [`gpt2_small`].
pub fn gpt2_small_macs() -> u64 {
    GPT2_SMALL_LAYERS as u64
        * encoder_block_macs(GPT2_SMALL_SEQ, GPT2_SMALL_D_MODEL, GPT2_SMALL_D_FF)
        + (GPT2_SMALL_VOCAB * GPT2_SMALL_D_MODEL) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_closed_form() {
        assert_eq!(gpt2_small().total_macs(), gpt2_small_macs());
        // 12 * (4*768^2*1024 + 2*1024^2*768 + 2*768*3072*1024) + 50257*768.
        assert_eq!(gpt2_small_macs(), 106_339_037_952);
    }

    #[test]
    fn logits_layers_dominate_more_than_bert() {
        // At seq 1024 the quadratic attention matmuls are ~18% of MACs,
        // versus ~2.7% for BERT at seq 128 — the scaling regime the
        // topology-aware photonic literature targets.
        let net = gpt2_small();
        let attn: u64 = net
            .layers()
            .iter()
            .filter(|l| l.groups() > 1)
            .map(Layer::macs)
            .sum();
        let share = attn as f64 / net.total_macs() as f64;
        assert!((0.15..0.25).contains(&share), "share {share:.3}");
    }

    #[test]
    fn lm_head_projects_one_position() {
        let net = gpt2_small();
        let head = net.layers().iter().find(|l| l.name() == "lm-head").unwrap();
        assert_eq!(head.macs(), (GPT2_SMALL_VOCAB * GPT2_SMALL_D_MODEL) as u64);
    }
}
