//! BERT-base encoder (Devlin et al., NAACL 2019) at sequence length 128.

use crate::attention::{encoder_block_macs, push_encoder_block};
use crate::Network;

/// Sequence length used for the built-in BERT-base workload.
pub const BERT_BASE_SEQ: usize = 128;
/// Model width.
pub const BERT_BASE_D_MODEL: usize = 768;
/// Attention heads per layer.
pub const BERT_BASE_HEADS: usize = 12;
/// MLP hidden width.
pub const BERT_BASE_D_FF: usize = 3072;
/// Encoder layers.
pub const BERT_BASE_LAYERS: usize = 12;

/// Builds batch-1 BERT-base: 12 encoder blocks of 768-wide, 12-head
/// attention plus a 3072-wide MLP, at sequence length 128 (96 matmul
/// layers). Embedding lookups and the pooler carry no steady-state MACs
/// and are omitted.
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::bert_base;
/// let net = bert_base();
/// assert_eq!(net.layers().len(), 96);
/// // ~11.2 GMACs at sequence length 128.
/// assert!(net.total_macs() > 11_000_000_000);
/// ```
pub fn bert_base() -> Network {
    let mut net = Network::new("bert-base");
    for block in 0..BERT_BASE_LAYERS {
        net = push_encoder_block(
            net,
            &format!("encoder.{block}"),
            BERT_BASE_SEQ,
            BERT_BASE_D_MODEL,
            BERT_BASE_HEADS,
            BERT_BASE_D_FF,
        );
    }
    net
}

/// Closed-form MAC count of [`bert_base`], for cross-checking the
/// layer-by-layer construction.
pub fn bert_base_macs() -> u64 {
    BERT_BASE_LAYERS as u64 * encoder_block_macs(BERT_BASE_SEQ, BERT_BASE_D_MODEL, BERT_BASE_D_FF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn totals_match_closed_form() {
        assert_eq!(bert_base().total_macs(), bert_base_macs());
        // 12 * (4*768^2*128 + 2*128^2*768 + 2*768*3072*128).
        assert_eq!(bert_base_macs(), 11_173_625_856);
    }

    #[test]
    fn every_layer_is_a_matmul() {
        assert!(bert_base()
            .layers()
            .iter()
            .all(|l| l.kind() == LayerKind::Matmul));
    }

    #[test]
    fn attention_layers_are_grouped_per_head() {
        let net = bert_base();
        let grouped = net.layers().iter().filter(|l| l.groups() == 12).count();
        // logits + attend per block.
        assert_eq!(grouped, 2 * BERT_BASE_LAYERS);
    }
}
