//! MobileNetV1 (Howard et al., 2017) — depthwise-separable convolutions,
//! width multiplier 1.0, 224×224 input.
//!
//! Included as an extension workload: its depthwise layers have *no*
//! channel-level parallelism or reuse, which stresses photonic dataflows
//! built around wavelength-parallel input channels and output-channel
//! broadcast in a way none of the paper's workloads do.

use crate::{Layer, Network};

/// Builds batch-1 MobileNetV1 (1.0×, 224).
///
/// # Examples
///
/// ```
/// use lumen_workload::networks::mobilenetv1;
/// let net = mobilenetv1();
/// assert_eq!(net.layers().len(), 28);
/// assert!(net.layers().iter().any(|l| l.groups() > 1));
/// ```
pub fn mobilenetv1() -> Network {
    let mut net = Network::new("mobilenetv1")
        // Stem: 3x3 stride-2 full conv.
        .push(Layer::conv2d("conv1", 1, 32, 3, 112, 112, 3, 3).with_stride(2, 2));

    // (input channels, output channels, output size, depthwise stride)
    let blocks: [(usize, usize, usize, usize); 13] = [
        (32, 64, 112, 1),
        (64, 128, 56, 2),
        (128, 128, 56, 1),
        (128, 256, 28, 2),
        (256, 256, 28, 1),
        (256, 512, 14, 2),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 1024, 7, 2),
        (1024, 1024, 7, 1),
    ];
    for (i, (c_in, c_out, size, stride)) in blocks.into_iter().enumerate() {
        let dw = Layer::depthwise_conv2d(format!("dw{}", i + 1), 1, c_in, size, size, 3, 3)
            .with_stride(stride, stride);
        net = net.push(dw).push(Layer::conv2d(
            format!("pw{}", i + 1),
            1,
            c_out,
            c_in,
            size,
            size,
            1,
            1,
        ));
    }

    net.push(Layer::fully_connected("fc", 1, 1000, 1024))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, TensorKind};

    #[test]
    fn mac_count_matches_literature() {
        // ~569 MMACs for batch-1 MobileNetV1.
        let macs = mobilenetv1().total_macs();
        assert!(
            (520_000_000..620_000_000).contains(&macs),
            "MobileNetV1 MACs out of range: {macs}"
        );
    }

    #[test]
    fn weight_count_matches_literature() {
        // ~4.2M conv+fc weights.
        let w = mobilenetv1().total_weights();
        assert!((3_900_000..4_500_000).contains(&w), "weights: {w}");
    }

    #[test]
    fn depthwise_layers_are_grouped() {
        let net = mobilenetv1();
        let dw: Vec<_> = net
            .layers()
            .iter()
            .filter(|l| l.kind() == LayerKind::DepthwiseConv2d)
            .collect();
        assert_eq!(dw.len(), 13);
        for layer in dw {
            assert_eq!(
                layer.groups(),
                layer.tensor_elements(TensorKind::Weight) as usize / 9
            );
        }
    }

    #[test]
    fn pointwise_dominates_macs() {
        // The 1x1 convolutions carry ~2/3 of the MACs.
        let net = mobilenetv1();
        let pw: u64 = net
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("pw"))
            .map(Layer::macs)
            .sum();
        assert!(pw * 3 > net.total_macs() * 2 - net.total_macs() / 10);
    }
}
