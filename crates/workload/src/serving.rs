//! Continuous batching of mixed-length serving traffic.
//!
//! Real serving is not a uniform batch: a scheduler admits requests of
//! mixed prompt/output lengths into a fixed number of decode slots,
//! every active request generates one token per step, and finished
//! requests retire so waiting ones can take their slot. The per-step
//! *active set* is therefore heterogeneous — different requests sit at
//! different KV lengths — and its composition changes every step.
//!
//! Three pieces model that regime:
//!
//! * [`RequestMix`] — a deterministic population of requests (per-request
//!   prompt and output lengths), with seeded generators for the shapes
//!   serving traffic actually takes: [`RequestMix::uniform`],
//!   [`RequestMix::bimodal`] (chat + long-document), and
//!   [`RequestMix::long_tail`] (geometric output tail).
//! * [`BatchSchedule`] — the step-level continuous-batching simulation:
//!   FIFO admission on free slot, retirement on completion, and one
//!   [`ScheduleStep`] snapshot per step recording each active request's
//!   KV length *before* the step (the [`DecodePhase`] convention).
//! * [`ServingModel`] — lowers one scheduler step into bucketed decode
//!   layers. Active requests are grouped by bucketed attend length (the
//!   [`DecodePhase::with_kv_bucket`] machinery), each group becoming one
//!   batched stack of decode blocks, so two steps whose active sets
//!   bucket to the same composition produce networks with identical
//!   [`crate::LayerSignature`]s — a multi-thousand-step trace through an
//!   `EvalSession` costs mapping searches bounded by the number of
//!   distinct *(bucket, group-size)* pairs, not the step count.
//!
//! # Examples
//!
//! ```
//! use lumen_workload::serving::{BatchSchedule, RequestMix, ServingModel};
//!
//! let mix = RequestMix::uniform(4, 128, 8);
//! let schedule = BatchSchedule::build(&mix, 2);
//! // 4 requests x 8 tokens over 2 slots: 16 steps, always full.
//! assert_eq!(schedule.total_steps(), 16);
//! assert_eq!(schedule.total_tokens(), 32);
//! assert!((schedule.mean_occupancy() - 1.0).abs() < 1e-12);
//!
//! let model = ServingModel::gpt2_small();
//! let step = &schedule.steps()[0];
//! let net = model.lower_step(&step.kv_lens(), 64);
//! assert_eq!(net.total_macs(), model.step_macs(&step.kv_lens(), 64));
//! ```

use crate::decode::decode_block_macs;
use crate::{DecodePhase, Layer, Network};
use std::collections::BTreeMap;

/// One serving request: `prompt` tokens already in the KV cache when
/// decoding starts (prefill is assumed done), `output` tokens to
/// generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Prompt tokens resident in the cache before the first decode step.
    pub prompt: usize,
    /// Tokens the request generates before retiring (>= 1).
    pub output: usize,
}

impl Request {
    /// Builds a request description.
    ///
    /// # Panics
    ///
    /// Panics if `output` is zero — a request that generates nothing
    /// never occupies a decode slot.
    pub fn new(prompt: usize, output: usize) -> Request {
        assert!(output > 0, "a request must generate at least one token");
        Request { prompt, output }
    }
}

/// SplitMix64: the deterministic generator behind the seeded mixes.
/// Small, stable across platforms, and good enough for workload shapes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[lo, hi]` (inclusive) from the generator state.
///
/// # Panics
///
/// Panics on an inverted range — reachable from the public generators
/// (e.g. [`RequestMix::long_tail`]'s prompt bounds), so this must fail
/// loudly in release builds too rather than underflow.
fn draw_range(state: &mut u64, lo: usize, hi: usize) -> usize {
    assert!(lo <= hi, "inverted range: lo={lo} > hi={hi}");
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

/// A deterministic population of serving requests.
///
/// The generators are pure functions of their arguments (seed included),
/// so a mix is reproducible across runs, platforms and thread counts —
/// the same guarantee the golden suite relies on everywhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMix {
    name: String,
    requests: Vec<Request>,
}

impl RequestMix {
    /// A mix from explicit requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    pub fn custom(name: impl Into<String>, requests: Vec<Request>) -> RequestMix {
        assert!(!requests.is_empty(), "a request mix cannot be empty");
        RequestMix {
            name: name.into(),
            requests,
        }
    }

    /// `count` identical requests — the degenerate mix that reproduces
    /// the uniform-batch model (and PR 4's `decode_trace` when run
    /// through a capacity-1 schedule).
    pub fn uniform(count: usize, prompt: usize, output: usize) -> RequestMix {
        RequestMix::custom(
            format!("uniform(p{prompt},o{output})"),
            vec![Request::new(prompt, output); count],
        )
    }

    /// A two-population mix: chat-style `short` requests with a
    /// `long_percent`% admixture of long-document `long` requests, both
    /// given as `(prompt, output)` pairs. Deterministic in `seed`.
    pub fn bimodal(
        seed: u64,
        count: usize,
        short: (usize, usize),
        long: (usize, usize),
        long_percent: usize,
    ) -> RequestMix {
        assert!(long_percent <= 100, "long_percent is a percentage");
        let mut state = seed;
        let requests = (0..count)
            .map(|_| {
                let (prompt, output) = if draw_range(&mut state, 0, 99) < long_percent {
                    long
                } else {
                    short
                };
                Request::new(prompt, output)
            })
            .collect();
        RequestMix::custom(format!("bimodal({long_percent}% long)"), requests)
    }

    /// A long-tail mix: prompts uniform in `prompt` (inclusive bounds),
    /// outputs `output_base << k` with `P(k) = 2^-(k+1)` capped at
    /// `output_base << max_doublings` — the geometric output tail that
    /// makes continuous batching pay off over static batching.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `output_base` is zero or the prompt bounds are
    /// inverted (`prompt.0 > prompt.1`).
    pub fn long_tail(
        seed: u64,
        count: usize,
        prompt: (usize, usize),
        output_base: usize,
        max_doublings: u32,
    ) -> RequestMix {
        assert!(output_base > 0, "output_base must be nonzero");
        let mut state = seed;
        let requests = (0..count)
            .map(|_| {
                let p = draw_range(&mut state, prompt.0, prompt.1);
                let mut doublings = 0;
                while doublings < max_doublings && draw_range(&mut state, 0, 1) == 1 {
                    doublings += 1;
                }
                Request::new(p, output_base << doublings)
            })
            .collect();
        RequestMix::custom(
            format!("long-tail(o{output_base}<<{max_doublings})"),
            requests,
        )
    }

    /// The mix's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The requests, in arrival (admission) order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `false` always — construction rejects empty mixes.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total tokens the whole mix generates (the schedule's token count).
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output as u64).sum()
    }
}

/// One active decode slot at one step: which request occupies it and the
/// tokens cached *before* the step (the [`DecodePhase::kv_len`]
/// convention — the step appends the new token's K/V and attends over
/// `kv_len + 1` positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSlot {
    /// Index of the request in its [`RequestMix`].
    pub request: usize,
    /// Tokens cached before the step: prompt + tokens generated so far.
    pub kv_len: usize,
}

/// The active set of one scheduler step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    active: Vec<ActiveSlot>,
}

impl ScheduleStep {
    /// The active slots, in admission order.
    pub fn active(&self) -> &[ActiveSlot] {
        &self.active
    }

    /// Requests decoding this step (each generates exactly one token).
    pub fn occupancy(&self) -> usize {
        self.active.len()
    }

    /// The heterogeneous KV lengths of the active set, admission order.
    pub fn kv_lens(&self) -> Vec<usize> {
        self.active.iter().map(|s| s.kv_len).collect()
    }
}

/// A continuous-batching schedule: the full step-by-step trace of a
/// [`RequestMix`] through `capacity` decode slots.
///
/// The policy, pinned by `tests/serving_properties.rs`:
///
/// * All requests are queued at step 0 and admitted FIFO whenever a slot
///   is free (admission happens at the *start* of a step, so a slot
///   freed by a retirement is refilled on the very next step).
/// * Every active request generates exactly one token per step; a
///   request retires at the end of the step that produces its last
///   token.
/// * The schedule ends when the last request retires, so every step has
///   a nonempty active set and occupancy never exceeds `capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSchedule {
    capacity: usize,
    steps: Vec<ScheduleStep>,
}

impl BatchSchedule {
    /// Runs the scheduler over `mix` with `capacity` decode slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn build(mix: &RequestMix, capacity: usize) -> BatchSchedule {
        assert!(capacity > 0, "a schedule needs at least one decode slot");
        let mut next_admission = 0usize;
        // (request index, tokens generated so far)
        let mut active: Vec<(usize, usize)> = Vec::with_capacity(capacity);
        let mut steps = Vec::new();
        while next_admission < mix.len() || !active.is_empty() {
            while active.len() < capacity && next_admission < mix.len() {
                active.push((next_admission, 0));
                next_admission += 1;
            }
            steps.push(ScheduleStep {
                active: active
                    .iter()
                    .map(|&(request, generated)| ActiveSlot {
                        request,
                        kv_len: mix.requests()[request].prompt + generated,
                    })
                    .collect(),
            });
            for slot in &mut active {
                slot.1 += 1;
            }
            active.retain(|&(request, generated)| generated < mix.requests()[request].output);
        }
        BatchSchedule { capacity, steps }
    }

    /// The slot count the schedule was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-step active sets, in execution order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// Steps until the last request retires.
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }

    /// Tokens generated over the whole schedule — equal to the mix's
    /// [`RequestMix::total_output_tokens`] by construction.
    pub fn total_tokens(&self) -> u64 {
        self.steps.iter().map(|s| s.occupancy() as u64).sum()
    }

    /// Mean slot occupancy over the schedule, in (0, 1].
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.total_tokens() as f64 / (self.steps.len() * self.capacity) as f64
    }
}

/// The decoder-LM shape a scheduler step lowers onto: `blocks` pre-norm
/// transformer decoder blocks (width `d_model`, `heads` heads, MLP
/// hidden width `d_ff`) plus a `vocab`-wide LM head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingModel {
    name: String,
    d_model: usize,
    heads: usize,
    d_ff: usize,
    blocks: usize,
    vocab: usize,
}

impl ServingModel {
    /// Builds a model shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `d_model` is not divisible by
    /// `heads`.
    pub fn new(
        name: impl Into<String>,
        d_model: usize,
        heads: usize,
        d_ff: usize,
        blocks: usize,
        vocab: usize,
    ) -> ServingModel {
        assert!(
            d_model > 0 && heads > 0 && d_ff > 0 && blocks > 0 && vocab > 0,
            "model dimensions must be nonzero"
        );
        assert!(
            d_model.is_multiple_of(heads),
            "d_model={d_model} not divisible by heads={heads}"
        );
        ServingModel {
            name: name.into(),
            d_model,
            heads,
            d_ff,
            blocks,
            vocab,
        }
    }

    /// GPT-2 small: 12 blocks, d_model 768, 12 heads, d_ff 3072, vocab
    /// 50257 — the same shape as
    /// [`crate::networks::gpt2_small_decode`], which a single-slot
    /// schedule reproduces signature for signature.
    pub fn gpt2_small() -> ServingModel {
        ServingModel::new("gpt2-small", 768, 12, 3072, 12, 50257)
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Groups `active_kv` by bucketed attend length: for each distinct
    /// `L = bucket_round_up(kv + 1)` the number of active requests whose
    /// step attends over `L` padded positions, ascending in `L`.
    ///
    /// This is the step's *bucketed composition* — the lowering is a
    /// pure function of it, so two steps with equal compositions produce
    /// networks with identical layer signatures.
    pub fn bucketed_composition(active_kv: &[usize], kv_bucket: usize) -> Vec<(usize, usize)> {
        assert!(kv_bucket > 0, "kv bucket must be nonzero");
        let mut groups: BTreeMap<usize, usize> = BTreeMap::new();
        for &kv in active_kv {
            let len = (kv + 1).div_ceil(kv_bucket) * kv_bucket;
            *groups.entry(len).or_insert(0) += 1;
        }
        groups.into_iter().collect()
    }

    /// Lowers one scheduler step into bucketed decode layers: one
    /// batched stack of decode blocks (plus LM head) per bucketed
    /// attend-length group. Within a group the whole group shares the
    /// padded attend length — exactly the [`DecodePhase::with_kv_bucket`]
    /// padded-MAC accounting — and the group size rides the batch lever
    /// (projection weights shared across the group, KV caches replicated
    /// per request).
    ///
    /// # Panics
    ///
    /// Panics if `active_kv` is empty or `kv_bucket` is zero.
    pub fn lower_step(&self, active_kv: &[usize], kv_bucket: usize) -> Network {
        assert!(!active_kv.is_empty(), "a step lowers a nonempty active set");
        let composition = ServingModel::bucketed_composition(active_kv, kv_bucket);
        let mut net = Network::new(format!("{}-serving@occ{}", self.name, active_kv.len()));
        for &(attend_len, group) in &composition {
            let prefix = format!("kv{attend_len}x{group}");
            for block in 0..self.blocks {
                let phase = DecodePhase::new(
                    format!("{prefix}.decoder.{block}.attn"),
                    self.d_model,
                    self.heads,
                )
                .with_kv_len(attend_len - 1)
                .with_kv_bucket(kv_bucket)
                .with_batch(group);
                for layer in phase.lower() {
                    net = net.push(layer);
                }
                net = net
                    .push(Layer::gemv(
                        format!("{prefix}.decoder.{block}.mlp.fc1"),
                        group,
                        self.d_ff,
                        self.d_model,
                    ))
                    .push(Layer::gemv(
                        format!("{prefix}.decoder.{block}.mlp.fc2"),
                        group,
                        self.d_model,
                        self.d_ff,
                    ));
            }
            net = net.push(Layer::gemv(
                format!("{prefix}.lm-head"),
                group,
                self.vocab,
                self.d_model,
            ));
        }
        net
    }

    /// Closed-form MAC count of [`ServingModel::lower_step`]: the sum
    /// over the active set of each request's padded per-token work,
    /// `blocks · (4·D² + 2·L·D + 2·D·D_ff) + vocab·D` at that request's
    /// bucketed attend length `L`.
    pub fn step_macs(&self, active_kv: &[usize], kv_bucket: usize) -> u64 {
        assert!(kv_bucket > 0, "kv bucket must be nonzero");
        active_kv
            .iter()
            .map(|&kv| {
                let len = (kv + 1).div_ceil(kv_bucket) * kv_bucket;
                self.blocks as u64 * decode_block_macs(len, self.d_model, self.d_ff)
                    + (self.vocab * self.d_model) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerSignature;
    use std::collections::HashSet;

    #[test]
    fn uniform_mix_is_identical_requests() {
        let mix = RequestMix::uniform(5, 64, 8);
        assert_eq!(mix.len(), 5);
        assert!(mix
            .requests()
            .iter()
            .all(|r| r.prompt == 64 && r.output == 8));
        assert_eq!(mix.total_output_tokens(), 40);
        assert!(!mix.is_empty());
    }

    #[test]
    fn seeded_mixes_are_deterministic() {
        let a = RequestMix::bimodal(7, 32, (64, 16), (512, 64), 25);
        let b = RequestMix::bimodal(7, 32, (64, 16), (512, 64), 25);
        assert_eq!(a, b);
        let c = RequestMix::bimodal(8, 32, (64, 16), (512, 64), 25);
        assert_ne!(a, c, "a different seed draws a different mix");

        let t = RequestMix::long_tail(3, 64, (32, 256), 16, 3);
        assert_eq!(t, RequestMix::long_tail(3, 64, (32, 256), 16, 3));
        for r in t.requests() {
            assert!((32..=256).contains(&r.prompt));
            assert!(r.output >= 16 && r.output <= 16 << 3);
            assert!((r.output / 16).is_power_of_two());
        }
    }

    #[test]
    fn bimodal_mixes_both_populations() {
        let mix = RequestMix::bimodal(11, 64, (64, 16), (512, 64), 25);
        let long = mix.requests().iter().filter(|r| r.prompt == 512).count();
        assert!(long > 0 && long < 64, "both populations present: {long}");
    }

    #[test]
    fn scheduler_fills_slots_and_drains() {
        // 3 requests of 2 tokens over 2 slots: steps are
        // {0,1} {0,1} {2} {2}.
        let mix = RequestMix::uniform(3, 10, 2);
        let schedule = BatchSchedule::build(&mix, 2);
        assert_eq!(schedule.total_steps(), 4);
        assert_eq!(schedule.total_tokens(), 6);
        let occ: Vec<usize> = schedule
            .steps()
            .iter()
            .map(ScheduleStep::occupancy)
            .collect();
        assert_eq!(occ, vec![2, 2, 1, 1]);
        // Request 2 waits two steps, then runs with a growing cache.
        assert_eq!(schedule.steps()[2].active()[0].request, 2);
        assert_eq!(schedule.steps()[2].active()[0].kv_len, 10);
        assert_eq!(schedule.steps()[3].active()[0].kv_len, 11);
    }

    #[test]
    fn retirement_frees_the_slot_for_the_next_step() {
        // A 1-token request and a 3-token request over one slot: the
        // short one finishes at step 0 and the long one starts at step 1.
        let mix = RequestMix::custom("m", vec![Request::new(4, 1), Request::new(8, 3)]);
        let schedule = BatchSchedule::build(&mix, 1);
        assert_eq!(schedule.total_steps(), 4);
        let reqs: Vec<usize> = schedule
            .steps()
            .iter()
            .map(|s| s.active()[0].request)
            .collect();
        assert_eq!(reqs, vec![0, 1, 1, 1]);
        assert_eq!(schedule.steps()[1].kv_lens(), vec![8]);
        assert_eq!(schedule.steps()[3].kv_lens(), vec![10]);
    }

    #[test]
    fn composition_groups_by_bucket() {
        // kv 0, 63, 64 at bucket 64: attend lengths 1->64, 64->64,
        // 65->128.
        let comp = ServingModel::bucketed_composition(&[0, 63, 64], 64);
        assert_eq!(comp, vec![(64, 2), (128, 1)]);
    }

    #[test]
    fn lower_step_matches_closed_form() {
        let model = ServingModel::gpt2_small();
        for kv in [vec![0], vec![5, 5, 5], vec![0, 100, 300, 301]] {
            for bucket in [1, 64, 256] {
                let net = model.lower_step(&kv, bucket);
                assert_eq!(
                    net.total_macs(),
                    model.step_macs(&kv, bucket),
                    "kv={kv:?} bucket={bucket}"
                );
            }
        }
    }

    #[test]
    fn equal_compositions_share_every_signature() {
        let model = ServingModel::new("toy", 64, 4, 128, 2, 1000);
        let sigs = |kv: &[usize]| -> HashSet<LayerSignature> {
            model
                .lower_step(kv, 32)
                .layers()
                .iter()
                .map(Layer::signature)
                .collect()
        };
        // Different exact kv lengths, same bucketed composition.
        let a = sigs(&[3, 40, 41]);
        let b = sigs(&[20, 33, 60]);
        assert_eq!(a, b, "same (bucket, count) composition, same signatures");
        // A different composition differs.
        let c = sigs(&[3, 40, 70]);
        assert_ne!(a, c);
    }

    #[test]
    fn single_slot_step_matches_decode_builder_signatures() {
        use crate::networks;
        let model = ServingModel::gpt2_small();
        for (kv, bucket) in [(0usize, 64usize), (127, 64), (500, 128)] {
            let serving = model.lower_step(&[kv], bucket);
            let decode = networks::gpt2_small_decode_bucketed(kv, bucket);
            assert_eq!(serving.layers().len(), decode.layers().len());
            assert_eq!(serving.total_macs(), decode.total_macs());
            for (s, d) in serving.layers().iter().zip(decode.layers()) {
                assert_eq!(
                    s.signature(),
                    d.signature(),
                    "kv={kv} bucket={bucket}: {} vs {}",
                    s.name(),
                    d.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_requests_are_rejected() {
        let _ = Request::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one decode slot")]
    fn zero_capacity_is_rejected() {
        let _ = BatchSchedule::build(&RequestMix::uniform(1, 1, 1), 0);
    }
}
