//! Operand tensors and their dimension projections.

use crate::{Dim, DimSet};
use std::fmt;

/// One of the three operand tensors of a convolutional layer.
///
/// Each tensor *projects* onto a subset of the seven loop dimensions; loop
/// dimensions outside the projection are *reuse* dimensions for that tensor
/// (iterating them revisits the same data).
///
/// # Examples
///
/// ```
/// use lumen_workload::{Dim, TensorKind};
/// assert!(TensorKind::Weight.is_relevant(Dim::M));
/// assert!(!TensorKind::Weight.is_relevant(Dim::N)); // batch reuses weights
/// assert!(TensorKind::Input.is_relevant(Dim::P));   // sliding window
/// assert!(TensorKind::Output.is_relevant(Dim::Q));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TensorKind {
    /// Filter weights `W[M, C, R, S]`.
    Weight,
    /// Input activations `I[N, C, H, W]`.
    Input,
    /// Output activations / partial sums `O[N, M, P, Q]`.
    Output,
}

impl TensorKind {
    /// All tensors, in canonical order.
    pub const ALL: [TensorKind; 3] = [TensorKind::Weight, TensorKind::Input, TensorKind::Output];

    /// Canonical index (0..3).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            TensorKind::Weight => 0,
            TensorKind::Input => 1,
            TensorKind::Output => 2,
        }
    }

    /// The loop dimensions this tensor projects onto.
    ///
    /// Input activations are relevant to `P`/`Q` *and* `R`/`S` because the
    /// sliding window couples output position and filter position into the
    /// input coordinate (`h = p·stride + r·dilation`).
    pub const fn relevant_dims(self) -> DimSet {
        match self {
            TensorKind::Weight => DimSet::EMPTY
                .with(Dim::M)
                .with(Dim::C)
                .with(Dim::R)
                .with(Dim::S),
            TensorKind::Input => DimSet::EMPTY
                .with(Dim::N)
                .with(Dim::C)
                .with(Dim::P)
                .with(Dim::Q)
                .with(Dim::R)
                .with(Dim::S),
            TensorKind::Output => DimSet::EMPTY
                .with(Dim::N)
                .with(Dim::M)
                .with(Dim::P)
                .with(Dim::Q),
        }
    }

    /// `true` if iterating `dim` changes which elements of this tensor are
    /// touched.
    #[inline]
    pub fn is_relevant(self, dim: Dim) -> bool {
        self.relevant_dims().contains(dim)
    }

    /// `true` for tensors that are read-only inputs of the layer.
    #[inline]
    pub const fn is_read_only(self) -> bool {
        matches!(self, TensorKind::Weight | TensorKind::Input)
    }

    /// The reduction dimensions (`C`, `R`, `S`): iterating them accumulates
    /// partial sums into the *same* output element. Only meaningful for
    /// [`TensorKind::Output`] traffic analysis.
    pub const fn reduction_dims() -> DimSet {
        DimSet::EMPTY.with(Dim::C).with(Dim::R).with(Dim::S)
    }
}

impl fmt::Display for TensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TensorKind::Weight => "Weight",
            TensorKind::Input => "Input",
            TensorKind::Output => "Output",
        };
        write!(f, "{name}")
    }
}

/// A subset of the three operand tensors, e.g. "which tensors does this
/// buffer keep" or "which tensors does this converter transduce".
///
/// # Examples
///
/// ```
/// use lumen_workload::{TensorKind, TensorSet};
/// let io = TensorSet::from_kinds(&[TensorKind::Input, TensorKind::Output]);
/// assert!(io.contains(TensorKind::Input));
/// assert!(!io.contains(TensorKind::Weight));
/// assert_eq!(TensorSet::all().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TensorSet(u8);

impl TensorSet {
    /// The empty set.
    pub const EMPTY: TensorSet = TensorSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> TensorSet {
        TensorSet(0)
    }

    /// All three tensors.
    #[inline]
    pub const fn all() -> TensorSet {
        TensorSet(0b111)
    }

    /// Only the given tensor.
    #[inline]
    pub const fn only(kind: TensorKind) -> TensorSet {
        TensorSet(1 << kind.index())
    }

    /// Builds a set from a slice of tensors.
    pub fn from_kinds(kinds: &[TensorKind]) -> TensorSet {
        let mut s = TensorSet(0);
        for &k in kinds {
            s = s.with(k);
        }
        s
    }

    /// Returns this set with `kind` added.
    #[inline]
    pub const fn with(self, kind: TensorKind) -> TensorSet {
        TensorSet(self.0 | (1 << kind.index()))
    }

    /// Returns this set with `kind` removed.
    #[inline]
    pub const fn without(self, kind: TensorKind) -> TensorSet {
        TensorSet(self.0 & !(1 << kind.index()))
    }

    /// `true` if `kind` is a member.
    #[inline]
    pub const fn contains(self, kind: TensorKind) -> bool {
        self.0 & (1 << kind.index()) != 0
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if the set has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in canonical order.
    pub fn iter(self) -> impl Iterator<Item = TensorKind> {
        TensorKind::ALL
            .into_iter()
            .filter(move |k| self.contains(*k))
    }
}

impl FromIterator<TensorKind> for TensorSet {
    fn from_iter<I: IntoIterator<Item = TensorKind>>(iter: I) -> TensorSet {
        iter.into_iter().fold(TensorSet::new(), TensorSet::with)
    }
}

impl fmt::Display for TensorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

/// A value of type `T` per [`TensorKind`].
///
/// # Examples
///
/// ```
/// use lumen_workload::{TensorKind, TensorMap};
/// let mut bits = TensorMap::filled(8u32);
/// bits[TensorKind::Output] = 16;
/// assert_eq!(bits[TensorKind::Weight], 8);
/// assert_eq!(bits[TensorKind::Output], 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TensorMap<T> {
    values: [T; 3],
}

impl<T> TensorMap<T> {
    /// Builds a map from a function of the tensor kind.
    pub fn from_fn(mut f: impl FnMut(TensorKind) -> T) -> TensorMap<T> {
        TensorMap {
            values: TensorKind::ALL.map(&mut f),
        }
    }

    /// Iterates `(kind, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (TensorKind, &T)> {
        TensorKind::ALL
            .iter()
            .map(move |&k| (k, &self.values[k.index()]))
    }
}

impl<T: Copy> TensorMap<T> {
    /// Builds a map with every tensor set to `value`.
    pub fn filled(value: T) -> TensorMap<T> {
        TensorMap { values: [value; 3] }
    }
}

impl<T> std::ops::Index<TensorKind> for TensorMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, kind: TensorKind) -> &T {
        &self.values[kind.index()]
    }
}

impl<T> std::ops::IndexMut<TensorKind> for TensorMap<T> {
    #[inline]
    fn index_mut(&mut self, kind: TensorKind) -> &mut T {
        &mut self.values[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_map_indexing() {
        let mut m = TensorMap::filled(0usize);
        m[TensorKind::Input] = 7;
        assert_eq!(m[TensorKind::Input], 7);
        assert_eq!(m.iter().count(), 3);
        let built = TensorMap::from_fn(TensorKind::index);
        assert_eq!(built[TensorKind::Output], 2);
    }

    #[test]
    fn weight_projection() {
        let w = TensorKind::Weight.relevant_dims();
        assert!(
            w.contains(Dim::M) && w.contains(Dim::C) && w.contains(Dim::R) && w.contains(Dim::S)
        );
        assert!(!w.contains(Dim::N) && !w.contains(Dim::P) && !w.contains(Dim::Q));
    }

    #[test]
    fn input_projection_includes_window_dims() {
        let i = TensorKind::Input.relevant_dims();
        for d in [Dim::N, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S] {
            assert!(i.contains(d), "input should be relevant to {d}");
        }
        assert!(!i.contains(Dim::M));
    }

    #[test]
    fn output_projection() {
        let o = TensorKind::Output.relevant_dims();
        for d in [Dim::N, Dim::M, Dim::P, Dim::Q] {
            assert!(o.contains(d));
        }
        for d in [Dim::C, Dim::R, Dim::S] {
            assert!(!o.contains(d), "reduction dim {d} must not change outputs");
        }
    }

    #[test]
    fn every_dim_is_relevant_to_some_tensor() {
        for d in Dim::ALL {
            assert!(
                TensorKind::ALL.iter().any(|t| t.is_relevant(d)),
                "dim {d} relevant to no tensor"
            );
        }
    }

    #[test]
    fn reduction_dims_match_dim_flag() {
        for d in Dim::ALL {
            assert_eq!(TensorKind::reduction_dims().contains(d), d.is_reduction());
        }
    }

    #[test]
    fn tensor_set_ops() {
        let s = TensorSet::only(TensorKind::Weight).with(TensorKind::Output);
        assert_eq!(s.len(), 2);
        assert!(s.contains(TensorKind::Weight));
        assert!(!s.contains(TensorKind::Input));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![TensorKind::Weight, TensorKind::Output]);
        assert_eq!(s.without(TensorKind::Weight).len(), 1);
        assert_eq!(format!("{s}"), "{Weight,Output}");
    }

    #[test]
    fn read_only_flags() {
        assert!(TensorKind::Weight.is_read_only());
        assert!(TensorKind::Input.is_read_only());
        assert!(!TensorKind::Output.is_read_only());
    }
}
