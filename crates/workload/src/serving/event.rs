//! The event-driven serving core: arrival -> admission/prefill ->
//! token -> retire.
//!
//! [`ServingSchedule::try_build`] runs a discrete-event loop in
//! scheduler-step time. Each step it (1) moves newly arrived requests
//! into the admission queue, (2) fills free slots from the queue under
//! the configured [`AdmissionPolicy`], (3) snapshots the active set —
//! slots still prefilling their prompt and slots decoding — and (4)
//! advances every slot by one event: a prefill chunk or one generated
//! token. Steps where nothing is active and nothing is queued are
//! fast-forwarded (the server is work-conserving; an idle server
//! prefills an arriving prompt immediately), so every emitted
//! [`ServingStep`] carries work and the wall index records the gap.
//!
//! Prefill is where PR 5's free lunch ends: under
//! [`PrefillMode::OnAdmission`] an admitted request occupies its slot
//! for one or more *prefill events* — each lowering a prompt chunk
//! through the dense attention path — before its first decode step, so
//! prompt tokens cost MACs, energy and cycles exactly once per
//! request. [`PrefillMode::Resident`] reproduces the PR 5 accounting
//! (prompts materialize pre-cached) and is what keeps
//! [`BatchSchedule`](super::BatchSchedule) bit-identical for the
//! legacy goldens: with a closed loop, FIFO admission and resident
//! prefill, this core reduces exactly to the old scheduler loop.

use super::{ActiveSlot, AdmissionPolicy, ArrivalProcess, RequestMix, ServingError};

/// How a request's prompt enters the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillMode {
    /// PR 5 semantics: the prompt is assumed resident at admission and
    /// costs nothing. Kept for closed-loop compatibility studies; the
    /// saved energy is exactly what the old schedule under-counted.
    Resident,
    /// The fix: admission triggers prefill events that lower the
    /// prompt through the dense attention path before decoding starts.
    /// `chunk` bounds the tokens prefilled per step (`None` prefills
    /// the whole prompt in one step).
    OnAdmission {
        /// Largest prompt slice lowered per step, if bounded.
        chunk: Option<usize>,
    },
}

/// Configuration of the event core: slots, arrivals, admission order
/// and prefill accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    capacity: usize,
    arrival: ArrivalProcess,
    policy: AdmissionPolicy,
    prefill: PrefillMode,
    max_context: Option<usize>,
}

impl ServingConfig {
    /// A config with `capacity` decode slots and the defaults: closed
    /// loop, FIFO admission, prefill charged on admission (unchunked).
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroCapacity`] if `capacity` is zero.
    pub fn try_new(capacity: usize) -> Result<ServingConfig, ServingError> {
        if capacity == 0 {
            return Err(ServingError::ZeroCapacity);
        }
        Ok(ServingConfig {
            capacity,
            arrival: ArrivalProcess::ClosedLoop,
            policy: AdmissionPolicy::Fifo,
            prefill: PrefillMode::OnAdmission { chunk: None },
            max_context: None,
        })
    }

    /// Panicking wrapper over [`ServingConfig::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ServingConfig {
        ServingConfig::try_new(capacity).expect("a schedule needs at least one decode slot")
    }

    /// Replaces the arrival process.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> ServingConfig {
        self.arrival = arrival;
        self
    }

    /// Replaces the admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> ServingConfig {
        self.policy = policy;
        self
    }

    /// Replaces the prefill mode (chunk validity is checked at
    /// [`ServingSchedule::try_build`]).
    pub fn with_prefill(mut self, prefill: PrefillMode) -> ServingConfig {
        self.prefill = prefill;
        self
    }

    /// Enforces a context window at runtime: a request whose prompt
    /// alone fills the window is rejected at build time
    /// ([`ServingError::ContextOverflow`]), and a request whose cache
    /// would outgrow the window mid-decode retires early at the
    /// boundary (recorded in [`ServingSchedule::truncated`]). Without
    /// this, only the static `L0404` lint watches the boundary and the
    /// event loop happily grows caches past it.
    ///
    /// # Panics
    ///
    /// Panics if `max_context` is zero.
    pub fn with_max_context(mut self, max_context: usize) -> ServingConfig {
        assert!(max_context > 0, "a context window must hold a token");
        self.max_context = Some(max_context);
        self
    }

    /// Decode slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The arrival process.
    pub fn arrival(&self) -> &ArrivalProcess {
        &self.arrival
    }

    /// The admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The prefill mode.
    pub fn prefill(&self) -> PrefillMode {
        self.prefill
    }

    /// The enforced context window, if any.
    pub fn max_context(&self) -> Option<usize> {
        self.max_context
    }
}

/// One slot prefilling part of its prompt this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillSlot {
    /// Index of the request in its [`RequestMix`].
    pub request: usize,
    /// Prompt tokens already prefilled before this step (for a request
    /// sharing a cached prefix, this starts at `shared`, not 0).
    pub cached: usize,
    /// Prompt tokens prefilled by this step (>= 1).
    pub chunk: usize,
    /// Shared-prefix tokens this request skipped by referencing another
    /// request's cached pages (0 = this slot prefilled its whole
    /// prompt, including any prefix it owns). A slot's *first* chunk
    /// has `cached == shared`; paged lowering charges the prefix's
    /// partial-page copy-on-write there.
    pub shared: usize,
}

/// The active set of one emitted event-core step: slots mid-prefill
/// plus slots decoding, with the wall-clock step index (gaps where the
/// server idled are fast-forwarded, so `wall` can jump between
/// consecutive steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingStep {
    wall: usize,
    prefill: Vec<PrefillSlot>,
    decode: Vec<ActiveSlot>,
}

impl ServingStep {
    /// Scheduler-step index on the arrival clock.
    pub fn wall(&self) -> usize {
        self.wall
    }

    /// Slots prefilling prompt chunks this step, admission order.
    pub fn prefill(&self) -> &[PrefillSlot] {
        &self.prefill
    }

    /// Slots decoding this step (each generates exactly one token),
    /// admission order.
    pub fn decode(&self) -> &[ActiveSlot] {
        &self.decode
    }

    /// Occupied slots this step (prefilling + decoding).
    pub fn occupancy(&self) -> usize {
        self.prefill.len() + self.decode.len()
    }

    /// The heterogeneous KV lengths of the decoding slots.
    pub fn decode_kv_lens(&self) -> Vec<usize> {
        self.decode.iter().map(|s| s.kv_len).collect()
    }

    /// Prompt tokens prefilled by this step.
    pub fn prefill_tokens(&self) -> usize {
        self.prefill.iter().map(|s| s.chunk).sum()
    }
}

/// What a slot is doing.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// `done` prompt tokens prefilled so far.
    Prefilling { done: usize },
    /// `generated` output tokens produced so far.
    Decoding { generated: usize },
}

/// The full event-driven trace of a [`RequestMix`] through a
/// [`ServingConfig`]: per-step active sets plus each request's arrival
/// step, everything downstream latency accounting needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSchedule {
    capacity: usize,
    steps: Vec<ServingStep>,
    arrivals: Vec<usize>,
    truncated: Vec<usize>,
}

impl ServingSchedule {
    /// Runs the event core over `mix` under `config`.
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroCapacity`] on a zero-slot config (only
    /// reachable through a deserialized/hand-rolled config — the
    /// constructor already rejects it),
    /// [`ServingError::ZeroPrefillChunk`] on a zero prefill chunk, and
    /// [`ServingError::ContextOverflow`] when the config enforces a
    /// context window some request's prompt alone fills — such a
    /// request could never generate a token, so admission rejects the
    /// whole trace loudly rather than modeling an impossible serve.
    pub fn try_build(
        mix: &RequestMix,
        config: &ServingConfig,
    ) -> Result<ServingSchedule, ServingError> {
        if config.capacity == 0 {
            return Err(ServingError::ZeroCapacity);
        }
        if matches!(config.prefill, PrefillMode::OnAdmission { chunk: Some(0) }) {
            return Err(ServingError::ZeroPrefillChunk);
        }
        if let Some(max) = config.max_context {
            for (request, r) in mix.requests().iter().enumerate() {
                if r.prompt + 1 > max {
                    return Err(ServingError::ContextOverflow {
                        request,
                        needed: r.prompt + 1,
                        max_context: max,
                    });
                }
            }
        }
        // The shared prompt prefix only saves work when prompts are
        // actually prefilled: under `Resident` prompts cost nothing
        // either way.
        let shared = match config.prefill {
            PrefillMode::OnAdmission { .. } => mix.shared_prefix(),
            PrefillMode::Resident => 0,
        };
        // `false` until the first prefilling request is admitted; that
        // request owns the prefix and prefills it (its whole prompt,
        // from 0). Every later admission references the owner's cached
        // prefix pages and skips straight to its private suffix — the
        // model assumes the prefix is resident once its owner is
        // admitted (the owner's prefill is scheduled first; same-step
        // overlap is ignored).
        let mut prefix_ready = false;
        let arrivals = config.arrival.arrival_steps(mix.len());
        let mut queue: Vec<usize> = Vec::new();
        let mut next_arrival = 0usize;
        // (request, state, shared tokens the slot skipped at admission)
        let mut slots: Vec<(usize, SlotState, usize)> = Vec::with_capacity(config.capacity);
        let mut steps = Vec::new();
        let mut truncated = Vec::new();
        let mut wall = 0usize;

        loop {
            while next_arrival < mix.len() && arrivals[next_arrival] <= wall {
                queue.push(next_arrival);
                next_arrival += 1;
            }
            if slots.is_empty() && queue.is_empty() {
                match arrivals.get(next_arrival) {
                    // Idle server: fast-forward to the next arrival.
                    Some(&next) => {
                        wall = next;
                        continue;
                    }
                    None => break,
                }
            }
            while slots.len() < config.capacity && !queue.is_empty() {
                let pick = config.policy.select(&queue, mix, &arrivals);
                let request = queue.remove(pick);
                let (state, skipped) = match config.prefill {
                    PrefillMode::Resident => (SlotState::Decoding { generated: 0 }, 0),
                    PrefillMode::OnAdmission { .. } => {
                        let prompt = mix.requests()[request].prompt;
                        let skipped = if prefix_ready { shared } else { 0 };
                        if shared > 0 && prompt > 0 {
                            prefix_ready = true;
                        }
                        if prompt <= skipped {
                            // Nothing (left) to prefill: a zero-length
                            // prompt, or a prompt that *is* the shared
                            // prefix.
                            (SlotState::Decoding { generated: 0 }, skipped)
                        } else {
                            (SlotState::Prefilling { done: skipped }, skipped)
                        }
                    }
                };
                slots.push((request, state, skipped));
            }

            let mut prefill = Vec::new();
            let mut decode = Vec::new();
            for &(request, state, skipped) in &slots {
                let prompt = mix.requests()[request].prompt;
                match state {
                    SlotState::Prefilling { done } => prefill.push(PrefillSlot {
                        request,
                        cached: done,
                        chunk: config.prefill_chunk(prompt, done),
                        shared: skipped,
                    }),
                    SlotState::Decoding { generated } => decode.push(ActiveSlot {
                        request,
                        kv_len: prompt + generated,
                    }),
                }
            }
            steps.push(ServingStep {
                wall,
                prefill,
                decode,
            });

            for (request, state, _) in &mut slots {
                let prompt = mix.requests()[*request].prompt;
                match state {
                    SlotState::Prefilling { done } => {
                        *done += config.prefill_chunk(prompt, *done);
                        if *done >= prompt {
                            *state = SlotState::Decoding { generated: 0 };
                        }
                    }
                    SlotState::Decoding { generated } => *generated += 1,
                }
            }
            slots.retain(|&(request, state, _)| match state {
                SlotState::Prefilling { .. } => true,
                SlotState::Decoding { generated } => {
                    if generated >= mix.requests()[request].output {
                        return false;
                    }
                    // The next decode step would grow the cache to
                    // prompt + generated + 1 tokens; at the window, the
                    // request retires early instead (truncated).
                    if let Some(max) = config.max_context {
                        if mix.requests()[request].prompt + generated + 1 > max {
                            truncated.push(request);
                            return false;
                        }
                    }
                    true
                }
            });
            wall += 1;
        }

        Ok(ServingSchedule {
            capacity: config.capacity,
            steps,
            arrivals,
            truncated,
        })
    }

    /// Panicking wrapper over [`ServingSchedule::try_build`].
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or a zero prefill chunk.
    pub fn build(mix: &RequestMix, config: &ServingConfig) -> ServingSchedule {
        ServingSchedule::try_build(mix, config).expect("serving config must be schedulable")
    }

    /// The slot count the schedule was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The emitted steps, execution order (idle gaps skipped).
    pub fn steps(&self) -> &[ServingStep] {
        &self.steps
    }

    /// Each request's arrival step, indexed by request.
    pub fn arrivals(&self) -> &[usize] {
        &self.arrivals
    }

    /// Requests that retired early at the context-window boundary
    /// (generated fewer than their requested output tokens), in
    /// retirement order. Empty unless the config set
    /// [`ServingConfig::with_max_context`].
    pub fn truncated(&self) -> &[usize] {
        &self.truncated
    }

    /// Emitted (busy) steps until the last request retired.
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }

    /// Tokens generated over the whole schedule.
    pub fn total_decode_tokens(&self) -> u64 {
        self.steps.iter().map(|s| s.decode.len() as u64).sum()
    }

    /// Prompt tokens prefilled over the whole schedule — equal to the
    /// mix's total prompt tokens under [`PrefillMode::OnAdmission`],
    /// zero under [`PrefillMode::Resident`].
    pub fn total_prefill_tokens(&self) -> u64 {
        self.steps.iter().map(|s| s.prefill_tokens() as u64).sum()
    }

    /// Mean slot occupancy (prefilling + decoding) over the emitted
    /// steps, in `(0, 1]`; 0.0 for an empty schedule.
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let occupied: u64 = self.steps.iter().map(|s| s.occupancy() as u64).sum();
        occupied as f64 / (self.steps.len() * self.capacity) as f64
    }
}

impl ServingConfig {
    /// Tokens the next prefill event covers for a `prompt` with `done`
    /// tokens already cached.
    fn prefill_chunk(&self, prompt: usize, done: usize) -> usize {
        match self.prefill {
            PrefillMode::Resident => 0,
            PrefillMode::OnAdmission { chunk } => {
                let remaining = prompt - done;
                chunk.map_or(remaining, |c| c.min(remaining))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{BatchSchedule, Request};

    fn mix() -> RequestMix {
        RequestMix::custom(
            "m",
            vec![
                Request::new(100, 3),
                Request::new(300, 2),
                Request::new(100, 2),
            ],
        )
    }

    #[test]
    fn closed_loop_resident_matches_the_legacy_scheduler() {
        let mix = mix();
        for capacity in [1, 2, 3, 5] {
            let legacy = BatchSchedule::build(&mix, capacity);
            let config = ServingConfig::new(capacity).with_prefill(PrefillMode::Resident);
            let event = ServingSchedule::build(&mix, &config);
            assert_eq!(event.total_steps(), legacy.total_steps());
            for (e, l) in event.steps().iter().zip(legacy.steps()) {
                assert!(e.prefill().is_empty());
                assert_eq!(e.decode(), l.active());
            }
        }
    }

    #[test]
    fn prefill_events_precede_decode_and_cover_the_prompt_once() {
        let mix = mix();
        let config =
            ServingConfig::new(2).with_prefill(PrefillMode::OnAdmission { chunk: Some(64) });
        let schedule = ServingSchedule::build(&mix, &config);
        assert_eq!(schedule.total_prefill_tokens(), 100 + 300 + 100);
        assert_eq!(schedule.total_decode_tokens(), 3 + 2 + 2);
        // Request 1 (prompt 300, chunk 64): ceil(300/64) = 5 prefill
        // events with chunks 64,64,64,64,44 and increasing cached.
        let chunks: Vec<(usize, usize)> = schedule
            .steps()
            .iter()
            .flat_map(ServingStep::prefill)
            .filter(|p| p.request == 1)
            .map(|p| (p.cached, p.chunk))
            .collect();
        assert_eq!(
            chunks,
            vec![(0, 64), (64, 64), (128, 64), (192, 64), (256, 44)]
        );
        // Its first decode step sits at kv_len = prompt.
        let first_decode = schedule
            .steps()
            .iter()
            .flat_map(ServingStep::decode)
            .find(|s| s.request == 1)
            .unwrap();
        assert_eq!(first_decode.kv_len, 300);
    }

    #[test]
    fn unchunked_prefill_is_one_event() {
        let mix = RequestMix::uniform(1, 128, 2);
        let config = ServingConfig::new(1);
        let schedule = ServingSchedule::build(&mix, &config);
        // Step 0: prefill(0, 128). Steps 1-2: decode at kv 128, 129.
        assert_eq!(schedule.total_steps(), 3);
        assert_eq!(
            schedule.steps()[0].prefill(),
            &[PrefillSlot {
                request: 0,
                cached: 0,
                chunk: 128,
                shared: 0
            }]
        );
        assert_eq!(schedule.steps()[1].decode_kv_lens(), vec![128]);
        assert_eq!(schedule.steps()[2].decode_kv_lens(), vec![129]);
    }

    #[test]
    fn zero_prompt_requests_skip_prefill() {
        let mix = RequestMix::custom("m", vec![Request::new(0, 2)]);
        let schedule = ServingSchedule::build(&mix, &ServingConfig::new(1));
        assert_eq!(schedule.total_prefill_tokens(), 0);
        assert_eq!(schedule.steps()[0].decode_kv_lens(), vec![0]);
    }

    #[test]
    fn idle_gaps_are_fast_forwarded() {
        let mix = RequestMix::uniform(2, 8, 1);
        let config = ServingConfig::new(1)
            .with_arrival(ArrivalProcess::bursty(0.0, 50, 1, 0))
            .with_prefill(PrefillMode::Resident);
        let schedule = ServingSchedule::build(&mix, &config);
        // Request 0 decodes at wall 0; the server idles until the
        // second burst at wall 50.
        let walls: Vec<usize> = schedule.steps().iter().map(ServingStep::wall).collect();
        assert_eq!(walls, vec![0, 50]);
        assert_eq!(schedule.arrivals(), &[0, 50]);
    }

    #[test]
    fn occupancy_counts_prefill_slots() {
        let mix = RequestMix::uniform(1, 64, 1);
        let schedule = ServingSchedule::build(&mix, &ServingConfig::new(2));
        // Step 0 prefills, step 1 decodes: both occupy 1 of 2 slots.
        assert!((schedule.mean_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        assert_eq!(
            ServingConfig::try_new(0).unwrap_err(),
            ServingError::ZeroCapacity
        );
        let config =
            ServingConfig::new(1).with_prefill(PrefillMode::OnAdmission { chunk: Some(0) });
        assert_eq!(
            ServingSchedule::try_build(&RequestMix::uniform(1, 8, 1), &config).unwrap_err(),
            ServingError::ZeroPrefillChunk
        );
    }

    #[test]
    fn overlong_prompts_are_rejected_at_the_window() {
        // Prompt 1024 + 1 generated token does not fit a 1024 window.
        let mix = RequestMix::custom("m", vec![Request::new(1024, 4)]);
        let config = ServingConfig::new(1).with_max_context(1024);
        assert_eq!(
            ServingSchedule::try_build(&mix, &config).unwrap_err(),
            ServingError::ContextOverflow {
                request: 0,
                needed: 1025,
                max_context: 1024,
            }
        );
        // Prompt 1023 fits: exactly one token of headroom.
        let mix = RequestMix::custom("m", vec![Request::new(1023, 4)]);
        let schedule = ServingSchedule::build(&mix, &config);
        assert_eq!(schedule.total_decode_tokens(), 1);
        assert_eq!(schedule.truncated(), &[0]);
    }

    #[test]
    fn decode_retires_early_at_the_window_boundary() {
        // Prompt 100, wants 50 tokens, window 120: it can only grow the
        // cache to 120, i.e. generate 20 tokens.
        let mix = RequestMix::custom("m", vec![Request::new(100, 50), Request::new(10, 3)]);
        let config = ServingConfig::new(1)
            .with_prefill(PrefillMode::Resident)
            .with_max_context(120);
        let schedule = ServingSchedule::build(&mix, &config);
        let decoded_0 = schedule
            .steps()
            .iter()
            .flat_map(ServingStep::decode)
            .filter(|s| s.request == 0)
            .count();
        assert_eq!(decoded_0, 20, "truncated at the boundary, not past it");
        assert!(schedule
            .steps()
            .iter()
            .flat_map(ServingStep::decode)
            .all(|s| s.kv_len < 120));
        assert_eq!(schedule.truncated(), &[0]);
        // The freed slot still serves the short request in full.
        assert_eq!(schedule.total_decode_tokens(), 20 + 3);
        // Without the window the same mix decodes everything.
        let unbounded = ServingSchedule::build(
            &mix,
            &ServingConfig::new(1).with_prefill(PrefillMode::Resident),
        );
        assert_eq!(unbounded.total_decode_tokens(), 50 + 3);
        assert!(unbounded.truncated().is_empty());
    }

    #[test]
    fn shared_prefix_is_prefilled_once() {
        // Three prompts sharing 64 tokens: the owner prefills 100, the
        // sharers skip to token 64.
        let mix = RequestMix::uniform(3, 100, 2).with_shared_prefix(64);
        let config =
            ServingConfig::new(3).with_prefill(PrefillMode::OnAdmission { chunk: Some(32) });
        let schedule = ServingSchedule::build(&mix, &config);
        assert_eq!(
            schedule.total_prefill_tokens(),
            100 + 2 * (100 - 64),
            "sharers skip the prefix"
        );
        // Owner: chunks from 0 with shared = 0; sharers: from 64 with
        // shared = 64.
        let first_chunks: Vec<(usize, usize, usize)> = schedule.steps()[0]
            .prefill()
            .iter()
            .map(|p| (p.request, p.cached, p.shared))
            .collect();
        assert_eq!(first_chunks, vec![(0, 0, 0), (1, 64, 64), (2, 64, 64)]);
        // Decode is unaffected: every request still generates its
        // output at full context.
        assert_eq!(schedule.total_decode_tokens(), 6);
        let first_decode = schedule
            .steps()
            .iter()
            .flat_map(ServingStep::decode)
            .find(|s| s.request == 1)
            .unwrap();
        assert_eq!(first_decode.kv_len, 100);
    }

    #[test]
    fn prompt_equal_to_prefix_skips_prefill_entirely() {
        let mix = RequestMix::custom(
            "m",
            vec![
                Request::new(64, 2),
                Request::new(64, 2),
                Request::new(96, 2),
            ],
        )
        .with_shared_prefix(64);
        let config = ServingConfig::new(3).with_prefill(PrefillMode::OnAdmission { chunk: None });
        let schedule = ServingSchedule::build(&mix, &config);
        // Owner prefills 64; request 1's whole prompt is the prefix
        // (decodes immediately); request 2 prefills its 32-token tail.
        assert_eq!(schedule.total_prefill_tokens(), 64 + 32);
        assert_eq!(schedule.steps()[0].decode_kv_lens(), vec![64]);
    }

    #[test]
    fn resident_prefill_ignores_the_shared_prefix() {
        let mix = RequestMix::uniform(2, 64, 2).with_shared_prefix(32);
        let config = ServingConfig::new(2).with_prefill(PrefillMode::Resident);
        let schedule = ServingSchedule::build(&mix, &config);
        assert_eq!(schedule.total_prefill_tokens(), 0);
        assert_eq!(schedule.total_decode_tokens(), 4);
    }

    #[test]
    fn shortest_prompt_reorders_admission() {
        // Capacity 1, closed loop: FIFO admits 0 first; shortest-prompt
        // admits the short request 2 first.
        let mix = mix();
        let fifo = ServingSchedule::build(
            &mix,
            &ServingConfig::new(1).with_prefill(PrefillMode::Resident),
        );
        assert_eq!(fifo.steps()[0].decode()[0].request, 0);
        let sjf = ServingSchedule::build(
            &mix,
            &ServingConfig::new(1)
                .with_policy(AdmissionPolicy::ShortestPrompt)
                .with_prefill(PrefillMode::Resident),
        );
        assert_eq!(
            sjf.steps()[0].decode()[0].request,
            0,
            "slot taken at step 0 keeps FIFO head"
        );
        // After request 0 retires the queue is {1, 2}: SJF picks 2.
        let order: Vec<usize> = sjf.steps().iter().map(|s| s.decode()[0].request).collect();
        assert_eq!(order, vec![0, 0, 0, 2, 2, 1, 1]);
    }
}
