//! Paged KV-cache residency and prefix sharing.
//!
//! PR 5's bucket-padding charges every decode step as if the cache were
//! rounded up to a coarse hardware tile (256 tokens by default), so DRAM
//! reads and capacity are systematically over-counted — exactly the
//! waste paged attention removes by allocating the cache in small fixed
//! pages. [`PageTable`] models that allocator analytically:
//!
//! * a request at `kv` cached tokens holds `ceil(kv / page)` pages;
//! * internal fragmentation is `allocated − used`, strictly less than
//!   one page per request;
//! * a shared prompt prefix occupies its *full* pages once for the whole
//!   mix, and the trailing partial page is copied copy-on-write by each
//!   sharing request before its first private token lands in it.
//!
//! [`KvLayout`] selects which residency accounting a serving trace is
//! lowered with: [`KvLayout::Bucketed`] reproduces the legacy tile
//! padding, [`KvLayout::Paged`] pads attend lengths to the page instead.
//! Because a page divides the tile (checked by lint `L0406`), the paged
//! attend length never exceeds the bucketed one — bucketed accounting is
//! a sound upper bound, and `page = 1` recovers exact per-token
//! residency (`tests/paged_properties.rs` pins both).

use super::{ServingError, ServingSchedule, ServingStep};

/// The analytic page-table model: page-granular KV allocation with an
/// optional shared prompt prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    page: usize,
    shared_prefix: usize,
}

impl PageTable {
    /// A page table with `page`-token pages and no shared prefix.
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroKvPage`] if `page` is zero — allocation
    /// granularity must cover at least one token.
    pub fn try_new(page: usize) -> Result<PageTable, ServingError> {
        if page == 0 {
            return Err(ServingError::ZeroKvPage);
        }
        Ok(PageTable {
            page,
            shared_prefix: 0,
        })
    }

    /// Panicking wrapper over [`PageTable::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `page` is zero.
    pub fn new(page: usize) -> PageTable {
        PageTable::try_new(page).expect("a KV page must cover at least one token")
    }

    /// Declares a shared prompt prefix of `len` tokens (builder style).
    /// The prefix's full pages are stored once for the whole mix; the
    /// trailing partial page is copied per sharing request
    /// (copy-on-write).
    #[must_use]
    pub fn with_shared_prefix(mut self, len: usize) -> PageTable {
        self.shared_prefix = len;
        self
    }

    /// Tokens per page.
    pub fn page(&self) -> usize {
        self.page
    }

    /// The shared prompt prefix length, in tokens (0 = no sharing).
    pub fn shared_prefix(&self) -> usize {
        self.shared_prefix
    }

    /// Pages allocated for a cache of `kv` tokens.
    pub fn pages_for(&self, kv: usize) -> usize {
        kv.div_ceil(self.page)
    }

    /// Tokens of capacity backing a cache of `kv` tokens (pages × page
    /// size) — the paged residency footprint.
    pub fn allocated_tokens(&self, kv: usize) -> usize {
        self.pages_for(kv) * self.page
    }

    /// Internal fragmentation of a cache of `kv` tokens: allocated −
    /// used, strictly less than one page.
    pub fn fragmentation(&self, kv: usize) -> usize {
        self.allocated_tokens(kv) - kv
    }

    /// Padded attend length of a decode step at `kv` cached tokens: the
    /// step appends one token and reads every allocated page in full, so
    /// it attends over `allocated_tokens(kv + 1)` positions. The paged
    /// analog of the bucket rounding in
    /// [`ServingModel::bucketed_composition`](super::ServingModel::bucketed_composition).
    pub fn attend_len(&self, kv: usize) -> usize {
        self.allocated_tokens(kv + 1)
    }

    /// Tokens of the shared prefix stored once for the whole mix — its
    /// full pages only; the partial page cannot be shared because
    /// sharers append into it.
    pub fn shared_full_page_tokens(&self) -> usize {
        (self.shared_prefix / self.page) * self.page
    }

    /// Tokens a sharing request copies copy-on-write before its first
    /// private token: the shared prefix's trailing partial page (0 when
    /// the prefix is page-aligned).
    pub fn cow_tokens(&self) -> usize {
        self.shared_prefix % self.page
    }

    /// Walks `schedule` and reduces it to the allocator-level residency
    /// aggregates: peak used/allocated tokens over the emitted steps
    /// (shared full pages counted once per step) and the shared-storage
    /// saving. Step `used` counts each slot's cache *after* its event
    /// (decode appends one token; prefill lands its chunk).
    pub fn schedule_residency(&self, schedule: &ServingSchedule) -> PagedResidency {
        let mut peak = StepResidency::default();
        for step in schedule.steps() {
            let r = self.step_residency(step);
            // Peak-allocation step; ties resolve to the fullest one
            // (later decode steps pack more tokens into the same pages).
            if (r.allocated_tokens, r.used_tokens) > (peak.allocated_tokens, peak.used_tokens) {
                peak = r;
            }
        }
        PagedResidency {
            page: self.page,
            peak_used_tokens: peak.used_tokens,
            peak_allocated_tokens: peak.allocated_tokens,
            cow_tokens_per_sharer: self.cow_tokens(),
            shared_full_page_tokens: self.shared_full_page_tokens(),
        }
    }

    /// The residency of one emitted step: used and allocated tokens over
    /// its active slots, with the shared prefix's full pages counted
    /// once — on *both* sides of the ledger. Each slot contributes only
    /// its private suffix (cache beyond the shared full pages); the
    /// shared region itself is stored once, filled as far as the
    /// furthest slot has written it.
    pub fn step_residency(&self, step: &ServingStep) -> StepResidency {
        let shared = self.shared_full_page_tokens();
        let mut used = 0u64;
        let mut allocated = 0u64;
        // Tokens of the shared region actually written so far (the
        // owner may still be mid-prefill inside it).
        let mut shared_filled = 0usize;
        let mut slot_kv = |kv: usize| {
            let in_shared = shared.min(kv);
            shared_filled = shared_filled.max(in_shared);
            let private = kv - in_shared;
            used += private as u64;
            allocated += self.allocated_tokens(private) as u64;
        };
        for slot in step.decode() {
            slot_kv(slot.kv_len + 1);
        }
        for slot in step.prefill() {
            slot_kv(slot.cached + slot.chunk);
        }
        if shared_filled > 0 {
            used += shared_filled as u64;
            allocated += self.allocated_tokens(shared_filled) as u64;
        }
        StepResidency {
            used_tokens: used,
            allocated_tokens: allocated,
        }
    }
}

/// Used/allocated cache tokens of one step under a [`PageTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepResidency {
    /// Cache tokens actually holding K/V after the step's events.
    pub used_tokens: u64,
    /// Tokens of page capacity backing them (≥ used).
    pub allocated_tokens: u64,
}

impl StepResidency {
    /// Allocated-but-unused fraction of the step's residency, in
    /// `[0, 1)`; 0.0 for an empty step.
    pub fn waste_fraction(&self) -> f64 {
        if self.allocated_tokens == 0 {
            return 0.0;
        }
        1.0 - self.used_tokens as f64 / self.allocated_tokens as f64
    }
}

/// Schedule-level residency aggregates of a [`PageTable`] walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedResidency {
    /// Tokens per page.
    pub page: usize,
    /// Used tokens of the peak-allocation step.
    pub peak_used_tokens: u64,
    /// Allocated tokens of the peak-allocation step.
    pub peak_allocated_tokens: u64,
    /// Tokens each sharing request copies copy-on-write.
    pub cow_tokens_per_sharer: usize,
    /// Shared-prefix tokens stored once instead of per request.
    pub shared_full_page_tokens: usize,
}

impl PagedResidency {
    /// Fragmentation at the peak step: allocated − used tokens.
    pub fn peak_fragmentation_tokens(&self) -> u64 {
        self.peak_allocated_tokens - self.peak_used_tokens
    }

    /// Allocated-but-unused fraction at the peak step, in `[0, 1)`.
    pub fn peak_waste_fraction(&self) -> f64 {
        if self.peak_allocated_tokens == 0 {
            return 0.0;
        }
        1.0 - self.peak_used_tokens as f64 / self.peak_allocated_tokens as f64
    }
}

/// Which KV-residency accounting a serving trace is lowered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvLayout {
    /// The legacy tile padding: attend lengths round up to a coarse
    /// hardware bucket. Over-counts DRAM reads and capacity by up to a
    /// bucket per request, in exchange for very few distinct layer
    /// signatures.
    Bucketed {
        /// The rounding quantum, in tokens.
        bucket: usize,
    },
    /// Page-granular residency: attend lengths round up to the page, so
    /// reads cover exactly the allocated pages. More distinct
    /// signatures than bucketed (one per page count visited) but still
    /// bounded far below the step count.
    Paged(PageTable),
}

impl KvLayout {
    /// The rounding quantum in tokens: the bucket, or the page.
    pub fn quantum(&self) -> usize {
        match self {
            KvLayout::Bucketed { bucket } => *bucket,
            KvLayout::Paged(table) => table.page(),
        }
    }

    /// The page table, when paged.
    pub fn page_table(&self) -> Option<&PageTable> {
        match self {
            KvLayout::Bucketed { .. } => None,
            KvLayout::Paged(table) => Some(table),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{PrefillMode, RequestMix, ServingConfig};

    #[test]
    fn allocation_rounds_up_to_whole_pages() {
        let t = PageTable::new(16);
        assert_eq!(t.pages_for(0), 0);
        assert_eq!(t.pages_for(1), 1);
        assert_eq!(t.pages_for(16), 1);
        assert_eq!(t.pages_for(17), 2);
        assert_eq!(t.allocated_tokens(17), 32);
        assert_eq!(t.fragmentation(17), 15);
        assert_eq!(t.fragmentation(32), 0);
    }

    #[test]
    fn attend_len_covers_the_appended_token() {
        let t = PageTable::new(16);
        // kv 15: the step appends token 16, which still fits page 1.
        assert_eq!(t.attend_len(15), 16);
        // kv 16: token 17 opens page 2.
        assert_eq!(t.attend_len(16), 32);
    }

    #[test]
    fn page_one_is_exact_per_token_residency() {
        let t = PageTable::new(1);
        for kv in [0usize, 1, 7, 100] {
            assert_eq!(t.allocated_tokens(kv), kv);
            assert_eq!(t.fragmentation(kv), 0);
            assert_eq!(t.attend_len(kv), kv + 1);
        }
    }

    #[test]
    fn shared_prefix_splits_into_full_pages_and_cow_tail() {
        let t = PageTable::new(16).with_shared_prefix(48);
        assert_eq!(t.shared_full_page_tokens(), 48);
        assert_eq!(t.cow_tokens(), 0, "aligned prefix copies nothing");
        let t = PageTable::new(16).with_shared_prefix(42);
        assert_eq!(t.shared_full_page_tokens(), 32);
        assert_eq!(t.cow_tokens(), 10);
    }

    #[test]
    fn zero_page_is_a_typed_error() {
        assert_eq!(PageTable::try_new(0).unwrap_err(), ServingError::ZeroKvPage);
    }

    #[test]
    fn layout_quantum_selects_bucket_or_page() {
        assert_eq!(KvLayout::Bucketed { bucket: 256 }.quantum(), 256);
        let paged = KvLayout::Paged(PageTable::new(16));
        assert_eq!(paged.quantum(), 16);
        assert!(paged.page_table().is_some());
        assert!(KvLayout::Bucketed { bucket: 256 }.page_table().is_none());
    }

    #[test]
    fn schedule_residency_tracks_peak_and_bounds_waste() {
        let mix = RequestMix::uniform(4, 100, 8);
        let config =
            ServingConfig::new(4).with_prefill(PrefillMode::OnAdmission { chunk: Some(64) });
        let schedule = ServingSchedule::build(&mix, &config);
        let t = PageTable::new(16);
        let r = t.schedule_residency(&schedule);
        assert!(r.peak_allocated_tokens >= r.peak_used_tokens);
        // Fragmentation stays under one page per active request.
        assert!(r.peak_fragmentation_tokens() < (16 * 4) as u64);
        assert!(r.peak_waste_fraction() >= 0.0 && r.peak_waste_fraction() < 1.0);
        // Peak: all four requests at their longest cache (107 + 1 used).
        assert_eq!(r.peak_used_tokens, 4 * 108);
        assert_eq!(r.peak_allocated_tokens, 4 * 112);
    }

    #[test]
    fn shared_full_pages_are_counted_once() {
        // Two requests fully decoded, sharing a 32-token prefix at page
        // 16: per-step allocation = shared 32 once + private remainders.
        let mix = RequestMix::uniform(2, 64, 4)
            .try_with_shared_prefix(32)
            .unwrap();
        let config = ServingConfig::new(2).with_prefill(PrefillMode::Resident);
        let schedule = ServingSchedule::build(&mix, &config);
        let t = PageTable::new(16).with_shared_prefix(32);
        let step0 = t.step_residency(&schedule.steps()[0]);
        // Used: the shared 32 tokens once (same physical pages) plus
        // each request's 33-token private suffix (65 after the append).
        assert_eq!(step0.used_tokens, 32 + 2 * 33);
        // Allocated: 32 shared once + ceil(33/16)*16 = 48 private each.
        assert_eq!(step0.allocated_tokens, 32 + 2 * 48);
        assert!(step0.used_tokens <= step0.allocated_tokens);

        let unshared = PageTable::new(16);
        let plain = unshared.step_residency(&schedule.steps()[0]);
        assert!(
            plain.allocated_tokens > step0.allocated_tokens,
            "sharing stores the prefix once: {} vs {}",
            plain.allocated_tokens,
            step0.allocated_tokens
        );
    }
}
