//! Typed construction errors for the serving module.
//!
//! Follows the `Fanout::try_new` precedent: every serving constructor
//! has a `try_*` form returning [`ServingError`] and a thin panicking
//! wrapper for test ergonomics, so library callers can surface bad
//! configurations as data instead of process aborts.

use std::error::Error;
use std::fmt;

/// Why a serving request, mix, arrival process or schedule could not be
/// constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingError {
    /// A request with `output == 0` never occupies a decode slot.
    ZeroOutputRequest,
    /// A mix with no requests schedules nothing.
    EmptyMix,
    /// A schedule with zero decode slots can never admit a request.
    ZeroCapacity,
    /// A prefill chunk of zero tokens makes no admission progress.
    ZeroPrefillChunk,
    /// A per-step arrival rate outside `(0, 1]` either never produces a
    /// request (the schedule would not terminate) or is not a
    /// probability.
    ArrivalRateOutOfRange(f64),
    /// A background rate outside `[0, 1]` is not a probability.
    BackgroundRateOutOfRange(f64),
    /// A periodic process needs a period of at least one step.
    ZeroArrivalPeriod,
    /// A burst of zero requests is no burst.
    ZeroBurst,
    /// A diurnal trough above the peak inverts the day.
    DiurnalRangeInverted {
        /// The off-peak arrival rate.
        trough: f64,
        /// The peak arrival rate.
        peak: f64,
    },
    /// A KV page of zero tokens allocates nothing.
    ZeroKvPage,
    /// A shared prefix longer than the shortest prompt cannot be a
    /// prefix of every request.
    SharedPrefixExceedsPrompt {
        /// The declared shared-prefix length.
        shared: usize,
        /// The shortest prompt in the mix.
        min_prompt: usize,
    },
    /// A request whose prompt alone fills the model's context window can
    /// never generate a token; the schedule rejects it at admission.
    ContextOverflow {
        /// The offending request's index in the mix.
        request: usize,
        /// Tokens the request needs before generating anything
        /// (prompt + 1).
        needed: usize,
        /// The model's context window.
        max_context: usize,
    },
    /// A KV bucket of zero tokens cannot round an attend length.
    ZeroKvBucket,
    /// A shared prompt prefix only pays off under paged residency:
    /// bucketed accounting has no pages to deduplicate, so declaring a
    /// prefix without a KV page is a contradiction, not a no-op.
    SharedPrefixRequiresPagedKv,
    /// A fleet with zero instances routes every request nowhere.
    EmptyFleet,
    /// An explicit arrival trace must be sorted: requests are indexed in
    /// arrival order, so a step sequence that goes backwards in time
    /// reorders the stream it claims to replay.
    UnsortedArrivals {
        /// Index of the first out-of-order entry.
        index: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::ZeroOutputRequest => {
                write!(f, "a request must generate at least one token")
            }
            ServingError::EmptyMix => write!(f, "a request mix cannot be empty"),
            ServingError::ZeroCapacity => {
                write!(f, "a schedule needs at least one decode slot")
            }
            ServingError::ZeroPrefillChunk => {
                write!(f, "a prefill chunk must cover at least one token")
            }
            ServingError::ArrivalRateOutOfRange(rate) => write!(
                f,
                "arrival rate {rate} must lie in (0, 1] requests per step"
            ),
            ServingError::BackgroundRateOutOfRange(rate) => write!(
                f,
                "background arrival rate {rate} must lie in [0, 1] requests per step"
            ),
            ServingError::ZeroArrivalPeriod => {
                write!(f, "an arrival period must span at least one step")
            }
            ServingError::ZeroBurst => {
                write!(f, "a burst must carry at least one request")
            }
            ServingError::DiurnalRangeInverted { trough, peak } => write!(
                f,
                "diurnal trough rate {trough} exceeds the peak rate {peak}"
            ),
            ServingError::ZeroKvPage => {
                write!(f, "a KV page must cover at least one token")
            }
            ServingError::SharedPrefixExceedsPrompt { shared, min_prompt } => write!(
                f,
                "shared prefix of {shared} tokens exceeds the shortest prompt ({min_prompt} tokens)"
            ),
            ServingError::ContextOverflow {
                request,
                needed,
                max_context,
            } => write!(
                f,
                "request {request} needs {needed} context tokens but the model caps at {max_context}"
            ),
            ServingError::ZeroKvBucket => {
                write!(f, "a KV bucket must cover at least one token")
            }
            ServingError::SharedPrefixRequiresPagedKv => write!(
                f,
                "a shared prefix needs a paged KV layout; bucketed residency has no pages to share"
            ),
            ServingError::EmptyFleet => {
                write!(f, "a fleet needs at least one instance")
            }
            ServingError::UnsortedArrivals { index } => write!(
                f,
                "explicit arrival steps must be non-decreasing; entry {index} goes back in time"
            ),
        }
    }
}

impl Error for ServingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<ServingError> = vec![
            ServingError::ZeroOutputRequest,
            ServingError::EmptyMix,
            ServingError::ZeroCapacity,
            ServingError::ZeroPrefillChunk,
            ServingError::ArrivalRateOutOfRange(1.5),
            ServingError::BackgroundRateOutOfRange(-0.25),
            ServingError::ZeroArrivalPeriod,
            ServingError::ZeroBurst,
            ServingError::DiurnalRangeInverted {
                trough: 0.8,
                peak: 0.2,
            },
            ServingError::ZeroKvPage,
            ServingError::SharedPrefixExceedsPrompt {
                shared: 96,
                min_prompt: 64,
            },
            ServingError::ContextOverflow {
                request: 3,
                needed: 1025,
                max_context: 1024,
            },
            ServingError::ZeroKvBucket,
            ServingError::SharedPrefixRequiresPagedKv,
            ServingError::EmptyFleet,
            ServingError::UnsortedArrivals { index: 2 },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error messages start lowercase: {msg}"
            );
        }
        assert!(ServingError::ArrivalRateOutOfRange(1.5)
            .to_string()
            .contains("1.5"));
    }
}
