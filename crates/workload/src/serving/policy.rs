//! Admission policies: which queued request takes a freed decode slot.
//!
//! The closed-loop scheduler admitted strictly FIFO. Once arrivals are
//! spread over time and requests queue behind busy slots, the admission
//! order becomes a real serving lever: admitting short prompts first
//! cuts median time-to-first-token at the cost of long-prompt tail
//! latency, and an SLO-aware policy spends that lever only where a
//! deadline is at risk. All policies are deterministic integer
//! comparisons — no randomness, no floats — so schedules stay
//! platform-exact.

use super::RequestMix;
use std::fmt;

/// Which queued request is admitted into a free decode slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Arrival order — the PR 5 behavior and the fairness baseline.
    Fifo,
    /// Shortest prompt first (ties broken by arrival order): minimizes
    /// the prefill work blocking the queue, the classic SJF trade.
    ShortestPrompt,
    /// Earliest-deadline-first over two SLO classes: requests with
    /// `prompt <= interactive_prompt` are interactive and must start
    /// within `slack` steps of arrival; the rest are batch with a
    /// `4 * slack` budget. Ties broken by shortest prompt, then
    /// arrival order.
    SloAware {
        /// Largest prompt still considered interactive.
        interactive_prompt: usize,
        /// Steps of queueing budget an interactive request gets.
        slack: usize,
    },
}

impl AdmissionPolicy {
    /// Index *into `queue`* of the request to admit next. `queue` holds
    /// request indices in arrival order; `arrivals` maps request index
    /// to arrival step.
    ///
    /// Never called on an empty queue by the event core; returns 0 for
    /// robustness if it ever is.
    pub(crate) fn select(&self, queue: &[usize], mix: &RequestMix, arrivals: &[usize]) -> usize {
        match *self {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::ShortestPrompt => queue
                .iter()
                .enumerate()
                .min_by_key(|&(pos, &r)| (mix.requests()[r].prompt, pos))
                .map_or(0, |(pos, _)| pos),
            AdmissionPolicy::SloAware {
                interactive_prompt,
                slack,
            } => queue
                .iter()
                .enumerate()
                .min_by_key(|&(pos, &r)| {
                    let prompt = mix.requests()[r].prompt;
                    let budget = if prompt <= interactive_prompt {
                        slack
                    } else {
                        4 * slack
                    };
                    (arrivals[r].saturating_add(budget), prompt, pos)
                })
                .map_or(0, |(pos, _)| pos),
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AdmissionPolicy::Fifo => write!(f, "fifo"),
            AdmissionPolicy::ShortestPrompt => write!(f, "shortest-prompt"),
            AdmissionPolicy::SloAware {
                interactive_prompt,
                slack,
            } => write!(f, "slo(p<={interactive_prompt},slack{slack})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::Request;

    fn mix() -> RequestMix {
        RequestMix::custom(
            "m",
            vec![
                Request::new(512, 8), // 0: long, arrives first
                Request::new(64, 8),  // 1: short
                Request::new(64, 8),  // 2: short, later
                Request::new(256, 8), // 3: long-ish
            ],
        )
    }

    #[test]
    fn fifo_takes_the_queue_head() {
        let m = mix();
        assert_eq!(AdmissionPolicy::Fifo.select(&[3, 1, 0], &m, &[0; 4]), 0);
    }

    #[test]
    fn shortest_prompt_prefers_the_small_request() {
        let m = mix();
        let policy = AdmissionPolicy::ShortestPrompt;
        assert_eq!(policy.select(&[0, 3, 2], &m, &[0; 4]), 2);
        // Equal prompts: arrival (queue) order breaks the tie.
        assert_eq!(policy.select(&[1, 2], &m, &[0; 4]), 0);
    }

    #[test]
    fn slo_aware_is_deadline_ordered() {
        let m = mix();
        let policy = AdmissionPolicy::SloAware {
            interactive_prompt: 128,
            slack: 8,
        };
        // Request 0 (batch, arrived step 0): deadline 32.
        // Request 2 (interactive, arrived step 20): deadline 28.
        assert_eq!(policy.select(&[0, 2], &m, &[0, 0, 20, 0]), 1);
        // But an old batch request eventually wins over a fresh
        // interactive one: deadline 32 vs 40 + ... at arrival 35.
        assert_eq!(policy.select(&[0, 2], &m, &[0, 0, 35, 0]), 0);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(AdmissionPolicy::Fifo.to_string(), "fifo");
        assert_eq!(
            AdmissionPolicy::ShortestPrompt.to_string(),
            "shortest-prompt"
        );
        assert_eq!(
            AdmissionPolicy::SloAware {
                interactive_prompt: 128,
                slack: 16
            }
            .to_string(),
            "slo(p<=128,slack16)"
        );
    }
}
