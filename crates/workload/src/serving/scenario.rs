//! The unified serving-scenario description: one validated object that
//! every serving entry point consumes.
//!
//! PRs 5–9 accreted the single-instance serving path one flag at a
//! time: arrival process here, admission policy there, paged KV and
//! shared prefixes behind their own switches — with the mutual-exclusion
//! rules re-derived by hand wherever flags met (`--shared-prefix` only
//! makes sense paged; a shared prefix must fit every prompt; a prefill
//! chunk of zero makes no progress). [`ServingScenario`] centralizes
//! those rules: a builder collects the full description — mix, capacity,
//! KV layout, arrival, admission policy, shared prefix, context window —
//! and [`ServingScenarioBuilder::build`] validates the *combination*,
//! rejecting contradictions with typed [`ServingError`]s. A built
//! scenario is internally consistent by construction, so deriving the
//! schedule ([`ServingScenario::schedule`]) cannot fail, and downstream
//! consumers (experiment drivers, the CLI, lints, the fleet router)
//! share one construction path instead of re-validating flags.

use super::error::ServingError;
use super::event::{PrefillMode, ServingConfig, ServingSchedule};
use super::paging::{KvLayout, PageTable};
use super::{AdmissionPolicy, ArrivalProcess, RequestMix};

/// A complete, validated serving scenario: the request mix, the
/// scheduler configuration and the KV residency layout, checked as a
/// whole at [`ServingScenarioBuilder::build`].
///
/// # Examples
///
/// ```
/// use lumen_workload::serving::{ArrivalProcess, RequestMix, ServingScenario};
///
/// let scenario = ServingScenario::builder(RequestMix::uniform(8, 128, 32), 4)
///     .arrival(ArrivalProcess::poisson(0.25, 7))
///     .prefill_chunk(256)
///     .build()
///     .unwrap();
/// let schedule = scenario.schedule();
/// assert_eq!(schedule.capacity(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServingScenario {
    mix: RequestMix,
    kv_bucket: usize,
    kv_page: Option<usize>,
    config: ServingConfig,
    layout: KvLayout,
}

impl ServingScenario {
    /// Starts a scenario description from the two parameters every
    /// schedule needs: the request mix and the decode-slot capacity.
    pub fn builder(mix: RequestMix, capacity: usize) -> ServingScenarioBuilder {
        ServingScenarioBuilder {
            mix,
            capacity,
            kv_bucket: ServingScenarioBuilder::DEFAULT_KV_BUCKET,
            kv_page: None,
            shared_prefix: 0,
            arrival: ArrivalProcess::ClosedLoop,
            policy: AdmissionPolicy::Fifo,
            prefill: PrefillMode::OnAdmission { chunk: None },
            max_context: None,
        }
    }

    /// The request mix, with any shared prefix already applied (the
    /// `+shared{L}` name suffix included).
    pub fn mix(&self) -> &RequestMix {
        &self.mix
    }

    /// Decode-slot capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity()
    }

    /// The scheduler configuration the scenario lowers to.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The KV residency layout: paged when a page size was given,
    /// bucketed otherwise.
    pub fn layout(&self) -> &KvLayout {
        &self.layout
    }

    /// The bucket quantum, in tokens (used directly when bucketed; still
    /// reported when paged, as the tile the page must divide).
    pub fn kv_bucket(&self) -> usize {
        self.kv_bucket
    }

    /// The KV page size, when paged.
    pub fn kv_page(&self) -> Option<usize> {
        self.kv_page
    }

    /// The shared prompt-prefix length, in tokens (0 = no sharing).
    pub fn shared_prefix(&self) -> usize {
        self.mix.shared_prefix()
    }

    /// The arrival process.
    pub fn arrival(&self) -> &ArrivalProcess {
        self.config.arrival()
    }

    /// The admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.config.policy()
    }

    /// The prefill mode.
    pub fn prefill(&self) -> PrefillMode {
        self.config.prefill()
    }

    /// The context window, when capped.
    pub fn max_context(&self) -> Option<usize> {
        self.config.max_context()
    }

    /// Runs the event core over the scenario. Infallible: every
    /// schedule-construction error was already rejected at
    /// [`ServingScenarioBuilder::build`].
    pub fn schedule(&self) -> ServingSchedule {
        ServingSchedule::try_build(&self.mix, &self.config)
            .expect("a built scenario is schedulable by construction")
    }

    /// The scenario re-targeted at `mix` and `arrival` — how a fleet
    /// router stamps an instance template onto the sub-stream it routed
    /// there. All other knobs (capacity, KV layout, policy, prefill,
    /// context) carry over; the combination is re-validated because the
    /// new mix's prompts must still fit the template's shared prefix and
    /// context window.
    ///
    /// # Errors
    ///
    /// The same [`ServingError`]s as [`ServingScenarioBuilder::build`].
    pub fn with_stream(
        &self,
        mix: RequestMix,
        arrival: ArrivalProcess,
    ) -> Result<ServingScenario, ServingError> {
        let mut builder = ServingScenario::builder(mix, self.capacity())
            .kv_bucket(self.kv_bucket)
            .shared_prefix(self.shared_prefix())
            .arrival(arrival)
            .policy(self.policy())
            .prefill(self.prefill());
        if let Some(page) = self.kv_page {
            builder = builder.kv_page(page);
        }
        if let Some(max) = self.max_context() {
            builder = builder.max_context(max);
        }
        builder.build()
    }
}

/// Collects a [`ServingScenario`] description; [`build`] validates the
/// combination.
///
/// [`build`]: ServingScenarioBuilder::build
#[derive(Debug, Clone)]
pub struct ServingScenarioBuilder {
    mix: RequestMix,
    capacity: usize,
    kv_bucket: usize,
    kv_page: Option<usize>,
    shared_prefix: usize,
    arrival: ArrivalProcess,
    policy: AdmissionPolicy,
    prefill: PrefillMode,
    max_context: Option<usize>,
}

impl ServingScenarioBuilder {
    /// The default bucket quantum: the coarse hardware tile the paper's
    /// serving studies round attend lengths to.
    pub const DEFAULT_KV_BUCKET: usize = 256;

    /// Sets the bucket quantum (tokens) attend lengths round to under
    /// bucketed residency.
    #[must_use]
    pub fn kv_bucket(mut self, bucket: usize) -> ServingScenarioBuilder {
        self.kv_bucket = bucket;
        self
    }

    /// Selects paged KV residency with `page`-token pages.
    #[must_use]
    pub fn kv_page(mut self, page: usize) -> ServingScenarioBuilder {
        self.kv_page = Some(page);
        self
    }

    /// Declares a shared prompt prefix of `shared` tokens. Requires a
    /// paged layout — bucketed residency has no pages to deduplicate.
    #[must_use]
    pub fn shared_prefix(mut self, shared: usize) -> ServingScenarioBuilder {
        self.shared_prefix = shared;
        self
    }

    /// Sets the arrival process (default: closed loop).
    #[must_use]
    pub fn arrival(mut self, arrival: ArrivalProcess) -> ServingScenarioBuilder {
        self.arrival = arrival;
        self
    }

    /// Sets the admission policy (default: FIFO).
    #[must_use]
    pub fn policy(mut self, policy: AdmissionPolicy) -> ServingScenarioBuilder {
        self.policy = policy;
        self
    }

    /// Sets the prefill mode (default: on-admission, whole prompt).
    #[must_use]
    pub fn prefill(mut self, prefill: PrefillMode) -> ServingScenarioBuilder {
        self.prefill = prefill;
        self
    }

    /// Shorthand for chunked on-admission prefill.
    #[must_use]
    pub fn prefill_chunk(mut self, chunk: usize) -> ServingScenarioBuilder {
        self.prefill = PrefillMode::OnAdmission { chunk: Some(chunk) };
        self
    }

    /// Caps the per-request context window.
    #[must_use]
    pub fn max_context(mut self, max_context: usize) -> ServingScenarioBuilder {
        self.max_context = Some(max_context);
        self
    }

    /// Validates the combination and produces the scenario.
    ///
    /// # Errors
    ///
    /// * [`ServingError::ZeroCapacity`] — no decode slots.
    /// * [`ServingError::ZeroKvBucket`] — a zero rounding quantum.
    /// * [`ServingError::ZeroKvPage`] — a zero page size.
    /// * [`ServingError::ZeroPrefillChunk`] — a zero prefill chunk.
    /// * [`ServingError::SharedPrefixRequiresPagedKv`] — a shared prefix
    ///   without a paged layout.
    /// * [`ServingError::SharedPrefixExceedsPrompt`] — a prefix longer
    ///   than the shortest prompt.
    /// * [`ServingError::ContextOverflow`] — a prompt that fills the
    ///   context window before generating anything.
    pub fn build(self) -> Result<ServingScenario, ServingError> {
        if self.capacity == 0 {
            return Err(ServingError::ZeroCapacity);
        }
        if self.kv_bucket == 0 {
            return Err(ServingError::ZeroKvBucket);
        }
        if self.kv_page == Some(0) {
            return Err(ServingError::ZeroKvPage);
        }
        if let PrefillMode::OnAdmission { chunk: Some(0) } = self.prefill {
            return Err(ServingError::ZeroPrefillChunk);
        }
        if self.shared_prefix > 0 && self.kv_page.is_none() {
            return Err(ServingError::SharedPrefixRequiresPagedKv);
        }
        let mix = self.mix.try_with_shared_prefix(self.shared_prefix)?;
        if let Some(max_context) = self.max_context {
            for (request, r) in mix.requests().iter().enumerate() {
                let needed = r.prompt + 1;
                if needed > max_context {
                    return Err(ServingError::ContextOverflow {
                        request,
                        needed,
                        max_context,
                    });
                }
            }
        }
        let layout = match self.kv_page {
            Some(page) => {
                KvLayout::Paged(PageTable::try_new(page)?.with_shared_prefix(self.shared_prefix))
            }
            None => KvLayout::Bucketed {
                bucket: self.kv_bucket,
            },
        };
        let mut config = ServingConfig::try_new(self.capacity)?
            .with_arrival(self.arrival)
            .with_policy(self.policy)
            .with_prefill(self.prefill);
        if let Some(max_context) = self.max_context {
            config = config.with_max_context(max_context);
        }
        Ok(ServingScenario {
            mix,
            kv_bucket: self.kv_bucket,
            kv_page: self.kv_page,
            config,
            layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> RequestMix {
        RequestMix::uniform(6, 128, 16)
    }

    #[test]
    fn defaults_reproduce_the_closed_loop_bucketed_path() {
        let s = ServingScenario::builder(mix(), 3).build().unwrap();
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.arrival(), &ArrivalProcess::ClosedLoop);
        assert_eq!(s.policy(), AdmissionPolicy::Fifo);
        assert_eq!(s.kv_page(), None);
        assert_eq!(
            s.layout(),
            &KvLayout::Bucketed {
                bucket: ServingScenarioBuilder::DEFAULT_KV_BUCKET
            }
        );
        // The derived schedule matches a hand-built one exactly.
        let config = ServingConfig::new(3);
        assert_eq!(s.schedule(), ServingSchedule::build(&mix(), &config));
    }

    #[test]
    fn invalid_combinations_are_typed() {
        assert_eq!(
            ServingScenario::builder(mix(), 0).build(),
            Err(ServingError::ZeroCapacity)
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2).kv_bucket(0).build(),
            Err(ServingError::ZeroKvBucket)
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2).kv_page(0).build(),
            Err(ServingError::ZeroKvPage)
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2).prefill_chunk(0).build(),
            Err(ServingError::ZeroPrefillChunk)
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2).shared_prefix(40).build(),
            Err(ServingError::SharedPrefixRequiresPagedKv)
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2)
                .kv_page(16)
                .shared_prefix(512)
                .build(),
            Err(ServingError::SharedPrefixExceedsPrompt {
                shared: 512,
                min_prompt: 128
            })
        );
        assert_eq!(
            ServingScenario::builder(mix(), 2).max_context(64).build(),
            Err(ServingError::ContextOverflow {
                request: 0,
                needed: 129,
                max_context: 64
            })
        );
    }

    #[test]
    fn shared_prefix_flows_into_mix_and_page_table() {
        let s = ServingScenario::builder(mix(), 2)
            .kv_page(16)
            .shared_prefix(40)
            .build()
            .unwrap();
        assert_eq!(s.shared_prefix(), 40);
        assert!(s.mix().name().ends_with("+shared40"), "{}", s.mix().name());
        let table = s.layout().page_table().unwrap();
        assert_eq!(table.shared_prefix(), 40);
        assert_eq!(table.page(), 16);
    }

    #[test]
    fn with_stream_retargets_mix_and_arrival_only() {
        let template = ServingScenario::builder(mix(), 2)
            .kv_page(16)
            .shared_prefix(40)
            .prefill_chunk(64)
            .policy(AdmissionPolicy::ShortestPrompt)
            .max_context(1024)
            .build()
            .unwrap();
        let routed = template
            .with_stream(
                RequestMix::uniform(3, 256, 8),
                ArrivalProcess::explicit(vec![0, 4, 9]),
            )
            .unwrap();
        assert_eq!(routed.capacity(), 2);
        assert_eq!(routed.policy(), AdmissionPolicy::ShortestPrompt);
        assert_eq!(routed.shared_prefix(), 40);
        assert_eq!(routed.max_context(), Some(1024));
        assert_eq!(routed.mix().len(), 3);
        assert_eq!(routed.arrival(), &ArrivalProcess::explicit(vec![0, 4, 9]),);
        // Re-validation catches streams the template cannot serve.
        assert_eq!(
            template.with_stream(RequestMix::uniform(2, 16, 4), ArrivalProcess::ClosedLoop),
            Err(ServingError::SharedPrefixExceedsPrompt {
                shared: 40,
                min_prompt: 16
            })
        );
    }
}
