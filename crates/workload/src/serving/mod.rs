//! Continuous batching of mixed-length serving traffic.
//!
//! Real serving is not a uniform batch: a scheduler admits requests of
//! mixed prompt/output lengths into a fixed number of decode slots,
//! every active request generates one token per step, and finished
//! requests retire so waiting ones can take their slot. The per-step
//! *active set* is therefore heterogeneous — different requests sit at
//! different KV lengths — and its composition changes every step.
//!
//! The pieces that model that regime:
//!
//! * [`RequestMix`] — a deterministic population of requests (per-request
//!   prompt and output lengths), with seeded generators for the shapes
//!   serving traffic actually takes: [`RequestMix::uniform`],
//!   [`RequestMix::bimodal`] (chat + long-document), and
//!   [`RequestMix::long_tail`] (geometric output tail).
//! * [`ArrivalProcess`] — *when* requests show up, in scheduler steps:
//!   closed-loop (everything at step 0), discrete Poisson, bursty, or
//!   diurnal, all seeded and platform-exact.
//! * [`AdmissionPolicy`] — which queued request takes a freed slot:
//!   FIFO, shortest-prompt, or SLO-aware earliest-deadline-first.
//! * [`ServingSchedule`] — the event-driven core (arrival ->
//!   admission/prefill -> token -> retire), built from a
//!   [`ServingConfig`]. Under [`PrefillMode::OnAdmission`] an admitted
//!   prompt is lowered through the dense prefill path (optionally in
//!   chunks) *before* its first decode step, so prefill MACs, energy
//!   and cycles are charged exactly once per request.
//! * [`BatchSchedule`] — the PR 5 closed-loop view, now a thin
//!   projection of the event core at closed-loop/FIFO/resident
//!   settings: FIFO admission on free slot, retirement on completion,
//!   and one [`ScheduleStep`] snapshot per step recording each active
//!   request's KV length *before* the step (the [`DecodePhase`]
//!   convention). Prompts materialize pre-cached and cost nothing —
//!   kept for saturation studies and golden compatibility.
//! * [`ServingModel`] — lowers one scheduler step into bucketed decode
//!   layers. Active requests are grouped by bucketed attend length (the
//!   [`DecodePhase::with_kv_bucket`] machinery), each group becoming one
//!   batched stack of decode blocks, so two steps whose active sets
//!   bucket to the same composition produce networks with identical
//!   [`crate::LayerSignature`]s — a multi-thousand-step trace through an
//!   `EvalSession` costs mapping searches bounded by the number of
//!   distinct *(bucket, group-size)* pairs, not the step count.
//!   [`ServingModel::lower_serving_step`] additionally lowers the
//!   step's prefill chunks through the dense attention path.
//!
//! # Examples
//!
//! ```
//! use lumen_workload::serving::{BatchSchedule, RequestMix, ServingModel};
//!
//! let mix = RequestMix::uniform(4, 128, 8);
//! let schedule = BatchSchedule::build(&mix, 2);
//! // 4 requests x 8 tokens over 2 slots: 16 steps, always full.
//! assert_eq!(schedule.total_steps(), 16);
//! assert_eq!(schedule.total_tokens(), 32);
//! assert!((schedule.mean_occupancy() - 1.0).abs() < 1e-12);
//!
//! let model = ServingModel::gpt2_small();
//! let step = &schedule.steps()[0];
//! let net = model.lower_step(&step.kv_lens(), 64);
//! assert_eq!(net.total_macs(), model.step_macs(&step.kv_lens(), 64));
//! ```

mod arrival;
mod error;
mod event;
mod fleet;
mod paging;
mod policy;
mod scenario;

pub use arrival::ArrivalProcess;
pub use error::ServingError;
pub use event::{PrefillMode, PrefillSlot, ServingConfig, ServingSchedule, ServingStep};
pub use fleet::{Fleet, FleetRouter, InstanceAssignment};
pub use paging::{KvLayout, PageTable, PagedResidency, StepResidency};
pub use policy::AdmissionPolicy;
pub use scenario::{ServingScenario, ServingScenarioBuilder};

use crate::decode::decode_block_macs;
use crate::{DecodePhase, Layer, Network};
use std::collections::BTreeMap;

/// One serving request: `prompt` tokens to place in the KV cache
/// before decoding starts, `output` tokens to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Prompt tokens in the cache before the first decode step.
    pub prompt: usize,
    /// Tokens the request generates before retiring (>= 1).
    pub output: usize,
}

impl Request {
    /// Builds a request description.
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroOutputRequest`] if `output` is zero — a
    /// request that generates nothing never occupies a decode slot.
    pub fn try_new(prompt: usize, output: usize) -> Result<Request, ServingError> {
        if output == 0 {
            return Err(ServingError::ZeroOutputRequest);
        }
        Ok(Request { prompt, output })
    }

    /// Panicking wrapper over [`Request::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `output` is zero.
    pub fn new(prompt: usize, output: usize) -> Request {
        Request::try_new(prompt, output).expect("a request must generate at least one token")
    }
}

/// SplitMix64: the deterministic generator behind the seeded mixes.
/// Small, stable across platforms, and good enough for workload shapes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[lo, hi]` (inclusive) from the generator state.
///
/// # Panics
///
/// Panics on an inverted range — reachable from the public generators
/// (e.g. [`RequestMix::long_tail`]'s prompt bounds), so this must fail
/// loudly in release builds too rather than underflow.
fn draw_range(state: &mut u64, lo: usize, hi: usize) -> usize {
    assert!(lo <= hi, "inverted range: lo={lo} > hi={hi}");
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

/// A deterministic population of serving requests.
///
/// The generators are pure functions of their arguments (seed included),
/// so a mix is reproducible across runs, platforms and thread counts —
/// the same guarantee the golden suite relies on everywhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMix {
    name: String,
    requests: Vec<Request>,
    /// Leading tokens every prompt has in common (a shared system
    /// prompt); 0 = no sharing.
    shared_prefix: usize,
}

impl RequestMix {
    /// A mix from explicit requests.
    ///
    /// # Errors
    ///
    /// [`ServingError::EmptyMix`] if `requests` is empty.
    pub fn try_custom(
        name: impl Into<String>,
        requests: Vec<Request>,
    ) -> Result<RequestMix, ServingError> {
        if requests.is_empty() {
            return Err(ServingError::EmptyMix);
        }
        Ok(RequestMix {
            name: name.into(),
            requests,
            shared_prefix: 0,
        })
    }

    /// Panicking wrapper over [`RequestMix::try_custom`].
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    pub fn custom(name: impl Into<String>, requests: Vec<Request>) -> RequestMix {
        RequestMix::try_custom(name, requests).expect("a request mix cannot be empty")
    }

    /// `count` identical requests — the degenerate mix that reproduces
    /// the uniform-batch model (and PR 4's `decode_trace` when run
    /// through a capacity-1 schedule).
    pub fn uniform(count: usize, prompt: usize, output: usize) -> RequestMix {
        RequestMix::custom(
            format!("uniform(p{prompt},o{output})"),
            vec![Request::new(prompt, output); count],
        )
    }

    /// A two-population mix: chat-style `short` requests with a
    /// `long_percent`% admixture of long-document `long` requests, both
    /// given as `(prompt, output)` pairs. Deterministic in `seed`.
    pub fn bimodal(
        seed: u64,
        count: usize,
        short: (usize, usize),
        long: (usize, usize),
        long_percent: usize,
    ) -> RequestMix {
        assert!(long_percent <= 100, "long_percent is a percentage");
        let mut state = seed;
        let requests = (0..count)
            .map(|_| {
                let (prompt, output) = if draw_range(&mut state, 0, 99) < long_percent {
                    long
                } else {
                    short
                };
                Request::new(prompt, output)
            })
            .collect();
        // The name pins every distinguishing parameter (shapes, split,
        // seed) so two different bimodal mixes never collide in a
        // report row or golden label.
        RequestMix::custom(
            format!(
                "bimodal(p{}o{}|p{}o{}@{long_percent}%,s{seed:x})",
                short.0, short.1, long.0, long.1
            ),
            requests,
        )
    }

    /// A long-tail mix: prompts uniform in `prompt` (inclusive bounds),
    /// outputs `output_base << k` with `P(k) = 2^-(k+1)` capped at
    /// `output_base << max_doublings` — the geometric output tail that
    /// makes continuous batching pay off over static batching.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `output_base` is zero or the prompt bounds are
    /// inverted (`prompt.0 > prompt.1`).
    pub fn long_tail(
        seed: u64,
        count: usize,
        prompt: (usize, usize),
        output_base: usize,
        max_doublings: u32,
    ) -> RequestMix {
        assert!(output_base > 0, "output_base must be nonzero");
        let mut state = seed;
        let requests = (0..count)
            .map(|_| {
                let p = draw_range(&mut state, prompt.0, prompt.1);
                let mut doublings = 0;
                while doublings < max_doublings && draw_range(&mut state, 0, 1) == 1 {
                    doublings += 1;
                }
                Request::new(p, output_base << doublings)
            })
            .collect();
        // As with `bimodal`: prompt bounds and seed join the name so
        // distinct mixes get distinct labels.
        RequestMix::custom(
            format!(
                "long-tail(p{}-{},o{output_base}<<{max_doublings},s{seed:x})",
                prompt.0, prompt.1
            ),
            requests,
        )
    }

    /// The mix's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The requests, in arrival (admission) order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `false` always — construction rejects empty mixes.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total tokens the whole mix generates (the schedule's token count).
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output as u64).sum()
    }

    /// Declares that every prompt starts with the same `shared` tokens —
    /// a common system prompt. Under [`PrefillMode::OnAdmission`] the
    /// first admitted request prefills the prefix once; every later
    /// request skips it and references the cached pages (the trailing
    /// partial page copy-on-write, when the trace is lowered with
    /// [`KvLayout::Paged`]). The mix's name gains a `+shared{L}` suffix
    /// so shared and unshared variants never collide in report rows.
    ///
    /// # Errors
    ///
    /// [`ServingError::SharedPrefixExceedsPrompt`] if `shared` exceeds
    /// the shortest prompt in the mix — it would not be a prefix of
    /// every request.
    pub fn try_with_shared_prefix(mut self, shared: usize) -> Result<RequestMix, ServingError> {
        let min_prompt = self
            .requests
            .iter()
            .map(|r| r.prompt)
            .min()
            .expect("a mix is never empty");
        if shared > min_prompt {
            return Err(ServingError::SharedPrefixExceedsPrompt { shared, min_prompt });
        }
        if shared > 0 && self.shared_prefix == 0 {
            self.name = format!("{}+shared{shared}", self.name);
        }
        self.shared_prefix = shared;
        Ok(self)
    }

    /// Panicking wrapper over [`RequestMix::try_with_shared_prefix`].
    ///
    /// # Panics
    ///
    /// Panics if `shared` exceeds the shortest prompt.
    #[must_use]
    pub fn with_shared_prefix(self, shared: usize) -> RequestMix {
        self.try_with_shared_prefix(shared)
            .expect("a shared prefix must fit inside every prompt")
    }

    /// The shared-prompt-prefix length, in tokens (0 = no sharing).
    pub fn shared_prefix(&self) -> usize {
        self.shared_prefix
    }

    /// The sub-mix at `indices` (in the given order) under `name`,
    /// carrying the shared prefix over verbatim — no `+shared` name
    /// re-suffixing, no re-validation. This is how a fleet router slices
    /// one global mix into per-instance streams.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub(crate) fn subset(&self, name: impl Into<String>, indices: &[usize]) -> RequestMix {
        assert!(!indices.is_empty(), "a sub-mix cannot be empty");
        RequestMix {
            name: name.into(),
            requests: indices.iter().map(|&i| self.requests[i]).collect(),
            shared_prefix: self.shared_prefix,
        }
    }
}

/// One active decode slot at one step: which request occupies it and the
/// tokens cached *before* the step (the [`DecodePhase::kv_len`]
/// convention — the step appends the new token's K/V and attends over
/// `kv_len + 1` positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveSlot {
    /// Index of the request in its [`RequestMix`].
    pub request: usize,
    /// Tokens cached before the step: prompt + tokens generated so far.
    pub kv_len: usize,
}

/// The active set of one scheduler step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    active: Vec<ActiveSlot>,
}

impl ScheduleStep {
    /// The active slots, in admission order.
    pub fn active(&self) -> &[ActiveSlot] {
        &self.active
    }

    /// Requests decoding this step (each generates exactly one token).
    pub fn occupancy(&self) -> usize {
        self.active.len()
    }

    /// The heterogeneous KV lengths of the active set, admission order.
    pub fn kv_lens(&self) -> Vec<usize> {
        self.active.iter().map(|s| s.kv_len).collect()
    }
}

/// A continuous-batching schedule: the full step-by-step trace of a
/// [`RequestMix`] through `capacity` decode slots.
///
/// The policy, pinned by `tests/serving_properties.rs`:
///
/// * All requests are queued at step 0 and admitted FIFO whenever a slot
///   is free (admission happens at the *start* of a step, so a slot
///   freed by a retirement is refilled on the very next step).
/// * Every active request generates exactly one token per step; a
///   request retires at the end of the step that produces its last
///   token.
/// * The schedule ends when the last request retires, so every step has
///   a nonempty active set and occupancy never exceeds `capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSchedule {
    capacity: usize,
    steps: Vec<ScheduleStep>,
}

impl BatchSchedule {
    /// Runs the scheduler over `mix` with `capacity` decode slots.
    ///
    /// Since the event-core refactor this is a projection of
    /// [`ServingSchedule`] at closed-loop arrivals, FIFO admission and
    /// [`PrefillMode::Resident`] — the configuration that reproduces
    /// the PR 5 step compositions bit for bit (pinned by
    /// `tests/serving_properties.rs`).
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroCapacity`] if `capacity` is zero.
    pub fn try_build(mix: &RequestMix, capacity: usize) -> Result<BatchSchedule, ServingError> {
        let config = ServingConfig::try_new(capacity)?.with_prefill(PrefillMode::Resident);
        let event = ServingSchedule::try_build(mix, &config)?;
        let steps = event
            .steps()
            .iter()
            .map(|step| ScheduleStep {
                active: step.decode().to_vec(),
            })
            .collect();
        Ok(BatchSchedule { capacity, steps })
    }

    /// Panicking wrapper over [`BatchSchedule::try_build`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn build(mix: &RequestMix, capacity: usize) -> BatchSchedule {
        BatchSchedule::try_build(mix, capacity).expect("a schedule needs at least one decode slot")
    }

    /// The slot count the schedule was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-step active sets, in execution order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// Steps until the last request retires.
    pub fn total_steps(&self) -> usize {
        self.steps.len()
    }

    /// Tokens generated over the whole schedule — equal to the mix's
    /// [`RequestMix::total_output_tokens`] by construction.
    pub fn total_tokens(&self) -> u64 {
        self.steps.iter().map(|s| s.occupancy() as u64).sum()
    }

    /// Mean slot occupancy over the schedule: in (0, 1] for a schedule
    /// with steps, 0.0 for an empty one (an empty mix never reaches
    /// construction, but a consumer holding a default/cleared schedule
    /// still gets a finite answer).
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.total_tokens() as f64 / (self.steps.len() * self.capacity) as f64
    }
}

/// The decoder-LM shape a scheduler step lowers onto: `blocks` pre-norm
/// transformer decoder blocks (width `d_model`, `heads` heads, MLP
/// hidden width `d_ff`) plus a `vocab`-wide LM head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingModel {
    name: String,
    d_model: usize,
    heads: usize,
    d_ff: usize,
    blocks: usize,
    vocab: usize,
    max_context: Option<usize>,
}

impl ServingModel {
    /// Builds a model shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `d_model` is not divisible by
    /// `heads`.
    pub fn new(
        name: impl Into<String>,
        d_model: usize,
        heads: usize,
        d_ff: usize,
        blocks: usize,
        vocab: usize,
    ) -> ServingModel {
        assert!(
            d_model > 0 && heads > 0 && d_ff > 0 && blocks > 0 && vocab > 0,
            "model dimensions must be nonzero"
        );
        assert!(
            d_model.is_multiple_of(heads),
            "d_model={d_model} not divisible by heads={heads}"
        );
        ServingModel {
            name: name.into(),
            d_model,
            heads,
            d_ff,
            blocks,
            vocab,
            max_context: None,
        }
    }

    /// GPT-2 small: 12 blocks, d_model 768, 12 heads, d_ff 3072, vocab
    /// 50257, 1024-token context — the same shape as
    /// [`crate::networks::gpt2_small_decode`], which a single-slot
    /// schedule reproduces signature for signature.
    pub fn gpt2_small() -> ServingModel {
        ServingModel::new("gpt2-small", 768, 12, 3072, 12, 50257).with_max_context(1024)
    }

    /// Declares the longest KV sequence (prompt + generated) the model
    /// supports — checked by the `L0404` lint, not enforced here.
    ///
    /// # Panics
    ///
    /// Panics if `max_context` is zero.
    pub fn with_max_context(mut self, max_context: usize) -> ServingModel {
        assert!(max_context > 0, "a context window must hold a token");
        self.max_context = Some(max_context);
        self
    }

    /// The declared context window, if any.
    pub fn max_context(&self) -> Option<usize> {
        self.max_context
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Groups `active_kv` by bucketed attend length: for each distinct
    /// `L = bucket_round_up(kv + 1)` the number of active requests whose
    /// step attends over `L` padded positions, ascending in `L`.
    ///
    /// This is the step's *bucketed composition* — the lowering is a
    /// pure function of it, so two steps with equal compositions produce
    /// networks with identical layer signatures.
    pub fn bucketed_composition(active_kv: &[usize], kv_bucket: usize) -> Vec<(usize, usize)> {
        assert!(kv_bucket > 0, "kv bucket must be nonzero");
        let mut groups: BTreeMap<usize, usize> = BTreeMap::new();
        for &kv in active_kv {
            let len = (kv + 1).div_ceil(kv_bucket) * kv_bucket;
            *groups.entry(len).or_insert(0) += 1;
        }
        groups.into_iter().collect()
    }

    /// Lowers one scheduler step into bucketed decode layers: one
    /// batched stack of decode blocks (plus LM head) per bucketed
    /// attend-length group. Within a group the whole group shares the
    /// padded attend length — exactly the [`DecodePhase::with_kv_bucket`]
    /// padded-MAC accounting — and the group size rides the batch lever
    /// (projection weights shared across the group, KV caches replicated
    /// per request).
    ///
    /// # Panics
    ///
    /// Panics if `active_kv` is empty or `kv_bucket` is zero.
    pub fn lower_step(&self, active_kv: &[usize], kv_bucket: usize) -> Network {
        assert!(!active_kv.is_empty(), "a step lowers a nonempty active set");
        let net = Network::new(format!("{}-serving@occ{}", self.name, active_kv.len()));
        self.push_decode_groups(net, active_kv, kv_bucket)
    }

    /// Pushes the bucketed decode-group stacks of `active_kv` onto
    /// `net` — the body shared by [`ServingModel::lower_step`] and
    /// [`ServingModel::lower_serving_step`]. A no-op on an empty
    /// active set (a pure-prefill event step).
    fn push_decode_groups(
        &self,
        mut net: Network,
        active_kv: &[usize],
        kv_bucket: usize,
    ) -> Network {
        let composition = ServingModel::bucketed_composition(active_kv, kv_bucket);
        for &(attend_len, group) in &composition {
            let prefix = format!("kv{attend_len}x{group}");
            for block in 0..self.blocks {
                let phase = DecodePhase::new(
                    format!("{prefix}.decoder.{block}.attn"),
                    self.d_model,
                    self.heads,
                )
                .with_kv_len(attend_len - 1)
                .with_kv_bucket(kv_bucket)
                .with_batch(group);
                for layer in phase.lower() {
                    net = net.push(layer);
                }
                net = net
                    .push(Layer::gemv(
                        format!("{prefix}.decoder.{block}.mlp.fc1"),
                        group,
                        self.d_ff,
                        self.d_model,
                    ))
                    .push(Layer::gemv(
                        format!("{prefix}.decoder.{block}.mlp.fc2"),
                        group,
                        self.d_model,
                        self.d_ff,
                    ));
            }
            net = net.push(Layer::gemv(
                format!("{prefix}.lm-head"),
                group,
                self.vocab,
                self.d_model,
            ));
        }
        net
    }

    /// Closed-form MAC count of [`ServingModel::lower_step`]: the sum
    /// over the active set of each request's padded per-token work,
    /// `blocks · (4·D² + 2·L·D + 2·D·D_ff) + vocab·D` at that request's
    /// bucketed attend length `L`.
    pub fn step_macs(&self, active_kv: &[usize], kv_bucket: usize) -> u64 {
        assert!(kv_bucket > 0, "kv bucket must be nonzero");
        active_kv
            .iter()
            .map(|&kv| {
                let len = (kv + 1).div_ceil(kv_bucket) * kv_bucket;
                self.blocks as u64 * decode_block_macs(len, self.d_model, self.d_ff)
                    + (self.vocab * self.d_model) as u64
            })
            .sum()
    }

    /// Pushes one prefill chunk — `slot.chunk` prompt tokens entering
    /// the cache on top of `slot.cached` already-prefilled ones —
    /// through the dense attention path: the [`crate::Attention`]
    /// lowering at seq = chunk, with the attended length padded to the
    /// KV bucket (so in-bucket chunks share signatures, the same
    /// economics as decode) and the chunk's K/V writes charged through
    /// the KV-residency accounting. No LM head: the first sampled
    /// token is the first *decode* step's, preserving the decode-path
    /// semantics of `output` tokens per request.
    fn push_prefill_chunk(
        &self,
        mut net: Network,
        slot: &PrefillSlot,
        kv_bucket: usize,
        cow_tokens: usize,
    ) -> Network {
        let (d, h, c) = (self.d_model, self.heads, slot.chunk);
        // Every computed token attends over the whole cache-so-far plus
        // the chunk, padded to the bucket — dense (non-causal)
        // accounting, matching `Attention::lower` at seq = prompt when
        // nothing is cached.
        let len = (slot.cached + c).div_ceil(kv_bucket) * kv_bucket;
        let prefix = if cow_tokens > 0 {
            format!("pf{}.kv{len}c{c}+cow{cow_tokens}", slot.request)
        } else {
            format!("pf{}.kv{len}c{c}", slot.request)
        };
        // A sharer's first private chunk privatises the shared prefix's
        // trailing partial page before its K/V land: `cow_tokens · d`
        // cache elements are re-read and re-written once, split across
        // the two cache-resident layers like the append itself.
        let cow = |layer: Layer| {
            if cow_tokens > 0 {
                layer.with_kv_cow(cow_tokens * d)
            } else {
                layer
            }
        };
        for block in 0..self.blocks {
            let name = |part: &str| format!("{prefix}.decoder.{block}.{part}");
            net = net
                .push(Layer::matmul(name("attn.query"), 1, d, d, c))
                .push(Layer::matmul(name("attn.key"), 1, d, d, c))
                .push(Layer::matmul(name("attn.value"), 1, d, d, c))
                .push(cow(Layer::matmul(name("attn.logits"), 1, h * len, d, c)
                    .with_groups(h)
                    .with_kv_cache_residency(c * d)))
                .push(cow(Layer::matmul(name("attn.attend"), 1, d, h * len, c)
                    .with_groups(h)
                    .with_kv_cache_residency(c * d)))
                .push(Layer::matmul(name("attn.out"), 1, d, d, c))
                .push(Layer::matmul(name("mlp.fc1"), 1, self.d_ff, d, c))
                .push(Layer::matmul(name("mlp.fc2"), 1, d, self.d_ff, c));
        }
        net
    }

    /// The copy-on-write token count a prefill slot pays under `layout`:
    /// the shared prefix's trailing partial page, charged exactly once —
    /// on the sharer's *first* private chunk (the chunk starting at
    /// `cached == shared`). Zero for the prefix owner, for bucketed
    /// layouts, and for page-aligned prefixes.
    fn prefill_cow_tokens(layout: &KvLayout, slot: &PrefillSlot) -> usize {
        match layout {
            KvLayout::Paged(table) if slot.shared > 0 && slot.cached == slot.shared => {
                table.cow_tokens()
            }
            _ => 0,
        }
    }

    /// Lowers one event-core step: the bucketed decode groups of the
    /// decoding slots (exactly [`ServingModel::lower_step`]) plus one
    /// dense prefill stack per prefilling slot. For a step with no
    /// prefill slots this produces the same layers as `lower_step`, so
    /// closed-loop resident traces keep PR 5's signatures.
    ///
    /// # Panics
    ///
    /// Panics if the step is empty or `kv_bucket` is zero.
    pub fn lower_serving_step(&self, step: &ServingStep, kv_bucket: usize) -> Network {
        self.lower_serving_step_with(step, &KvLayout::Bucketed { bucket: kv_bucket })
    }

    /// Lowers one event-core step under an explicit KV residency
    /// [`KvLayout`]. [`KvLayout::Bucketed`] reproduces
    /// [`ServingModel::lower_serving_step`] exactly; [`KvLayout::Paged`]
    /// pads attend lengths to the page instead of the bucket (so decode
    /// reads cover exactly the allocated pages), batches the
    /// KV-independent layers over the *whole* decode set (see
    /// [`ServingModel::push_decode_groups_paged`] — splitting them per
    /// length class is an artifact of bucket padding), and charges each
    /// sharer's first private chunk with the shared prefix's partial-page
    /// copy-on-write (see [`Layer::with_kv_cow`]).
    ///
    /// # Panics
    ///
    /// Panics if the step is empty or the layout's quantum is zero.
    pub fn lower_serving_step_with(&self, step: &ServingStep, layout: &KvLayout) -> Network {
        assert!(step.occupancy() > 0, "a step lowers a nonempty active set");
        let quantum = layout.quantum();
        let mut net = Network::new(format!("{}-serving@occ{}", self.name, step.occupancy()));
        let kv_lens = step.decode_kv_lens();
        net = match layout {
            KvLayout::Bucketed { bucket } => self.push_decode_groups(net, &kv_lens, *bucket),
            KvLayout::Paged(table) => self.push_decode_groups_paged(net, &kv_lens, table.page()),
        };
        for slot in step.prefill() {
            let cow = ServingModel::prefill_cow_tokens(layout, slot);
            net = self.push_prefill_chunk(net, slot, quantum, cow);
        }
        net
    }

    /// Pushes the decoding slots under exact paged residency. The
    /// KV-*independent* layers — QKV/output projections, the MLP pair
    /// and the LM head — batch over the whole decode set: every member
    /// multiplies the same weights, so one fetch serves all of them
    /// regardless of how long each member's cache is (the per-length
    /// grouping of [`ServingModel::push_decode_groups`] is an artifact
    /// of bucket padding, and reproducing it at page granularity would
    /// shred the batch lever into near-singleton groups and *inflate*
    /// weight traffic). Only the logits/attend pair, whose reduction
    /// length *is* the cache, splits by page-padded attend length —
    /// each group reads exactly its allocated pages and appends one
    /// `d_model`-slice per member. Per-request MACs are identical to
    /// [`ServingModel::step_macs`] at `kv_bucket = page`: batching
    /// moves weight traffic, not arithmetic. A no-op on an empty
    /// active set (a pure-prefill event step).
    fn push_decode_groups_paged(
        &self,
        mut net: Network,
        active_kv: &[usize],
        page: usize,
    ) -> Network {
        if active_kv.is_empty() {
            return net;
        }
        let (d, h, n) = (self.d_model, self.heads, active_kv.len());
        let composition = ServingModel::bucketed_composition(active_kv, page);
        for block in 0..self.blocks {
            let name = |part: &str| format!("pg.occ{n}.decoder.{block}.{part}");
            net = net
                .push(Layer::gemv(name("attn.query"), n, d, d))
                .push(Layer::gemv(name("attn.key"), n, d, d))
                .push(Layer::gemv(name("attn.value"), n, d, d));
            for &(len, group) in &composition {
                let gname = |part: &str| format!("pg{len}x{group}.decoder.{block}.attn.{part}");
                net = net
                    .push(
                        Layer::matmul(gname("logits"), 1, h * len, d, 1)
                            .with_groups(h)
                            .with_kv_cache_residency(d)
                            .with_batch(group),
                    )
                    .push(
                        Layer::matmul(gname("attend"), 1, d, h * len, 1)
                            .with_groups(h)
                            .with_kv_cache_residency(d)
                            .with_batch(group),
                    );
            }
            net = net
                .push(Layer::gemv(name("attn.out"), n, d, d))
                .push(Layer::gemv(name("mlp.fc1"), n, self.d_ff, d))
                .push(Layer::gemv(name("mlp.fc2"), n, d, self.d_ff));
        }
        net.push(Layer::gemv(format!("pg.occ{n}.lm-head"), n, self.vocab, d))
    }

    /// Closed-form MAC count of one prefill chunk, mirroring
    /// [`ServingModel::push_prefill_chunk`]: per block `4·c·D² +
    /// 2·c·L·D + 2·c·D·D_ff` at chunk size `c` and bucketed attended
    /// length `L` — [`crate::attention::encoder_block_macs`] when the
    /// whole prompt is one unpadded chunk.
    pub fn prefill_chunk_macs(&self, cached: usize, chunk: usize, kv_bucket: usize) -> u64 {
        assert!(kv_bucket > 0, "kv bucket must be nonzero");
        let len = ((cached + chunk).div_ceil(kv_bucket) * kv_bucket) as u64;
        let (c, d, f) = (chunk as u64, self.d_model as u64, self.d_ff as u64);
        self.blocks as u64 * (4 * c * d * d + 2 * c * len * d + 2 * c * d * f)
    }

    /// Closed-form MAC count of a whole prompt's prefill at `chunk`
    /// tokens per event (`None` = one event), summed over chunks.
    pub fn prefill_macs(&self, prompt: usize, chunk: Option<usize>, kv_bucket: usize) -> u64 {
        let step = chunk.unwrap_or(prompt.max(1));
        let mut cached = 0;
        let mut macs = 0;
        while cached < prompt {
            let c = step.min(prompt - cached);
            macs += self.prefill_chunk_macs(cached, c, kv_bucket);
            cached += c;
        }
        macs
    }

    /// Closed-form MAC count of [`ServingModel::lower_serving_step`]:
    /// [`ServingModel::step_macs`] of the decoding slots plus
    /// [`ServingModel::prefill_chunk_macs`] of each prefilling slot.
    pub fn serving_step_macs(&self, step: &ServingStep, kv_bucket: usize) -> u64 {
        self.step_macs(&step.decode_kv_lens(), kv_bucket)
            + step
                .prefill()
                .iter()
                .map(|s| self.prefill_chunk_macs(s.cached, s.chunk, kv_bucket))
                .sum::<u64>()
    }

    /// Closed-form MAC count of [`ServingModel::lower_serving_step_with`]:
    /// the bucketed closed forms evaluated at the layout's quantum.
    /// Copy-on-write moves cache bytes but multiplies nothing, so the
    /// layout's page table affects MACs only through the attend padding.
    pub fn serving_step_macs_with(&self, step: &ServingStep, layout: &KvLayout) -> u64 {
        self.serving_step_macs(step, layout.quantum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerSignature;
    use std::collections::HashSet;

    #[test]
    fn uniform_mix_is_identical_requests() {
        let mix = RequestMix::uniform(5, 64, 8);
        assert_eq!(mix.len(), 5);
        assert!(mix
            .requests()
            .iter()
            .all(|r| r.prompt == 64 && r.output == 8));
        assert_eq!(mix.total_output_tokens(), 40);
        assert!(!mix.is_empty());
    }

    #[test]
    fn seeded_mixes_are_deterministic() {
        let a = RequestMix::bimodal(7, 32, (64, 16), (512, 64), 25);
        let b = RequestMix::bimodal(7, 32, (64, 16), (512, 64), 25);
        assert_eq!(a, b);
        let c = RequestMix::bimodal(8, 32, (64, 16), (512, 64), 25);
        assert_ne!(a, c, "a different seed draws a different mix");

        let t = RequestMix::long_tail(3, 64, (32, 256), 16, 3);
        assert_eq!(t, RequestMix::long_tail(3, 64, (32, 256), 16, 3));
        for r in t.requests() {
            assert!((32..=256).contains(&r.prompt));
            assert!(r.output >= 16 && r.output <= 16 << 3);
            assert!((r.output / 16).is_power_of_two());
        }
    }

    #[test]
    fn bimodal_mixes_both_populations() {
        let mix = RequestMix::bimodal(11, 64, (64, 16), (512, 64), 25);
        let long = mix.requests().iter().filter(|r| r.prompt == 512).count();
        assert!(long > 0 && long < 64, "both populations present: {long}");
    }

    #[test]
    fn scheduler_fills_slots_and_drains() {
        // 3 requests of 2 tokens over 2 slots: steps are
        // {0,1} {0,1} {2} {2}.
        let mix = RequestMix::uniform(3, 10, 2);
        let schedule = BatchSchedule::build(&mix, 2);
        assert_eq!(schedule.total_steps(), 4);
        assert_eq!(schedule.total_tokens(), 6);
        let occ: Vec<usize> = schedule
            .steps()
            .iter()
            .map(ScheduleStep::occupancy)
            .collect();
        assert_eq!(occ, vec![2, 2, 1, 1]);
        // Request 2 waits two steps, then runs with a growing cache.
        assert_eq!(schedule.steps()[2].active()[0].request, 2);
        assert_eq!(schedule.steps()[2].active()[0].kv_len, 10);
        assert_eq!(schedule.steps()[3].active()[0].kv_len, 11);
    }

    #[test]
    fn retirement_frees_the_slot_for_the_next_step() {
        // A 1-token request and a 3-token request over one slot: the
        // short one finishes at step 0 and the long one starts at step 1.
        let mix = RequestMix::custom("m", vec![Request::new(4, 1), Request::new(8, 3)]);
        let schedule = BatchSchedule::build(&mix, 1);
        assert_eq!(schedule.total_steps(), 4);
        let reqs: Vec<usize> = schedule
            .steps()
            .iter()
            .map(|s| s.active()[0].request)
            .collect();
        assert_eq!(reqs, vec![0, 1, 1, 1]);
        assert_eq!(schedule.steps()[1].kv_lens(), vec![8]);
        assert_eq!(schedule.steps()[3].kv_lens(), vec![10]);
    }

    #[test]
    fn composition_groups_by_bucket() {
        // kv 0, 63, 64 at bucket 64: attend lengths 1->64, 64->64,
        // 65->128.
        let comp = ServingModel::bucketed_composition(&[0, 63, 64], 64);
        assert_eq!(comp, vec![(64, 2), (128, 1)]);
    }

    #[test]
    fn lower_step_matches_closed_form() {
        let model = ServingModel::gpt2_small();
        for kv in [vec![0], vec![5, 5, 5], vec![0, 100, 300, 301]] {
            for bucket in [1, 64, 256] {
                let net = model.lower_step(&kv, bucket);
                assert_eq!(
                    net.total_macs(),
                    model.step_macs(&kv, bucket),
                    "kv={kv:?} bucket={bucket}"
                );
            }
        }
    }

    #[test]
    fn equal_compositions_share_every_signature() {
        let model = ServingModel::new("toy", 64, 4, 128, 2, 1000);
        let sigs = |kv: &[usize]| -> HashSet<LayerSignature> {
            model
                .lower_step(kv, 32)
                .layers()
                .iter()
                .map(Layer::signature)
                .collect()
        };
        // Different exact kv lengths, same bucketed composition.
        let a = sigs(&[3, 40, 41]);
        let b = sigs(&[20, 33, 60]);
        assert_eq!(a, b, "same (bucket, count) composition, same signatures");
        // A different composition differs.
        let c = sigs(&[3, 40, 70]);
        assert_ne!(a, c);
    }

    #[test]
    fn single_slot_step_matches_decode_builder_signatures() {
        use crate::networks;
        let model = ServingModel::gpt2_small();
        for (kv, bucket) in [(0usize, 64usize), (127, 64), (500, 128)] {
            let serving = model.lower_step(&[kv], bucket);
            let decode = networks::gpt2_small_decode_bucketed(kv, bucket);
            assert_eq!(serving.layers().len(), decode.layers().len());
            assert_eq!(serving.total_macs(), decode.total_macs());
            for (s, d) in serving.layers().iter().zip(decode.layers()) {
                assert_eq!(
                    s.signature(),
                    d.signature(),
                    "kv={kv} bucket={bucket}: {} vs {}",
                    s.name(),
                    d.name()
                );
            }
        }
    }

    #[test]
    fn mix_names_pin_seed_and_shape() {
        let a = RequestMix::bimodal(0xA, 4, (64, 16), (512, 48), 25);
        let b = RequestMix::bimodal(0xB, 4, (64, 16), (512, 48), 25);
        assert_eq!(a.name(), "bimodal(p64o16|p512o48@25%,sa)");
        assert_ne!(a.name(), b.name(), "different seeds, different labels");
        let t = RequestMix::long_tail(0xC, 4, (64, 384), 12, 3);
        assert_eq!(t.name(), "long-tail(p64-384,o12<<3,sc)");
        assert_ne!(
            t.name(),
            RequestMix::long_tail(0xC, 4, (32, 384), 12, 3).name(),
            "different prompt bounds, different labels"
        );
    }

    #[test]
    fn prefill_chunk_lowering_matches_closed_form() {
        let model = ServingModel::gpt2_small();
        for (cached, chunk, bucket) in [(0, 128, 1), (0, 128, 256), (128, 128, 64), (192, 50, 256)]
        {
            let slot = PrefillSlot {
                request: 0,
                cached,
                chunk,
                shared: 0,
            };
            let net = model.push_prefill_chunk(Network::new("pf"), &slot, bucket, 0);
            assert_eq!(
                net.total_macs(),
                model.prefill_chunk_macs(cached, chunk, bucket),
                "cached={cached} chunk={chunk} bucket={bucket}"
            );
        }
    }

    #[test]
    fn unpadded_whole_prompt_prefill_matches_the_encoder_closed_form() {
        // One unchunked prefill event at bucket 1 is the dense
        // attention lowering at seq = prompt: the per-block MACs equal
        // `encoder_block_macs` exactly.
        use crate::attention::encoder_block_macs;
        let model = ServingModel::gpt2_small();
        let prompt = 384;
        assert_eq!(
            model.prefill_macs(prompt, None, 1),
            12 * encoder_block_macs(prompt, 768, 3072)
        );
        // Chunking at the full prompt length changes nothing.
        assert_eq!(
            model.prefill_macs(prompt, Some(prompt), 1),
            model.prefill_macs(prompt, None, 1)
        );
        // Finer chunks repeat cache reads but never lose tokens: the
        // projection/MLP terms are chunk-invariant.
        assert!(model.prefill_macs(prompt, Some(128), 1) < model.prefill_macs(prompt, None, 1));
    }

    #[test]
    fn serving_step_lowering_matches_closed_form_with_prefill() {
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::custom(
            "m",
            vec![
                Request::new(300, 4),
                Request::new(64, 2),
                Request::new(64, 2),
            ],
        );
        let config =
            ServingConfig::new(3).with_prefill(PrefillMode::OnAdmission { chunk: Some(128) });
        let schedule = ServingSchedule::build(&mix, &config);
        assert!(schedule
            .steps()
            .iter()
            .any(|s| !s.prefill().is_empty() && !s.decode().is_empty()));
        for step in schedule.steps() {
            let net = model.lower_serving_step(step, 256);
            assert_eq!(net.total_macs(), model.serving_step_macs(step, 256));
        }
    }

    #[test]
    fn pure_decode_serving_step_matches_lower_step() {
        let model = ServingModel::gpt2_small();
        let mix = RequestMix::uniform(3, 100, 4);
        let config = ServingConfig::new(2).with_prefill(PrefillMode::Resident);
        let schedule = ServingSchedule::build(&mix, &config);
        for step in schedule.steps() {
            let via_event = model.lower_serving_step(step, 64);
            let via_legacy = model.lower_step(&step.decode_kv_lens(), 64);
            assert_eq!(via_event.layers().len(), via_legacy.layers().len());
            for (a, b) in via_event.layers().iter().zip(via_legacy.layers()) {
                assert_eq!(a.signature(), b.signature());
            }
        }
    }

    #[test]
    fn constructor_errors_are_typed() {
        assert_eq!(
            Request::try_new(10, 0),
            Err(ServingError::ZeroOutputRequest)
        );
        assert_eq!(
            RequestMix::try_custom("empty", vec![]).unwrap_err(),
            ServingError::EmptyMix
        );
        assert_eq!(
            BatchSchedule::try_build(&RequestMix::uniform(1, 1, 1), 0).unwrap_err(),
            ServingError::ZeroCapacity
        );
    }

    #[test]
    fn gpt2_small_declares_its_context_window() {
        assert_eq!(ServingModel::gpt2_small().max_context(), Some(1024));
        assert_eq!(
            ServingModel::new("toy", 64, 4, 128, 2, 1000).max_context(),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_requests_are_rejected() {
        let _ = Request::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one decode slot")]
    fn zero_capacity_is_rejected() {
        let _ = BatchSchedule::build(&RequestMix::uniform(1, 1, 1), 0);
    }
}
