//! Seeded arrival processes: when requests show up, in scheduler steps.
//!
//! PR 5's scheduler was closed-loop — every request queued at step 0 —
//! which saturates the slots and can only answer throughput questions.
//! An [`ArrivalProcess`] opens the loop: each request is assigned a
//! deterministic arrival step, and the event core admits it no earlier.
//!
//! All processes are discretized to one Bernoulli trial per scheduler
//! step on the existing SplitMix64 plumbing, for the same reason the
//! mixes use it: the draws touch only IEEE basic arithmetic (compare a
//! 53-bit uniform against a rate), so arrival times are bit-identical
//! across platforms and thread counts — the golden suite's invariant.
//! A per-step Bernoulli(`rate`) trial makes inter-arrival gaps
//! geometric with mean `1/rate` steps, the discrete analogue of a
//! Poisson process's exponential gaps.

use super::error::ServingError;
use super::splitmix64;
use std::fmt;

/// Converts one SplitMix64 draw into a uniform in `[0, 1)` using only
/// the 53 mantissa bits a f64 represents exactly.
fn unit(state: &mut u64) -> f64 {
    const SCALE: f64 = 1.0 / 9_007_199_254_740_992.0; // 2^-53
    (splitmix64(state) >> 11) as f64 * SCALE
}

/// A deterministic arrival process over scheduler steps.
///
/// Construction validates rates, so every variant held by a process is
/// schedulable: the non-closed processes produce any requested number
/// of arrivals in finite (seed-determined) time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Every request queued at step 0 — PR 5's saturation regime.
    ClosedLoop,
    /// One Bernoulli(`rate`) trial per step: geometric inter-arrival
    /// gaps with mean `1/rate` steps (discrete Poisson).
    Poisson {
        /// Mean arrivals per step, in `(0, 1]`.
        rate: f64,
        /// SplitMix64 seed.
        seed: u64,
    },
    /// A burst of `burst` simultaneous requests every `period` steps on
    /// top of a background Bernoulli(`rate`) trickle.
    Bursty {
        /// Background arrivals per step, in `[0, 1]`.
        rate: f64,
        /// Steps between bursts.
        period: usize,
        /// Requests per burst.
        burst: usize,
        /// SplitMix64 seed.
        seed: u64,
    },
    /// A rate that sweeps a triangle wave between `trough` and `peak`
    /// over `period` steps — the day/night load cycle, without
    /// transcendental functions so the draws stay platform-exact.
    Diurnal {
        /// Off-peak arrivals per step, in `[0, 1]`.
        trough: f64,
        /// Peak arrivals per step, in `(0, 1]`.
        peak: f64,
        /// Steps per full day cycle.
        period: usize,
        /// SplitMix64 seed.
        seed: u64,
    },
    /// A literal, pre-computed arrival trace: request `i` arrives at
    /// `steps[i]`. This is how a fleet router replays the slice of a
    /// global stream it assigned to one instance — the sub-schedule sees
    /// exactly the steps the fleet-level draw produced, with no
    /// re-rolling.
    Explicit {
        /// Arrival step of each request, non-decreasing.
        steps: Vec<usize>,
    },
}

impl ArrivalProcess {
    /// The closed-loop process: all requests at step 0.
    pub fn closed_loop() -> ArrivalProcess {
        ArrivalProcess::ClosedLoop
    }

    /// A discrete Poisson process at `rate` arrivals per step.
    ///
    /// # Errors
    ///
    /// [`ServingError::ArrivalRateOutOfRange`] unless `0 < rate <= 1`.
    pub fn try_poisson(rate: f64, seed: u64) -> Result<ArrivalProcess, ServingError> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(ServingError::ArrivalRateOutOfRange(rate));
        }
        Ok(ArrivalProcess::Poisson { rate, seed })
    }

    /// Panicking wrapper over [`ArrivalProcess::try_poisson`].
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `(0, 1]`.
    pub fn poisson(rate: f64, seed: u64) -> ArrivalProcess {
        ArrivalProcess::try_poisson(rate, seed).expect("arrival rate must lie in (0, 1]")
    }

    /// A bursty process: `burst` requests every `period` steps plus a
    /// Bernoulli(`rate`) background trickle.
    ///
    /// # Errors
    ///
    /// [`ServingError::BackgroundRateOutOfRange`] unless `0 <= rate <=
    /// 1`, [`ServingError::ZeroArrivalPeriod`] on a zero period, and
    /// [`ServingError::ZeroBurst`] on an empty burst.
    pub fn try_bursty(
        rate: f64,
        period: usize,
        burst: usize,
        seed: u64,
    ) -> Result<ArrivalProcess, ServingError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(ServingError::BackgroundRateOutOfRange(rate));
        }
        if period == 0 {
            return Err(ServingError::ZeroArrivalPeriod);
        }
        if burst == 0 {
            return Err(ServingError::ZeroBurst);
        }
        Ok(ArrivalProcess::Bursty {
            rate,
            period,
            burst,
            seed,
        })
    }

    /// Panicking wrapper over [`ArrivalProcess::try_bursty`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid rate, period or burst size.
    pub fn bursty(rate: f64, period: usize, burst: usize, seed: u64) -> ArrivalProcess {
        ArrivalProcess::try_bursty(rate, period, burst, seed)
            .expect("bursty arrivals need a probability rate, a period and a burst size")
    }

    /// A diurnal process: the rate sweeps a triangle wave from `trough`
    /// up to `peak` and back over `period` steps.
    ///
    /// # Errors
    ///
    /// [`ServingError::ArrivalRateOutOfRange`] unless `0 < peak <= 1`,
    /// [`ServingError::BackgroundRateOutOfRange`] unless `0 <= trough
    /// <= 1`, [`ServingError::DiurnalRangeInverted`] if `trough >
    /// peak`, and [`ServingError::ZeroArrivalPeriod`] on a zero period.
    pub fn try_diurnal(
        trough: f64,
        peak: f64,
        period: usize,
        seed: u64,
    ) -> Result<ArrivalProcess, ServingError> {
        if !(peak > 0.0 && peak <= 1.0) {
            return Err(ServingError::ArrivalRateOutOfRange(peak));
        }
        if !(0.0..=1.0).contains(&trough) {
            return Err(ServingError::BackgroundRateOutOfRange(trough));
        }
        if trough > peak {
            return Err(ServingError::DiurnalRangeInverted { trough, peak });
        }
        if period == 0 {
            return Err(ServingError::ZeroArrivalPeriod);
        }
        Ok(ArrivalProcess::Diurnal {
            trough,
            peak,
            period,
            seed,
        })
    }

    /// Panicking wrapper over [`ArrivalProcess::try_diurnal`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid rate range or a zero period.
    pub fn diurnal(trough: f64, peak: f64, period: usize, seed: u64) -> ArrivalProcess {
        ArrivalProcess::try_diurnal(trough, peak, period, seed)
            .expect("diurnal arrivals need trough <= peak probabilities and a period")
    }

    /// A literal arrival trace: request `i` arrives at `steps[i]`.
    ///
    /// # Errors
    ///
    /// [`ServingError::UnsortedArrivals`] if the steps ever decrease —
    /// requests are indexed in arrival order, so the trace must be
    /// non-decreasing.
    pub fn try_explicit(steps: Vec<usize>) -> Result<ArrivalProcess, ServingError> {
        if let Some(index) = steps.windows(2).position(|w| w[0] > w[1]) {
            return Err(ServingError::UnsortedArrivals { index: index + 1 });
        }
        Ok(ArrivalProcess::Explicit { steps })
    }

    /// Panicking wrapper over [`ArrivalProcess::try_explicit`].
    ///
    /// # Panics
    ///
    /// Panics if the steps are not non-decreasing.
    pub fn explicit(steps: Vec<usize>) -> ArrivalProcess {
        ArrivalProcess::try_explicit(steps).expect("explicit arrival steps must be non-decreasing")
    }

    /// The Bernoulli rate at scheduler step `wall` (unused by
    /// [`ArrivalProcess::ClosedLoop`]).
    fn rate_at(&self, wall: usize) -> f64 {
        match *self {
            ArrivalProcess::ClosedLoop | ArrivalProcess::Explicit { .. } => 0.0,
            ArrivalProcess::Poisson { rate, .. } | ArrivalProcess::Bursty { rate, .. } => rate,
            ArrivalProcess::Diurnal {
                trough,
                peak,
                period,
                ..
            } => {
                // Triangle wave: 0 at phase 0, 1 at phase period/2,
                // back to 0 — integer phase arithmetic, then one
                // division, so the value is platform-exact.
                let phase = wall % period;
                let up = 2 * phase.min(period - phase);
                trough + (peak - trough) * (up as f64 / period as f64)
            }
        }
    }

    /// The deterministic arrival step of each of `count` requests, in
    /// arrival (= admission-queue) order, non-decreasing.
    pub fn arrival_steps(&self, count: usize) -> Vec<usize> {
        if matches!(self, ArrivalProcess::ClosedLoop) {
            return vec![0; count];
        }
        if let ArrivalProcess::Explicit { steps } = self {
            // A trace shorter than the mix extends at its final step —
            // the stream "ended" there; fleet routing always hands a
            // trace exactly as long as the sub-mix, so the pad is a
            // robustness fallback, not a code path studies exercise.
            let pad = steps.last().copied().unwrap_or(0);
            let mut out: Vec<usize> = steps.iter().copied().take(count).collect();
            out.resize(count, pad);
            return out;
        }
        let mut state = match *self {
            ArrivalProcess::ClosedLoop | ArrivalProcess::Explicit { .. } => 0,
            ArrivalProcess::Poisson { seed, .. }
            | ArrivalProcess::Bursty { seed, .. }
            | ArrivalProcess::Diurnal { seed, .. } => seed,
        };
        let mut arrivals = Vec::with_capacity(count);
        let mut wall = 0usize;
        while arrivals.len() < count {
            if let ArrivalProcess::Bursty { period, burst, .. } = *self {
                if wall.is_multiple_of(period) {
                    for _ in 0..burst.min(count - arrivals.len()) {
                        arrivals.push(wall);
                    }
                }
            }
            // Exactly one draw per step keeps the stream independent of
            // how many arrivals have been consumed so far.
            if unit(&mut state) < self.rate_at(wall) && arrivals.len() < count {
                arrivals.push(wall);
            }
            wall += 1;
        }
        arrivals
    }

    /// Mean offered arrivals per step, or `None` for the closed loop
    /// (whose offered load is "everything, immediately").
    pub fn mean_rate(&self) -> Option<f64> {
        match *self {
            ArrivalProcess::ClosedLoop => None,
            ArrivalProcess::Poisson { rate, .. } => Some(rate),
            ArrivalProcess::Bursty {
                rate,
                period,
                burst,
                ..
            } => Some(rate + burst as f64 / period as f64),
            ArrivalProcess::Diurnal { trough, peak, .. } => Some((trough + peak) / 2.0),
            ArrivalProcess::Explicit { ref steps } => {
                // Empirical rate of the trace itself: arrivals over the
                // steps they span (an all-at-zero trace is closed-loop
                // in spirit and reports no finite rate).
                let last = *steps.last()?;
                if last == 0 {
                    return None;
                }
                Some(steps.len() as f64 / (last + 1) as f64)
            }
        }
    }
}

/// The short form report rows use; each variant pins its
/// distinguishing parameters (seed included) so two different
/// processes never collide in a golden label.
impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalProcess::ClosedLoop => write!(f, "closed-loop"),
            ArrivalProcess::Poisson { rate, seed } => {
                write!(f, "poisson(r{rate},s{seed:x})")
            }
            ArrivalProcess::Bursty {
                rate,
                period,
                burst,
                seed,
            } => write!(f, "bursty(r{rate},{burst}per{period},s{seed:x})"),
            ArrivalProcess::Diurnal {
                trough,
                peak,
                period,
                seed,
            } => write!(f, "diurnal({trough}-{peak}per{period},s{seed:x})"),
            ArrivalProcess::Explicit { ref steps } => {
                // Pin the whole trace via a content hash so two
                // different explicit streams never share a golden label.
                let words: Vec<u64> = steps.iter().map(|&s| s as u64).collect();
                let digest = crate::fnv1a(b"arrival/explicit", &words);
                write!(
                    f,
                    "explicit({}req,h{:08x})",
                    steps.len(),
                    digest & 0xFFFF_FFFF
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_queues_everything_at_zero() {
        assert_eq!(ArrivalProcess::closed_loop().arrival_steps(4), vec![0; 4]);
        assert_eq!(ArrivalProcess::ClosedLoop.mean_rate(), None);
    }

    #[test]
    fn arrivals_are_deterministic_and_sorted() {
        for process in [
            ArrivalProcess::poisson(0.25, 7),
            ArrivalProcess::bursty(0.05, 32, 4, 7),
            ArrivalProcess::diurnal(0.05, 0.6, 48, 7),
        ] {
            let a = process.arrival_steps(64);
            let b = process.arrival_steps(64);
            assert_eq!(a, b, "{process}: same seed, same arrivals");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{process}: sorted");
            assert_eq!(a.len(), 64);
        }
        let a = ArrivalProcess::poisson(0.25, 7).arrival_steps(64);
        let c = ArrivalProcess::poisson(0.25, 8).arrival_steps(64);
        assert_ne!(a, c, "a different seed draws different arrivals");
    }

    #[test]
    fn poisson_inter_arrival_mean_is_near_the_rate_inverse() {
        let rate = 0.2;
        let arrivals = ArrivalProcess::poisson(rate, 0xA11C_E5ED).arrival_steps(2000);
        // Geometric gaps starting from step 0: the mean arrival index
        // over n arrivals approaches n/(2 rate).
        let last = *arrivals.last().unwrap() as f64;
        let mean_gap = last / (arrivals.len() - 1) as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean_gap - expect).abs() / expect < 0.1,
            "mean gap {mean_gap:.2} vs expected {expect:.2}"
        );
    }

    #[test]
    fn bursts_land_on_the_period() {
        let arrivals = ArrivalProcess::bursty(0.0, 16, 3, 1).arrival_steps(9);
        assert_eq!(arrivals, vec![0, 0, 0, 16, 16, 16, 32, 32, 32]);
        // A truncated final burst still terminates.
        let arrivals = ArrivalProcess::bursty(0.0, 16, 4, 1).arrival_steps(6);
        assert_eq!(arrivals, vec![0, 0, 0, 0, 16, 16]);
    }

    #[test]
    fn diurnal_rate_sweeps_the_triangle() {
        let p = ArrivalProcess::diurnal(0.1, 0.5, 48, 0);
        assert!((p.rate_at(0) - 0.1).abs() < 1e-12);
        assert!((p.rate_at(24) - 0.5).abs() < 1e-12);
        assert!((p.rate_at(12) - 0.3).abs() < 1e-12);
        assert!((p.rate_at(48) - 0.1).abs() < 1e-12, "periodic");
    }

    #[test]
    fn mean_rates_summarize_the_offered_load() {
        assert_eq!(ArrivalProcess::poisson(0.25, 0).mean_rate(), Some(0.25));
        let bursty = ArrivalProcess::bursty(0.1, 10, 2, 0).mean_rate().unwrap();
        assert!((bursty - 0.3).abs() < 1e-12);
        let diurnal = ArrivalProcess::diurnal(0.2, 0.4, 10, 0)
            .mean_rate()
            .unwrap();
        assert!((diurnal - 0.3).abs() < 1e-12);
    }

    #[test]
    fn invalid_rates_are_typed_errors() {
        assert_eq!(
            ArrivalProcess::try_poisson(0.0, 0),
            Err(ServingError::ArrivalRateOutOfRange(0.0))
        );
        assert_eq!(
            ArrivalProcess::try_poisson(1.5, 0),
            Err(ServingError::ArrivalRateOutOfRange(1.5))
        );
        assert!(ArrivalProcess::try_poisson(f64::NAN, 0).is_err());
        assert_eq!(
            ArrivalProcess::try_bursty(-0.1, 4, 1, 0),
            Err(ServingError::BackgroundRateOutOfRange(-0.1))
        );
        assert_eq!(
            ArrivalProcess::try_bursty(0.1, 0, 1, 0),
            Err(ServingError::ZeroArrivalPeriod)
        );
        assert_eq!(
            ArrivalProcess::try_bursty(0.1, 4, 0, 0),
            Err(ServingError::ZeroBurst)
        );
        assert_eq!(
            ArrivalProcess::try_diurnal(0.8, 0.2, 4, 0),
            Err(ServingError::DiurnalRangeInverted {
                trough: 0.8,
                peak: 0.2
            })
        );
        assert_eq!(
            ArrivalProcess::try_diurnal(0.0, 0.0, 4, 0),
            Err(ServingError::ArrivalRateOutOfRange(0.0))
        );
    }

    #[test]
    fn explicit_replays_the_given_trace() {
        let p = ArrivalProcess::explicit(vec![0, 2, 2, 7]);
        assert_eq!(p.arrival_steps(4), vec![0, 2, 2, 7]);
        // Truncates or pads (at the last step) when counts differ.
        assert_eq!(p.arrival_steps(2), vec![0, 2]);
        assert_eq!(p.arrival_steps(6), vec![0, 2, 2, 7, 7, 7]);
        let rate = p.mean_rate().unwrap();
        assert!((rate - 0.5).abs() < 1e-12, "4 arrivals over 8 steps");
        assert_eq!(
            ArrivalProcess::explicit(vec![0, 0]).mean_rate(),
            None,
            "an all-at-zero trace is closed-loop in spirit"
        );
        assert_eq!(
            ArrivalProcess::try_explicit(vec![3, 1]),
            Err(ServingError::UnsortedArrivals { index: 1 })
        );
    }

    #[test]
    fn explicit_display_hashes_the_trace() {
        let a = ArrivalProcess::explicit(vec![0, 2, 5]).to_string();
        let b = ArrivalProcess::explicit(vec![0, 2, 6]).to_string();
        assert!(a.starts_with("explicit(3req,h"), "{a}");
        assert_ne!(a, b, "different traces, different labels");
        assert_eq!(a, ArrivalProcess::explicit(vec![0, 2, 5]).to_string());
    }

    #[test]
    fn display_names_pin_every_parameter() {
        assert_eq!(ArrivalProcess::closed_loop().to_string(), "closed-loop");
        assert_eq!(
            ArrivalProcess::poisson(0.25, 0xBEEF).to_string(),
            "poisson(r0.25,sbeef)"
        );
        assert_eq!(
            ArrivalProcess::bursty(0.05, 32, 4, 1).to_string(),
            "bursty(r0.05,4per32,s1)"
        );
        assert_eq!(
            ArrivalProcess::diurnal(0.1, 0.5, 48, 2).to_string(),
            "diurnal(0.1-0.5per48,s2)"
        );
    }
}
