//! Fleet-scale serving: one arrival stream routed across N accelerator
//! instances.
//!
//! The paper models one accelerator; serving millions of users is a
//! fleet question — how many instances, at which scaling corner, meet a
//! latency SLO? [`Fleet`] answers the workload half: it takes a global
//! [`ServingScenario`] (the offered stream), a per-instance template for
//! each of N instances (possibly heterogeneous — a photonic corner next
//! to a digital baseline), and a [`FleetRouter`], and deterministically
//! splits the stream into per-instance sub-scenarios. Each sub-scenario
//! replays exactly the arrival steps the router assigned it (via
//! [`ArrivalProcess::Explicit`]), so the per-instance schedules compose
//! back into the global stream with nothing re-rolled: every request is
//! served by exactly one instance, at exactly the step the global draw
//! produced.
//!
//! Routing is a deterministic integer fluid model, like the admission
//! policies: no randomness beyond the stream's own seed, no floats in
//! any comparison, so fleet assignments are platform-exact. The
//! join-shortest-queue and least-loaded-KV routers track each
//! instance's outstanding work as an event count drained at `capacity`
//! events per scheduler step — the same slots-work-in-parallel cadence
//! the event core itself uses.

use super::error::ServingError;
use super::event::PrefillMode;
use super::paging::KvLayout;
use super::scenario::ServingScenario;
use super::ArrivalProcess;
use std::collections::VecDeque;
use std::fmt;

/// How the fleet assigns each arriving request to an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetRouter {
    /// Request `i` goes to instance `i mod N` — the stateless baseline.
    RoundRobin,
    /// Each request joins the instance with the fewest outstanding
    /// requests at its arrival step (ties to the lowest index).
    JoinShortestQueue,
    /// Each request joins the instance with the least outstanding KV
    /// footprint — quantum-rounded cache tokens of its queued requests —
    /// at its arrival step (ties to the lowest index). Favors instances
    /// whose queued work is short-context even when queue lengths match.
    LeastLoadedKv,
}

impl fmt::Display for FleetRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetRouter::RoundRobin => write!(f, "round-robin"),
            FleetRouter::JoinShortestQueue => write!(f, "join-shortest-queue"),
            FleetRouter::LeastLoadedKv => write!(f, "least-loaded-kv"),
        }
    }
}

/// One instance's slice of the fleet dispatch: which global requests it
/// serves and the sub-scenario that replays them.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceAssignment {
    /// The instance index, `0..N`.
    pub instance: usize,
    /// Global request indices routed here, in arrival order.
    pub requests: Vec<usize>,
    /// The instance's scenario over its sub-stream, or `None` when the
    /// router sent it nothing (an idle instance still counts toward
    /// fleet capacity and energy-at-idle questions, but has no schedule
    /// to run).
    pub scenario: Option<ServingScenario>,
}

/// A fleet of serving instances fed by one routed arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    stream: ServingScenario,
    templates: Vec<ServingScenario>,
    router: FleetRouter,
}

impl Fleet {
    /// A homogeneous fleet: `instances` copies of `scenario`, which
    /// doubles as the global stream description (its mix and arrival
    /// process are the offered load).
    ///
    /// # Errors
    ///
    /// [`ServingError::EmptyFleet`] if `instances` is zero.
    pub fn try_uniform(
        scenario: ServingScenario,
        router: FleetRouter,
        instances: usize,
    ) -> Result<Fleet, ServingError> {
        if instances == 0 {
            return Err(ServingError::EmptyFleet);
        }
        Ok(Fleet {
            templates: vec![scenario.clone(); instances],
            stream: scenario,
            router,
        })
    }

    /// Panicking wrapper over [`Fleet::try_uniform`].
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn uniform(scenario: ServingScenario, router: FleetRouter, instances: usize) -> Fleet {
        Fleet::try_uniform(scenario, router, instances)
            .expect("a fleet needs at least one instance")
    }

    /// A heterogeneous fleet: `stream` describes the offered load (mix +
    /// arrival process); each template contributes its own capacity, KV
    /// layout, policy, prefill and context window. A template's mix and
    /// arrival process are superseded by the routed sub-stream.
    ///
    /// # Errors
    ///
    /// [`ServingError::EmptyFleet`] if `templates` is empty.
    pub fn try_heterogeneous(
        stream: ServingScenario,
        templates: Vec<ServingScenario>,
        router: FleetRouter,
    ) -> Result<Fleet, ServingError> {
        if templates.is_empty() {
            return Err(ServingError::EmptyFleet);
        }
        Ok(Fleet {
            stream,
            templates,
            router,
        })
    }

    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.templates.len()
    }

    /// The routing discipline.
    pub fn router(&self) -> FleetRouter {
        self.router
    }

    /// The global stream: the offered mix and arrival process.
    pub fn stream(&self) -> &ServingScenario {
        &self.stream
    }

    /// The per-instance scenario templates.
    pub fn templates(&self) -> &[ServingScenario] {
        &self.templates
    }

    /// Total decode-slot capacity across the fleet.
    pub fn aggregate_capacity(&self) -> usize {
        self.templates.iter().map(ServingScenario::capacity).sum()
    }

    /// Routes the global stream and builds each instance's
    /// sub-scenario. Every request lands on exactly one instance, at
    /// the arrival step the global process drew for it.
    ///
    /// # Errors
    ///
    /// The [`ServingError`]s of scenario re-validation, if a template
    /// cannot serve its routed sub-stream (e.g. a heterogeneous
    /// template whose context window is smaller than a routed prompt).
    pub fn dispatch(&self) -> Result<Vec<InstanceAssignment>, ServingError> {
        let mix = self.stream.mix();
        let arrivals = self.stream.arrival().arrival_steps(mix.len());
        let n = self.templates.len();
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut queues: Vec<InstanceQueue> = self
            .templates
            .iter()
            .map(|t| InstanceQueue::new(t.capacity()))
            .collect();
        for (r, &step) in arrivals.iter().enumerate() {
            for queue in &mut queues {
                queue.drain_to(step);
            }
            let target = match self.router {
                FleetRouter::RoundRobin => r % n,
                FleetRouter::JoinShortestQueue => pick_min(&queues, InstanceQueue::len),
                FleetRouter::LeastLoadedKv => pick_min(&queues, InstanceQueue::kv_tokens),
            };
            routed[target].push(r);
            let request = mix.requests()[r];
            queues[target].push(PendingLoad {
                work: service_events(&self.templates[target], request.prompt, request.output),
                kv: kv_footprint(&self.templates[target], request.prompt + request.output),
            });
        }
        routed
            .into_iter()
            .enumerate()
            .map(|(instance, requests)| {
                let scenario = if requests.is_empty() {
                    None
                } else {
                    let sub_mix = mix.subset(format!("{}#i{instance}/{n}", mix.name()), &requests);
                    let steps = requests.iter().map(|&r| arrivals[r]).collect();
                    Some(
                        self.templates[instance]
                            .with_stream(sub_mix, ArrivalProcess::try_explicit(steps)?)?,
                    )
                };
                Ok(InstanceAssignment {
                    instance,
                    requests,
                    scenario,
                })
            })
            .collect()
    }
}

/// Index of the queue minimizing `key` (ties to the lowest index).
fn pick_min(queues: &[InstanceQueue], key: impl Fn(&InstanceQueue) -> u64) -> usize {
    queues
        .iter()
        .enumerate()
        .min_by_key(|&(i, q)| (key(q), i))
        .map_or(0, |(i, _)| i)
}

/// Scheduler events a request costs an instance: its prefill events
/// under the template's prefill mode plus one decode event per output
/// token.
fn service_events(template: &ServingScenario, prompt: usize, output: usize) -> u64 {
    let prefill = match template.prefill() {
        PrefillMode::Resident => 0,
        PrefillMode::OnAdmission { chunk: None } => 1,
        PrefillMode::OnAdmission { chunk: Some(c) } => prompt.div_ceil(c) as u64,
    };
    prefill + output as u64
}

/// Quantum-rounded KV tokens a fully-generated request occupies under
/// the template's layout — the footprint least-loaded-KV balances.
fn kv_footprint(template: &ServingScenario, tokens: usize) -> u64 {
    let rounded = match template.layout() {
        KvLayout::Bucketed { bucket } => tokens.div_ceil(*bucket) * bucket,
        KvLayout::Paged(table) => table.allocated_tokens(tokens),
    };
    rounded as u64
}

/// A routed request's remaining service demand on its instance.
#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    work: u64,
    kv: u64,
}

/// One instance's outstanding work between arrivals: a FIFO of pending
/// loads drained at `capacity` events per step.
#[derive(Debug)]
struct InstanceQueue {
    capacity: u64,
    wall: usize,
    pending: VecDeque<PendingLoad>,
}

impl InstanceQueue {
    fn new(capacity: usize) -> InstanceQueue {
        InstanceQueue {
            capacity: capacity as u64,
            wall: 0,
            pending: VecDeque::new(),
        }
    }

    /// Advances the fluid model to `step`, completing up to `capacity`
    /// events per elapsed step.
    fn drain_to(&mut self, step: usize) {
        let elapsed = (step - self.wall) as u64;
        self.wall = step;
        let mut budget = elapsed.saturating_mul(self.capacity);
        while budget > 0 {
            let Some(front) = self.pending.front_mut() else {
                break;
            };
            if front.work <= budget {
                budget -= front.work;
                self.pending.pop_front();
            } else {
                front.work -= budget;
                budget = 0;
            }
        }
    }

    fn push(&mut self, load: PendingLoad) {
        self.pending.push_back(load);
    }

    fn len(&self) -> u64 {
        self.pending.len() as u64
    }

    fn kv_tokens(&self) -> u64 {
        self.pending.iter().map(|p| p.kv).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{AdmissionPolicy, RequestMix};

    fn stream() -> ServingScenario {
        ServingScenario::builder(
            RequestMix::bimodal(0xF1EE_7CAF, 16, (64, 16), (512, 48), 25),
            4,
        )
        .arrival(ArrivalProcess::poisson(0.25, 0xFEED_F00D))
        .prefill_chunk(256)
        .build()
        .unwrap()
    }

    #[test]
    fn zero_instances_is_a_typed_error() {
        assert_eq!(
            Fleet::try_uniform(stream(), FleetRouter::RoundRobin, 0),
            Err(ServingError::EmptyFleet)
        );
        assert_eq!(
            Fleet::try_heterogeneous(stream(), vec![], FleetRouter::RoundRobin),
            Err(ServingError::EmptyFleet)
        );
    }

    #[test]
    fn every_request_is_routed_exactly_once() {
        for router in [
            FleetRouter::RoundRobin,
            FleetRouter::JoinShortestQueue,
            FleetRouter::LeastLoadedKv,
        ] {
            let fleet = Fleet::uniform(stream(), router, 3);
            let assignments = fleet.dispatch().unwrap();
            let mut seen: Vec<usize> = assignments
                .iter()
                .flat_map(|a| a.requests.iter().copied())
                .collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..stream().mix().len()).collect::<Vec<_>>(),
                "{router}: each request on exactly one instance"
            );
        }
    }

    #[test]
    fn sub_streams_replay_the_global_arrival_steps() {
        let fleet = Fleet::uniform(stream(), FleetRouter::JoinShortestQueue, 3);
        let global = stream().arrival().arrival_steps(stream().mix().len());
        for assignment in fleet.dispatch().unwrap() {
            let Some(scenario) = assignment.scenario else {
                continue;
            };
            let replay = scenario.arrival().arrival_steps(assignment.requests.len());
            let expect: Vec<usize> = assignment.requests.iter().map(|&r| global[r]).collect();
            assert_eq!(replay, expect);
            // The routed sub-mix holds the routed requests, in order.
            for (slot, &r) in assignment.requests.iter().enumerate() {
                assert_eq!(
                    scenario.mix().requests()[slot],
                    stream().mix().requests()[r]
                );
            }
        }
    }

    #[test]
    fn round_robin_deals_in_index_order() {
        let fleet = Fleet::uniform(stream(), FleetRouter::RoundRobin, 3);
        let assignments = fleet.dispatch().unwrap();
        assert_eq!(assignments[0].requests, vec![0, 3, 6, 9, 12, 15]);
        assert_eq!(assignments[1].requests, vec![1, 4, 7, 10, 13]);
        assert_eq!(assignments[2].requests, vec![2, 5, 8, 11, 14]);
    }

    #[test]
    fn shortest_queue_spreads_a_closed_loop_burst() {
        // Closed loop: everything arrives at step 0, so JSQ degenerates
        // to dealing one request per instance in rotation — queue
        // lengths stay balanced within one.
        let scenario = ServingScenario::builder(RequestMix::uniform(9, 64, 8), 2)
            .build()
            .unwrap();
        let fleet = Fleet::uniform(scenario, FleetRouter::JoinShortestQueue, 3);
        let assignments = fleet.dispatch().unwrap();
        for a in &assignments {
            assert_eq!(a.requests.len(), 3, "balanced across the burst");
        }
    }

    #[test]
    fn least_loaded_kv_balances_footprint_not_count() {
        // Two instances; requests alternate huge and tiny contexts so a
        // count-balancing router and a footprint-balancing router
        // disagree. All arrive at once (closed loop).
        let mut requests = Vec::new();
        for _ in 0..4 {
            requests.push(crate::serving::Request::new(512, 64)); // ~576 tokens
            requests.push(crate::serving::Request::new(16, 8)); // ~24 tokens
        }
        let mix = RequestMix::custom("skewed", requests);
        let scenario = ServingScenario::builder(mix, 2)
            .kv_bucket(16)
            .build()
            .unwrap();
        let fleet = Fleet::uniform(scenario.clone(), FleetRouter::LeastLoadedKv, 2);
        let assignments = fleet.dispatch().unwrap();
        let kv = |a: &InstanceAssignment| -> u64 {
            a.requests
                .iter()
                .map(|&r| {
                    kv_footprint(&scenario, {
                        let req = fleet.stream().mix().requests()[r];
                        req.prompt + req.output
                    })
                })
                .sum()
        };
        let (a, b) = (kv(&assignments[0]), kv(&assignments[1]));
        let skew = a.abs_diff(b);
        assert!(
            skew <= kv_footprint(&scenario, 512 + 64),
            "KV footprints within one large request: {a} vs {b}"
        );
        // Round-robin on the same stream piles all large requests onto
        // instance 0 (they alternate), so its skew is maximal.
        let rr = Fleet::uniform(scenario.clone(), FleetRouter::RoundRobin, 2);
        let rr_assignments = rr.dispatch().unwrap();
        let rr_skew = kv(&rr_assignments[0]).abs_diff(kv(&rr_assignments[1]));
        assert!(
            skew < rr_skew,
            "LLK skew {skew} < round-robin skew {rr_skew}"
        );
    }

    #[test]
    fn heterogeneous_templates_keep_their_own_knobs() {
        let big = ServingScenario::builder(RequestMix::uniform(1, 1, 1), 8)
            .policy(AdmissionPolicy::ShortestPrompt)
            .build()
            .unwrap();
        let small = ServingScenario::builder(RequestMix::uniform(1, 1, 1), 2)
            .kv_page(16)
            .build()
            .unwrap();
        let fleet =
            Fleet::try_heterogeneous(stream(), vec![big, small], FleetRouter::RoundRobin).unwrap();
        assert_eq!(fleet.aggregate_capacity(), 10);
        let assignments = fleet.dispatch().unwrap();
        let s0 = assignments[0].scenario.as_ref().unwrap();
        let s1 = assignments[1].scenario.as_ref().unwrap();
        assert_eq!(s0.capacity(), 8);
        assert_eq!(s0.policy(), AdmissionPolicy::ShortestPrompt);
        assert_eq!(s1.capacity(), 2);
        assert_eq!(s1.kv_page(), Some(16));
    }

    #[test]
    fn fleet_of_one_reproduces_the_single_instance_schedule() {
        let scenario = stream();
        let fleet = Fleet::uniform(scenario.clone(), FleetRouter::JoinShortestQueue, 1);
        let assignments = fleet.dispatch().unwrap();
        assert_eq!(assignments.len(), 1);
        let routed = assignments[0].scenario.as_ref().unwrap();
        assert_eq!(routed.schedule(), scenario.schedule(), "bit-identical");
    }

    #[test]
    fn router_names_are_stable() {
        assert_eq!(FleetRouter::RoundRobin.to_string(), "round-robin");
        assert_eq!(
            FleetRouter::JoinShortestQueue.to_string(),
            "join-shortest-queue"
        );
        assert_eq!(FleetRouter::LeastLoadedKv.to_string(), "least-loaded-kv");
    }
}
