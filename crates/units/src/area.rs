//! Silicon / photonic die area quantities.

use crate::quantity_impl;

/// A silicon or photonic die area, stored in square meters.
///
/// # Examples
///
/// ```
/// use lumen_units::Area;
/// let mrr = Area::from_square_micrometers(300.0);
/// let bank = mrr * 64.0;
/// assert!((bank.square_millimeters() - 0.0192).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Area(pub(crate) f64);

quantity_impl!(Area, crate::format::si_format_area);

impl Area {
    /// Builds an area from square meters.
    #[inline]
    pub const fn from_square_meters(m2: f64) -> Self {
        Area(m2)
    }

    /// Builds an area from square millimeters.
    #[inline]
    pub const fn from_square_millimeters(mm2: f64) -> Self {
        Area(mm2 * 1e-6)
    }

    /// Builds an area from square micrometers.
    #[inline]
    pub const fn from_square_micrometers(um2: f64) -> Self {
        Area(um2 * 1e-12)
    }

    /// Magnitude in square meters.
    #[inline]
    pub const fn square_meters(self) -> f64 {
        self.0
    }

    /// Magnitude in square millimeters.
    #[inline]
    pub fn square_millimeters(self) -> f64 {
        self.0 * 1e6
    }

    /// Magnitude in square micrometers.
    #[inline]
    pub fn square_micrometers(self) -> f64 {
        self.0 * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Area::from_square_millimeters(1.0).square_meters(), 1e-6);
        assert_eq!(Area::from_square_micrometers(1.0).square_meters(), 1e-12);
        assert!(
            (Area::from_square_millimeters(2.0).square_micrometers() - 2e6).abs() < 1e-3,
            "mm² to µm²"
        );
    }

    #[test]
    fn accumulation() {
        let total: Area = std::iter::repeat_n(Area::from_square_micrometers(10.0), 100).sum();
        assert!((total.square_micrometers() - 1000.0).abs() < 1e-9);
    }
}
