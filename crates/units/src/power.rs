//! Power quantities (watts).

use crate::quantity_impl;

/// A rate of energy use, stored in watts.
///
/// # Examples
///
/// ```
/// use lumen_units::{Power, Time};
/// let laser = Power::from_milliwatts(25.0);
/// let per_symbol = laser * Time::from_picoseconds(200.0);
/// assert!((per_symbol.picojoules() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(pub(crate) f64);

quantity_impl!(Power, |v: f64| crate::format::si_format(v, "W"));

impl Power {
    /// Builds a power from watts.
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Builds a power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Builds a power from microwatts.
    #[inline]
    pub const fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Builds a power from nanowatts.
    #[inline]
    pub const fn from_nanowatts(nw: f64) -> Self {
        Power(nw * 1e-9)
    }

    /// Magnitude in watts.
    #[inline]
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// Magnitude in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Magnitude in microwatts.
    #[inline]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Converts optical power from a dBm level.
    ///
    /// `0 dBm = 1 mW`; this is the conventional unit for laser output power
    /// and photodetector sensitivity in link-budget calculations.
    ///
    /// ```
    /// use lumen_units::Power;
    /// assert!((Power::from_dbm(0.0).milliwatts() - 1.0).abs() < 1e-12);
    /// assert!((Power::from_dbm(10.0).milliwatts() - 10.0).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn from_dbm(dbm: f64) -> Self {
        Power(1e-3 * 10f64.powf(dbm / 10.0))
    }

    /// Expresses this power as a dBm level.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the power is non-positive (a dBm level is
    /// undefined for zero or negative power).
    #[inline]
    pub fn dbm(self) -> f64 {
        debug_assert!(self.0 > 0.0, "dBm undefined for non-positive power");
        10.0 * (self.0 / 1e-3).log10()
    }
}

impl std::ops::Mul<crate::Time> for Power {
    type Output = crate::Energy;

    /// Energy spent running at `self` for a duration.
    #[inline]
    fn mul(self, rhs: crate::Time) -> crate::Energy {
        crate::Energy::from_raw(self.0 * rhs.raw())
    }
}

impl std::ops::Mul<Power> for crate::Time {
    type Output = crate::Energy;

    #[inline]
    fn mul(self, rhs: Power) -> crate::Energy {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Time;

    #[test]
    fn constructors() {
        assert_eq!(Power::from_milliwatts(1.0).watts(), 1e-3);
        assert_eq!(Power::from_microwatts(1.0).watts(), 1e-6);
        assert_eq!(Power::from_nanowatts(1.0).watts(), 1e-9);
    }

    #[test]
    fn dbm_round_trip() {
        for dbm in [-30.0, -3.0, 0.0, 3.0, 17.0] {
            let p = Power::from_dbm(dbm);
            assert!((p.dbm() - dbm).abs() < 1e-9, "round trip failed at {dbm}");
        }
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(2.0) * Time::from_raw(3.0);
        assert_eq!(e.joules(), 6.0);
        let e2 = Time::from_raw(3.0) * Power::from_watts(2.0);
        assert_eq!(e, e2);
    }
}
