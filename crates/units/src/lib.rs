//! # lumen-units
//!
//! Strongly-typed physical quantities for architecture-level modeling.
//!
//! Every quantity is a newtype over `f64` in SI base units (joules, watts,
//! seconds, hertz, square meters). Newtypes keep the rest of Lumen honest:
//! an [`Energy`] cannot be accidentally added to an [`Area`], and dimensional
//! products are expressed through explicit `Mul`/`Div` impls
//! (`Power * Time = Energy`, `Energy / Time = Power`, ...).
//!
//! # Examples
//!
//! ```
//! use lumen_units::{Energy, Power, Time, Frequency};
//!
//! let adc = Energy::from_picojoules(1.2);
//! let laser = Power::from_milliwatts(10.0) * Time::from_nanoseconds(0.2);
//! let total = adc + laser;
//! assert!(total.picojoules() > 3.0);
//!
//! let clock = Frequency::from_gigahertz(5.0);
//! assert_eq!(clock.period(), Time::from_picoseconds(200.0));
//! ```

mod area;
mod decibel;
mod energy;
mod format;
mod power;
mod time;

pub use area::Area;
pub use decibel::Decibel;
pub use energy::Energy;
pub use format::{si_format, si_format_area};
pub use power::Power;
pub use time::{Frequency, Time};

/// Convenient glob import for downstream crates.
///
/// ```
/// use lumen_units::prelude::*;
/// let e = Energy::from_picojoules(1.0) * 3.0;
/// assert_eq!(e, Energy::from_picojoules(3.0));
/// ```
pub mod prelude {
    pub use crate::{Area, Decibel, Energy, Frequency, Power, Time};
}

/// Implements the shared numeric surface of a scalar quantity newtype:
/// accessors, arithmetic with `Self` and `f64`, ordering helpers, `Sum`.
macro_rules! quantity_impl {
    ($ty:ident, $format:expr) => {
        impl $ty {
            /// The zero quantity.
            pub const ZERO: $ty = $ty(0.0);

            /// Raw magnitude in SI base units.
            #[inline]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// Builds the quantity from a magnitude in SI base units.
            #[inline]
            pub const fn from_raw(value: f64) -> Self {
                $ty(value)
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $ty(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $ty(self.0.min(other.0))
            }

            /// `true` if the magnitude is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two like quantities.
            ///
            /// Useful for normalized plots (e.g. "energy relative to
            /// baseline").
            #[inline]
            pub fn ratio(self, denom: Self) -> f64 {
                self.0 / denom.0
            }
        }

        impl std::ops::Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl std::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl std::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        impl std::ops::Div<$ty> for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> std::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a $ty>>(iter: I) -> $ty {
                iter.fold($ty::ZERO, |acc, x| acc + *x)
            }
        }

        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", ($format)(self.0))
            }
        }
    };
}
pub(crate) use quantity_impl;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = (
            Energy::ZERO,
            Power::ZERO,
            Time::ZERO,
            Area::ZERO,
            Frequency::from_gigahertz(1.0),
            Decibel::new(3.0),
        );
    }

    #[test]
    fn cross_unit_products() {
        let e = Power::from_milliwatts(2.0) * Time::from_nanoseconds(3.0);
        assert!((e.picojoules() - 6.0).abs() < 1e-12);
        let p = Energy::from_picojoules(6.0) / Time::from_nanoseconds(3.0);
        assert!((p.milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Energy = (0..4).map(|i| Energy::from_picojoules(i as f64)).sum();
        assert_eq!(total, Energy::from_picojoules(6.0));
    }
}
