//! Engineering-notation formatting shared by all quantities.

/// Formats `value` (in SI base units) with an engineering prefix, e.g.
/// `3.25e-12` with unit `"J"` becomes `"3.250 pJ"`.
///
/// Values of exactly zero print as `"0 <unit>"`. Values outside the
/// yocto..yotta range fall back to scientific notation.
///
/// # Examples
///
/// ```
/// use lumen_units::si_format;
/// assert_eq!(si_format(3.25e-12, "J"), "3.250 pJ");
/// assert_eq!(si_format(0.0, "W"), "0 W");
/// assert_eq!(si_format(2.0e9, "Hz"), "2.000 GHz");
/// ```
pub fn si_format(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(&str, i32); 17] = [
        ("y", -24),
        ("z", -21),
        ("a", -18),
        ("f", -15),
        ("p", -12),
        ("n", -9),
        ("µ", -6),
        ("m", -3),
        ("", 0),
        ("k", 3),
        ("M", 6),
        ("G", 9),
        ("T", 12),
        ("P", 15),
        ("E", 18),
        ("Z", 21),
        ("Y", 24),
    ];
    let magnitude = value.abs();
    let exp3 = (magnitude.log10() / 3.0).floor() as i32 * 3;
    let exp3 = exp3.clamp(-24, 24);
    match PREFIXES.iter().find(|(_, e)| *e == exp3) {
        Some((prefix, e)) => {
            let scaled = value / 10f64.powi(*e);
            format!("{scaled:.3} {prefix}{unit}")
        }
        None => format!("{value:e} {unit}"),
    }
}

/// Formats an area (in m²) with *squared* SI prefixes: the prefix applies
/// to the meter before squaring, so `1e-6 m² = 1 mm²`, not "1 µm²".
///
/// # Examples
///
/// ```
/// use lumen_units::si_format_area;
/// assert_eq!(si_format_area(1e-6), "1.000 mm²");
/// assert_eq!(si_format_area(2.5e-11), "25.000 µm²");
/// assert_eq!(si_format_area(0.0), "0 m²");
/// ```
pub fn si_format_area(value: f64) -> String {
    if value == 0.0 {
        return "0 m²".to_string();
    }
    if !value.is_finite() {
        return format!("{value} m²");
    }
    const SCALES: [(&str, f64); 4] = [("m²", 1.0), ("mm²", 1e-6), ("µm²", 1e-12), ("nm²", 1e-18)];
    let magnitude = value.abs();
    for (unit, scale) in SCALES {
        if magnitude >= scale {
            return format!("{:.3} {unit}", value / scale);
        }
    }
    format!("{value:e} m²")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_scales() {
        assert_eq!(si_format(1.0, "J"), "1.000 J");
        assert_eq!(si_format(1.5e-3, "J"), "1.500 mJ");
        assert_eq!(si_format(2.5e-15, "J"), "2.500 fJ");
        assert_eq!(si_format(5.0e9, "Hz"), "5.000 GHz");
    }

    #[test]
    fn negative_values() {
        assert_eq!(si_format(-1.5e-12, "J"), "-1.500 pJ");
    }

    #[test]
    fn boundary_just_below_prefix() {
        // 999.9e-15 is still femto range.
        let s = si_format(999.9e-15, "J");
        assert!(s.ends_with("fJ"), "got {s}");
    }

    #[test]
    fn zero_and_nonfinite() {
        assert_eq!(si_format(0.0, "s"), "0 s");
        assert!(si_format(f64::INFINITY, "s").contains("inf"));
    }
}
