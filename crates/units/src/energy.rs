//! Energy quantities (joules).

use crate::quantity_impl;

/// An amount of energy, stored in joules.
///
/// # Examples
///
/// ```
/// use lumen_units::Energy;
/// let mac = Energy::from_femtojoules(50.0);
/// let per_tile = mac * 1024.0;
/// assert!((per_tile.picojoules() - 51.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(pub(crate) f64);

quantity_impl!(Energy, |v: f64| crate::format::si_format(v, "J"));

impl Energy {
    /// Builds an energy from joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Builds an energy from millijoules.
    #[inline]
    pub const fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Builds an energy from microjoules.
    #[inline]
    pub const fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Builds an energy from nanojoules.
    #[inline]
    pub const fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Builds an energy from picojoules.
    #[inline]
    pub const fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Builds an energy from femtojoules.
    #[inline]
    pub const fn from_femtojoules(fj: f64) -> Self {
        Energy(fj * 1e-15)
    }

    /// Builds an energy from attojoules.
    #[inline]
    pub const fn from_attojoules(aj: f64) -> Self {
        Energy(aj * 1e-18)
    }

    /// Magnitude in joules.
    #[inline]
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// Magnitude in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Magnitude in microjoules.
    #[inline]
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Magnitude in nanojoules.
    #[inline]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Magnitude in picojoules.
    #[inline]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Magnitude in femtojoules.
    #[inline]
    pub fn femtojoules(self) -> f64 {
        self.0 * 1e15
    }
}

impl std::ops::Div<crate::Time> for Energy {
    type Output = crate::Power;

    /// Average power dissipated when `self` is spent over a duration.
    #[inline]
    fn div(self, rhs: crate::Time) -> crate::Power {
        crate::Power::from_raw(self.0 / rhs.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Energy::from_millijoules(1.0).joules(), 1e-3);
        assert_eq!(Energy::from_microjoules(1.0).joules(), 1e-6);
        assert!((Energy::from_nanojoules(2.0).picojoules() - 2000.0).abs() < 1e-9);
        assert!((Energy::from_picojoules(1.0).femtojoules() - 1000.0).abs() < 1e-9);
        assert!((Energy::from_attojoules(1000.0).femtojoules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_picojoules(1.5);
        let b = Energy::from_picojoules(0.5);
        assert_eq!(a + b, Energy::from_picojoules(2.0));
        assert!(((a - b).picojoules() - 1.0).abs() < 1e-12);
        assert_eq!(a * 2.0, Energy::from_picojoules(3.0));
        assert_eq!(2.0 * b, Energy::from_picojoules(1.0));
        assert!((a / b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_max() {
        let a = Energy::from_picojoules(1.0);
        let b = Energy::from_picojoules(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_uses_si_prefix() {
        let shown = format!("{}", Energy::from_picojoules(3.25));
        assert!(shown.contains("pJ"), "got {shown}");
    }
}
