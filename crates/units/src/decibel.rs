//! Decibel ratios for optical link budgets.

/// A power ratio expressed in decibels.
///
/// Optical losses (insertion, splitting, propagation, coupling) compose by
/// *adding* their dB values; the corresponding linear attenuation multiplies.
/// [`Decibel`] keeps the two views explicit and avoids the classic
/// "multiplied dBs" bug.
///
/// # Examples
///
/// ```
/// use lumen_units::Decibel;
/// let insertion = Decibel::new(1.5);
/// let splits = Decibel::per_split(0.2, 8); // three 1:2 stages
/// let total = insertion + splits;
/// assert!((total.db() - 2.1).abs() < 1e-12);
/// assert!(total.linear() > 1.6 && total.linear() < 1.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Decibel(f64);

impl Decibel {
    /// No attenuation (0 dB, linear ratio 1).
    pub const ZERO: Decibel = Decibel(0.0);

    /// Builds a ratio from a dB value.
    #[inline]
    pub const fn new(db: f64) -> Self {
        Decibel(db)
    }

    /// Builds a ratio from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ratio` is not positive.
    #[inline]
    pub fn from_linear(ratio: f64) -> Self {
        debug_assert!(ratio > 0.0, "dB undefined for non-positive ratio");
        Decibel(10.0 * ratio.log10())
    }

    /// Total loss for a binary splitting tree with `fanout` leaves, charging
    /// `db_per_stage` of *excess* loss per 1:2 stage plus the fundamental
    /// 3 dB per split of optical power division.
    ///
    /// A `fanout` of 1 is lossless. Non-power-of-two fanouts are charged for
    /// `ceil(log2(fanout))` stages.
    pub fn per_split(db_per_stage: f64, fanout: usize) -> Self {
        if fanout <= 1 {
            return Decibel::ZERO;
        }
        let stages = (fanout as f64).log2().ceil();
        Decibel(stages * db_per_stage)
    }

    /// The dB value.
    #[inline]
    pub const fn db(self) -> f64 {
        self.0
    }

    /// The linear power ratio corresponding to this dB value.
    #[inline]
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl std::ops::Add for Decibel {
    type Output = Decibel;

    /// Composes two losses (linear ratios multiply).
    #[inline]
    fn add(self, rhs: Decibel) -> Decibel {
        Decibel(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Decibel {
    #[inline]
    fn add_assign(&mut self, rhs: Decibel) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Decibel {
    type Output = Decibel;

    #[inline]
    fn sub(self, rhs: Decibel) -> Decibel {
        Decibel(self.0 - rhs.0)
    }
}

impl std::ops::Mul<f64> for Decibel {
    type Output = Decibel;

    /// Scales the dB value (e.g. `per_unit_length * length`).
    #[inline]
    fn mul(self, rhs: f64) -> Decibel {
        Decibel(self.0 * rhs)
    }
}

impl std::iter::Sum for Decibel {
    fn sum<I: Iterator<Item = Decibel>>(iter: I) -> Decibel {
        iter.fold(Decibel::ZERO, |acc, x| acc + x)
    }
}

impl std::fmt::Display for Decibel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_round_trip() {
        for db in [-10.0, -3.0, 0.0, 0.2, 3.0, 20.0] {
            let d = Decibel::new(db);
            let back = Decibel::from_linear(d.linear());
            assert!((back.db() - db).abs() < 1e-9, "round trip at {db}");
        }
    }

    #[test]
    fn three_db_doubles() {
        assert!((Decibel::new(3.0103).linear() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn losses_compose_additively() {
        let total = Decibel::new(1.0) + Decibel::new(2.0);
        assert!((total.linear() - Decibel::new(3.0).linear()).abs() < 1e-12);
    }

    #[test]
    fn split_stages() {
        assert_eq!(Decibel::per_split(0.2, 1), Decibel::ZERO);
        assert!((Decibel::per_split(0.2, 2).db() - 0.2).abs() < 1e-12);
        assert!((Decibel::per_split(0.2, 8).db() - 0.6).abs() < 1e-12);
        // Non-power-of-two rounds the stage count up.
        assert!((Decibel::per_split(0.2, 9).db() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Decibel::new(1.5)), "1.500 dB");
    }
}
