//! Time and frequency quantities.

use crate::quantity_impl;

/// A duration, stored in seconds.
///
/// # Examples
///
/// ```
/// use lumen_units::Time;
/// let cycle = Time::from_picoseconds(200.0);
/// assert_eq!(cycle * 5.0, Time::from_nanoseconds(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(pub(crate) f64);

quantity_impl!(Time, |v: f64| crate::format::si_format(v, "s"));

impl Time {
    /// Builds a duration from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Time(s)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_milliseconds(ms: f64) -> Self {
        Time(ms * 1e-3)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_microseconds(us: f64) -> Self {
        Time(us * 1e-6)
    }

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Time(ns * 1e-9)
    }

    /// Builds a duration from picoseconds.
    #[inline]
    pub const fn from_picoseconds(ps: f64) -> Self {
        Time(ps * 1e-12)
    }

    /// Magnitude in seconds.
    #[inline]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// Magnitude in milliseconds.
    #[inline]
    pub fn milliseconds(self) -> f64 {
        self.0 * 1e3
    }

    /// Magnitude in microseconds.
    #[inline]
    pub fn microseconds(self) -> f64 {
        self.0 * 1e6
    }

    /// Magnitude in nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1e9
    }

    /// Magnitude in picoseconds.
    #[inline]
    pub fn picoseconds(self) -> f64 {
        self.0 * 1e12
    }

    /// The frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the duration is not positive.
    #[inline]
    pub fn frequency(self) -> Frequency {
        debug_assert!(self.0 > 0.0, "frequency undefined for non-positive time");
        Frequency(1.0 / self.0)
    }
}

/// A rate of events, stored in hertz.
///
/// # Examples
///
/// ```
/// use lumen_units::Frequency;
/// let clock = Frequency::from_gigahertz(2.5);
/// assert!((clock.period().picoseconds() - 400.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(pub(crate) f64);

quantity_impl!(Frequency, |v: f64| crate::format::si_format(v, "Hz"));

impl Frequency {
    /// Builds a frequency from hertz.
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Builds a frequency from megahertz.
    #[inline]
    pub const fn from_megahertz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Builds a frequency from gigahertz.
    #[inline]
    pub const fn from_gigahertz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// Magnitude in hertz.
    #[inline]
    pub const fn hertz(self) -> f64 {
        self.0
    }

    /// Magnitude in megahertz.
    #[inline]
    pub fn megahertz(self) -> f64 {
        self.0 / 1e6
    }

    /// Magnitude in gigahertz.
    #[inline]
    pub fn gigahertz(self) -> f64 {
        self.0 / 1e9
    }

    /// The period of one event at this rate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is not positive.
    #[inline]
    pub fn period(self) -> Time {
        debug_assert!(self.0 > 0.0, "period undefined for non-positive frequency");
        Time(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors() {
        assert_eq!(Time::from_milliseconds(1.0).seconds(), 1e-3);
        assert_eq!(Time::from_microseconds(1.0).seconds(), 1e-6);
        assert!((Time::from_nanoseconds(1.0).picoseconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Frequency::from_gigahertz(5.0);
        let t = f.period();
        assert!((t.frequency().gigahertz() - 5.0).abs() < 1e-9);
        assert!((t.picoseconds() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mhz_accessors() {
        assert_eq!(Frequency::from_megahertz(250.0).hertz(), 2.5e8);
        assert!((Frequency::from_hertz(1e9).megahertz() - 1000.0).abs() < 1e-9);
    }
}
