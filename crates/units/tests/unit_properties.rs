//! Property-based tests on unit arithmetic: round-trips, algebraic laws
//! and dimensional consistency hold for arbitrary magnitudes.

use lumen_units::{Decibel, Energy, Frequency, Power, Time};
use proptest::prelude::*;

/// Positive magnitudes spanning the physically-relevant decades
/// (attojoules to kilojoules, picoseconds to hours, ...).
fn magnitude() -> impl Strategy<Value = f64> {
    (-18.0f64..6.0).prop_map(|exp| 10f64.powf(exp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn energy_unit_round_trips(v in magnitude()) {
        let e = Energy::from_picojoules(v);
        prop_assert!((e.femtojoules() / 1000.0 - v).abs() / v < 1e-12);
        prop_assert!((e.nanojoules() * 1000.0 - v).abs() / v < 1e-12);
        prop_assert!((Energy::from_joules(e.joules()).picojoules() - v).abs() / v < 1e-12);
    }

    #[test]
    fn power_times_time_matches_energy_division(p in magnitude(), t in magnitude()) {
        let power = Power::from_watts(p);
        let time = Time::from_seconds(t);
        let energy = power * time;
        let back = energy / time;
        prop_assert!((back.watts() - p).abs() / p < 1e-9);
    }

    #[test]
    fn addition_is_commutative_and_sub_inverts(a in magnitude(), b in magnitude()) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(x + y, y + x);
        // Subtraction inverts addition up to float cancellation, which is
        // bounded by the *larger* magnitude's epsilon.
        let diff = (x + y) - y;
        prop_assert!((diff.joules() - a).abs() <= (a + b) * 1e-12);
    }

    #[test]
    fn scaling_distributes_over_sum(a in magnitude(), b in magnitude(), k in 0.1f64..100.0) {
        let (x, y) = (Energy::from_joules(a), Energy::from_joules(b));
        let lhs = (x + y) * k;
        let rhs = x * k + y * k;
        prop_assert!((lhs.joules() - rhs.joules()).abs() / lhs.joules() < 1e-12);
    }

    #[test]
    fn frequency_period_round_trip(ghz in 0.001f64..1000.0) {
        let f = Frequency::from_gigahertz(ghz);
        let back = f.period().frequency();
        prop_assert!((back.gigahertz() - ghz).abs() / ghz < 1e-9);
    }

    #[test]
    fn decibel_composition_matches_linear_product(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let composed = (Decibel::new(a) + Decibel::new(b)).linear();
        let product = Decibel::new(a).linear() * Decibel::new(b).linear();
        prop_assert!((composed - product).abs() / product < 1e-9);
    }

    #[test]
    fn dbm_round_trip(dbm in -60.0f64..30.0) {
        let p = Power::from_dbm(dbm);
        prop_assert!((p.dbm() - dbm).abs() < 1e-9);
    }

    #[test]
    fn decibel_linear_round_trip(db in -60.0f64..60.0) {
        let back = Decibel::from_linear(Decibel::new(db).linear());
        prop_assert!((back.db() - db).abs() < 1e-9);
    }

    #[test]
    fn dbm_shift_matches_decibel_gain(dbm in -40.0f64..20.0, gain in -20.0f64..20.0) {
        // Adding `gain` dB to a dBm level multiplies the power by the
        // gain's linear ratio — the identity link budgets rely on.
        let shifted = Power::from_dbm(dbm + gain);
        let scaled = Power::from_dbm(dbm).watts() * Decibel::new(gain).linear();
        prop_assert!((shifted.watts() - scaled).abs() / scaled < 1e-9);
    }

    #[test]
    fn power_prefix_accessors_agree(v in magnitude()) {
        let p = Power::from_milliwatts(v);
        prop_assert!((p.microwatts() / 1000.0 - v).abs() / v < 1e-12);
        prop_assert!((Power::from_microwatts(p.microwatts()).watts() - p.watts()).abs()
            <= p.watts() * 1e-12);
    }

    #[test]
    fn energy_prefix_accessors_agree(v in magnitude()) {
        let e = Energy::from_millijoules(v);
        prop_assert!((e.microjoules() / 1000.0 - v).abs() / v < 1e-12);
        prop_assert!((e.nanojoules() / 1e6 - v).abs() / v < 1e-12);
    }

    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(magnitude(), 0..20)) {
        let energies: Vec<Energy> = values.iter().map(|&v| Energy::from_joules(v)).collect();
        let summed: Energy = energies.iter().sum();
        let folded: f64 = values.iter().sum();
        let tolerance = folded.max(1e-30) * 1e-9;
        prop_assert!((summed.joules() - folded).abs() <= tolerance);
    }

    #[test]
    fn ordering_consistent_with_magnitude(a in magnitude(), b in magnitude()) {
        let (x, y) = (Time::from_seconds(a), Time::from_seconds(b));
        prop_assert_eq!(x < y, a < b);
        prop_assert_eq!(x.max(y).seconds(), a.max(b));
    }

    #[test]
    fn display_never_panics_and_is_nonempty(v in -1e20f64..1e20) {
        for rendered in [
            format!("{}", Energy::from_joules(v)),
            format!("{}", Power::from_watts(v)),
            format!("{}", Time::from_seconds(v)),
            format!("{}", lumen_units::Area::from_square_meters(v)),
        ] {
            prop_assert!(!rendered.is_empty());
        }
    }
}
