//! The ordered result of a lint run, with text and JSON renderers.

use crate::{Diagnostic, Severity};
use std::fmt;

/// Diagnostics from one lint run, sorted into a stable order:
/// `(code, path, message)`. The ordering makes reports diffable and the
/// JSON rendering golden-pinnable regardless of rule registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report, sorting the diagnostics into stable order.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics
            .sort_by(|a, b| (a.code, &a.path, &a.message).cmp(&(b.code, &b.path, &b.message)));
        Report { diagnostics }
    }

    /// All findings, in stable order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the run produced no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the model passed: no error-severity findings (warnings
    /// and infos may remain).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Folds another report into this one, restoring stable order.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        let taken = std::mem::take(&mut self.diagnostics);
        *self = Report::from_diagnostics(taken);
    }

    /// Renders the compiler-style text form: one line per finding, its
    /// help indented below, and a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
            if !d.help.is_empty() {
                out.push_str(&format!("  help: {}\n", d.help));
            }
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s), {} finding(s)\n",
            self.errors(),
            self.warnings(),
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the machine-readable JSON form (stable key and array
    /// order; hand-rolled so the workspace stays dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"code\": {}, \"severity\": {}, \"path\": {}, \"message\": {}, \"help\": {}}}",
                json_string(d.code),
                json_string(d.severity.label()),
                json_string(&d.path),
                json_string(&d.message),
                json_string(&d.help)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, severity: Severity, path: &str) -> Diagnostic {
        Diagnostic::new(code, severity, path, "msg", "fix it")
    }

    #[test]
    fn sorted_and_counted() {
        let report = Report::from_diagnostics(vec![
            d("L0202", Severity::Warn, "b"),
            d("L0101", Severity::Error, "a"),
            d("L0202", Severity::Warn, "a"),
        ]);
        let codes: Vec<&str> = report.diagnostics().iter().map(|x| x.code).collect();
        assert_eq!(codes, ["L0101", "L0202", "L0202"]);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 2);
        assert!(!report.is_clean());
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report::default();
        assert!(report.is_clean() && report.is_empty());
        assert!(report.render_text().contains("0 error(s), 0 warning(s)"));
        assert!(report.render_json().contains("\"diagnostics\": []"));
    }

    #[test]
    fn merge_restores_order() {
        let mut a = Report::from_diagnostics(vec![d("L0202", Severity::Warn, "x")]);
        a.merge(Report::from_diagnostics(vec![d(
            "L0101",
            Severity::Error,
            "y",
        )]));
        assert_eq!(a.diagnostics()[0].code, "L0101");
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_shape_is_wellformed() {
        let report = Report::from_diagnostics(vec![d("L0101", Severity::Error, "p")]);
        let json = report.render_json();
        assert!(json.contains("\"code\": \"L0101\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.ends_with("\"errors\": 1,\n  \"warnings\": 0\n}\n"));
    }
}
