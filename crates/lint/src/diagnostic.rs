//! Structured diagnostics: what a lint found, where, and how to fix it.

use std::fmt;

/// How serious a [`Diagnostic`] is.
///
/// Ordered `Info < Warn < Error` so configuration can *escalate* but a
/// comparison like `severity >= Severity::Warn` reads naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never fails a check.
    Info,
    /// Suspicious but evaluable; fails under `--deny warnings`.
    Warn,
    /// The model is wrong or un-evaluable; always fails a check.
    Error,
}

impl Severity {
    /// The lowercase label used in both renderers (`"error"`,
    /// `"warning"`, `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from a lint rule.
///
/// The `path` names the model location using `/`-separated segments
/// (`"albireo-conservative/glb"`, `"gpt2-small/blk0.attn.logits"`), the
/// `message` states the violated invariant, and `help` suggests a fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`"L0104"`); the unit of allow/deny config.
    pub code: &'static str,
    /// Effective severity (after any configuration escalation).
    pub severity: Severity,
    /// Model location the finding anchors to.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        code: &'static str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            path: path.into(),
            message: message.into(),
            help: help.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_escalation() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn display_is_compiler_style() {
        let d = Diagnostic::new(
            "L0101",
            Severity::Error,
            "toy/dram",
            "read energy is negative",
            "use a non-negative energy",
        );
        assert_eq!(
            d.to_string(),
            "error[L0101] toy/dram: read energy is negative"
        );
    }
}
