//! The built-in rule set, grouped by the model facet each rule inspects.
//!
//! Code blocks: `L01xx` architecture, `L02xx` workload, `L03xx` mapping
//! strategy, `L04xx` serving schedule. `L0100` is reserved for
//! architecture construction failures surfaced as diagnostics (see
//! [`arch_error_diagnostic`]). `L0405` is grandfathered into the
//! `L04xx` range despite inspecting the mapping strategy — codes are
//! append-only once published, so it keeps the number it shipped with.

pub mod arch;
pub mod mapper;
pub mod serving;
pub mod workload;

use crate::registry::Lint;
use crate::{Diagnostic, Severity};
use lumen_arch::ArchError;

pub use workload::digest_collisions;

/// Every built-in rule, in code order.
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(arch::NonFiniteEnergy),
        Box::new(arch::BadClock),
        Box::new(arch::UnpricedBoundary),
        Box::new(arch::TinyCapacity),
        Box::new(arch::DeadFanout),
        Box::new(arch::InertConverter),
        Box::new(arch::FreeStorage),
        Box::new(workload::MalformedGemm),
        Box::new(workload::KvAppendAnomaly),
        Box::new(workload::KvOnNonGemm),
        Box::new(workload::OversizedTensor),
        Box::new(workload::EmptyNetwork),
        Box::new(workload::DigestCollision),
        Box::new(mapper::AddressFingerprint),
        Box::new(mapper::DegenerateSearch),
        Box::new(mapper::ExcessiveSearch),
        Box::new(serving::ZeroCapacity),
        Box::new(serving::KvBucketMismatch),
        Box::new(serving::OfferedLoadExceedsCapacity),
        Box::new(serving::PromptExceedsContext),
        Box::new(mapper::SilentSearchFailure),
        Box::new(serving::PageTileMismatch),
        Box::new(serving::FragmentationHeavyPage),
        Box::new(serving::RouterTargetsNoInstances),
        Box::new(serving::FleetOverload),
    ]
}

/// Converts an architecture construction failure into the `L0100`
/// diagnostic, so `lumen check` can report a spec that does not even
/// build instead of aborting.
pub fn arch_error_diagnostic(arch_name: &str, error: &ArchError) -> Diagnostic {
    Diagnostic::new(
        "L0100",
        Severity::Error,
        arch_name,
        format!("architecture failed validation: {error}"),
        "fix the structural problem; see the ArchBuilder docs for the hierarchy rules",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_error_becomes_l0100() {
        let d = arch_error_diagnostic("broken", &ArchError::TooFewLevels);
        assert_eq!(d.code, "L0100");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.path, "broken");
        assert!(d.message.contains("backing store"));
    }
}
