//! Workload rules (`L02xx`): layer and network invariants the
//! constructors do not (or cannot) enforce.

use crate::registry::Lint;
use crate::{Diagnostic, LintTarget, Severity};
use lumen_workload::{Dim, Layer, LayerKind, LayerSignature, Network, TensorKind};

fn layer_path(network: &Network, layer: &Layer) -> String {
    format!("{}/{}", network.name(), layer.name())
}

fn is_gemm(kind: LayerKind) -> bool {
    matches!(kind, LayerKind::Matmul | LayerKind::FullyConnected)
}

/// `L0201`: a GEMM-class layer carries convolution-only structure.
///
/// Matmul/fully-connected layers must have unit filter windows
/// (`Q = R = S = 1`) and unit stride/dilation; anything else means the
/// shape was transplanted from a convolution and the MAC count is not
/// what the author thinks it is.
pub struct MalformedGemm;

impl Lint for MalformedGemm {
    fn code(&self) -> &'static str {
        "L0201"
    }

    fn summary(&self) -> &'static str {
        "GEMM layers must have unit windows, stride and dilation"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        for layer in network.layers() {
            if !is_gemm(layer.kind()) {
                continue;
            }
            let shape = layer.shape();
            let windowed = shape[Dim::Q] != 1 || shape[Dim::R] != 1 || shape[Dim::S] != 1;
            let strided = layer.stride() != (1, 1) || layer.dilation() != (1, 1);
            if windowed || strided {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    layer_path(network, layer),
                    format!(
                        "{:?} layer has convolutional structure \
                         (Q={}, R={}, S={}, stride={:?}, dilation={:?})",
                        layer.kind(),
                        shape[Dim::Q],
                        shape[Dim::R],
                        shape[Dim::S],
                        layer.stride(),
                        layer.dilation()
                    ),
                    "use Conv2d for windowed operators, or fold the window into M/C/P",
                ));
            }
        }
    }
}

/// `L0202`: a KV-cache layer appends more elements per step than its
/// whole stationary tensor holds.
///
/// The append count models one token's K/V slice; a slice larger than
/// the resident cache means the residency annotation and the layer
/// bounds disagree, and append energy will dominate for no physical
/// reason.
pub struct KvAppendAnomaly;

impl Lint for KvAppendAnomaly {
    fn code(&self) -> &'static str {
        "L0202"
    }

    fn summary(&self) -> &'static str {
        "KV appends must not exceed the resident cache size"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        for layer in network.layers() {
            let append = layer.kv_append_per_sample() as u64;
            let resident = layer.tensor_elements(TensorKind::Weight);
            if append > 0 && append > resident {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    layer_path(network, layer),
                    format!(
                        "appends {append} KV elements per step but the stationary tensor \
                         holds only {resident}"
                    ),
                    "the append count should be one token's slice of the cached tensor",
                ));
            }
        }
    }
}

/// `L0203`: KV-cache residency on a non-GEMM layer.
///
/// The KV cache models attention's K/V operands; convolutions have no
/// growing per-sample stationary tensor, so residency there charges
/// append energy that corresponds to nothing.
pub struct KvOnNonGemm;

impl Lint for KvOnNonGemm {
    fn code(&self) -> &'static str {
        "L0203"
    }

    fn summary(&self) -> &'static str {
        "KV-cache residency belongs on GEMM layers only"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        for layer in network.layers() {
            if layer.kv_append_per_sample() > 0 && !is_gemm(layer.kind()) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    layer_path(network, layer),
                    format!(
                        "{:?} layer carries KV-cache residency ({} elements/step)",
                        layer.kind(),
                        layer.kv_append_per_sample()
                    ),
                    "KV caches grow on attention GEMMs; remove the residency annotation",
                ));
            }
        }
    }
}

/// Element-count threshold above which a tensor is suspect: 2^50
/// elements is ~1 PiB at 8-bit words, beyond any single-accelerator
/// workload and a strong sign of a transposed or fat-fingered bound.
const OVERSIZED_ELEMENTS: u64 = 1 << 50;

/// `L0204`: a layer tensor is implausibly large.
pub struct OversizedTensor;

impl Lint for OversizedTensor {
    fn code(&self) -> &'static str {
        "L0204"
    }

    fn summary(&self) -> &'static str {
        "tensors should fit a single accelerator's working set"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        for layer in network.layers() {
            let oversized: Vec<String> = TensorKind::ALL
                .into_iter()
                .filter(|t| layer.tensor_elements(*t) > OVERSIZED_ELEMENTS)
                .map(|t| format!("{t} ({} elements)", layer.tensor_elements(t)))
                .collect();
            if !oversized.is_empty() {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    layer_path(network, layer),
                    format!("implausibly large tensor(s): {}", oversized.join(", ")),
                    "check the layer bounds for a transposed or misplaced dimension",
                ));
            }
        }
    }
}

/// `L0205`: a network with no layers.
///
/// Evaluating it "succeeds" with zero energy and zero cycles — numbers
/// that look real in a sweep table.
pub struct EmptyNetwork;

impl Lint for EmptyNetwork {
    fn code(&self) -> &'static str {
        "L0205"
    }

    fn summary(&self) -> &'static str {
        "networks must contain at least one layer"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        if network.layers().is_empty() {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                network.name(),
                "network has no layers; evaluation would report zero energy".to_string(),
                "push at least one layer, or drop the network from the sweep",
            ));
        }
    }
}

/// Finds digest collisions in `(name, signature, digest)` entries:
/// pairs whose signatures differ but whose digests are equal.
///
/// Exposed separately from [`DigestCollision`] because a genuine 64-bit
/// FNV-1a collision cannot be constructed in a test; fixtures exercise
/// this function with forged digests, while the rule feeds it real ones.
pub fn digest_collisions(entries: &[(&str, LayerSignature, u64)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, (name_a, sig_a, digest_a)) in entries.iter().enumerate() {
        for (name_b, sig_b, digest_b) in &entries[i + 1..] {
            if digest_a == digest_b && sig_a != sig_b {
                out.push(Diagnostic::new(
                    "L0206",
                    Severity::Error,
                    format!("{name_a} <-> {name_b}"),
                    format!(
                        "distinct layer signatures share digest {digest_a:016x}; \
                         content-addressed caching would conflate them"
                    ),
                    "a real FNV-1a collision: change the digest encoding (and its pinned \
                     constant) before trusting any shared cache",
                ));
            }
        }
    }
    out
}

/// `L0206`: two layers of the network have distinct signatures but
/// equal `LayerSignature::digest()` values.
///
/// The `EvalCache` keys on the full signature, so evaluation stays
/// correct — but logs, JSON artifacts and any future digest-keyed
/// sharding would silently conflate the two layers.
pub struct DigestCollision;

impl Lint for DigestCollision {
    fn code(&self) -> &'static str {
        "L0206"
    }

    fn summary(&self) -> &'static str {
        "layer signature digests must be collision-free within a network"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(network) = target.network else {
            return;
        };
        let entries: Vec<(&str, LayerSignature, u64)> = network
            .layers()
            .iter()
            .map(|l| {
                let sig = l.signature();
                (l.name(), sig, sig.digest())
            })
            .collect();
        out.extend(digest_collisions(&entries));
    }
}
