//! Mapping-strategy rules (`L03xx`), checked against the distilled
//! [`StrategyFacts`](crate::StrategyFacts) rather than the strategy
//! type itself (which lives upstream in `lumen-core`).

use crate::registry::Lint;
use crate::{Diagnostic, LintTarget, Severity};

/// Iteration count beyond which a random search stops buying mapping
/// quality and starts dominating sweep wall-time.
const EXCESSIVE_ITERATIONS: usize = 100_000;

/// `L0301`: the strategy's cache fingerprint hashes a closure address.
///
/// Address-based fingerprints are unique per process run: results keyed
/// on them can never be shared across processes, and within a process a
/// dropped-and-reallocated closure could collide. `EvalCache` pins such
/// strategies to stay sound, but content-keyed strategies
/// (`custom_keyed`) are strictly better.
pub struct AddressFingerprint;

impl Lint for AddressFingerprint {
    fn code(&self) -> &'static str {
        "L0301"
    }

    fn summary(&self) -> &'static str {
        "strategies should fingerprint by content, not address"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(facts) = target.strategy else { return };
        if facts.address_fingerprinted {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                format!("strategy/{}", facts.label),
                "fingerprint hashes the closure's address; cached results cannot be \
                 shared or persisted"
                    .to_string(),
                "use MappingStrategy::custom_keyed with a stable content key",
            ));
        }
    }
}

/// `L0302`: a random search configured to draw zero candidates.
///
/// It can never produce a mapping; every layer fails with a generic
/// "no legal mapping" at evaluation time.
pub struct DegenerateSearch;

impl Lint for DegenerateSearch {
    fn code(&self) -> &'static str {
        "L0302"
    }

    fn summary(&self) -> &'static str {
        "random searches must draw at least one candidate"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(facts) = target.strategy else { return };
        if let Some(search) = &facts.search {
            if search.iterations == 0 {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    format!("strategy/{}", facts.label),
                    "search draws 0 candidates and can never find a mapping".to_string(),
                    "set SearchConfig::iterations to at least 1 (default is 500)",
                ));
            }
        }
    }
}

/// `L0405`: a zero-iteration search fails far from its cause.
///
/// Companion warning to the [`DegenerateSearch`] error, pointing at the
/// *symptom*: `random_search` silently returns `None`, and what the user
/// eventually sees is the evaluator's generic "no legal mapping" on some
/// layer — nowhere near the `SearchConfig` that caused it. The warning
/// survives `--allow L0302`, so the breadcrumb remains even when the
/// hard error has been waved through.
pub struct SilentSearchFailure;

impl Lint for SilentSearchFailure {
    fn code(&self) -> &'static str {
        "L0405"
    }

    fn summary(&self) -> &'static str {
        "zero-iteration searches fail far from their configuration"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(facts) = target.strategy else { return };
        if let Some(search) = &facts.search {
            if search.iterations == 0 {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    format!("strategy/{}", facts.label),
                    "the search returns no mapping; evaluation reports a generic \
                     mapping failure far from this SearchConfig"
                        .to_string(),
                    "fix the iteration count here rather than debugging the layer error",
                ));
            }
        }
    }
}

/// `L0303`: a random search with an extreme iteration budget.
pub struct ExcessiveSearch;

impl Lint for ExcessiveSearch {
    fn code(&self) -> &'static str {
        "L0303"
    }

    fn summary(&self) -> &'static str {
        "random searches should keep a sane iteration budget"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(facts) = target.strategy else { return };
        if let Some(search) = &facts.search {
            if search.iterations > EXCESSIVE_ITERATIONS {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    format!("strategy/{}", facts.label),
                    format!(
                        "search draws {} candidates per layer (> {EXCESSIVE_ITERATIONS}); \
                         sweeps will be dominated by mapping search",
                        search.iterations
                    ),
                    "a few hundred iterations typically saturate mapping quality",
                ));
            }
        }
    }
}
