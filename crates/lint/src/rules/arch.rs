//! Architecture rules (`L01xx`): physical plausibility and hierarchy
//! configuration problems that `Architecture::validate` deliberately
//! does not reject (a spec can be structurally well-formed yet priced
//! nonsensically).

use crate::registry::Lint;
use crate::{Diagnostic, LintTarget, Severity};
use lumen_arch::{Architecture, Level};
use lumen_workload::{DimSet, TensorKind};

fn level_path(arch: &Architecture, level: &Level) -> String {
    format!("{}/{}", arch.name(), level.name())
}

/// Whether an energy/power magnitude is physically implausible.
fn bad_magnitude(value: f64) -> bool {
    !value.is_finite() || value < 0.0
}

/// `L0101`: a component energy is negative, NaN or infinite.
///
/// Covers per-element read/write/convert energies, the per-MAC compute
/// energy and every per-cycle cost. A single negative DRAM energy makes
/// whole-network totals silently wrong, which is exactly the
/// plausible-but-wrong failure mode pre-flight linting exists to catch.
pub struct NonFiniteEnergy;

impl Lint for NonFiniteEnergy {
    fn code(&self) -> &'static str {
        "L0101"
    }

    fn summary(&self) -> &'static str {
        "component energies must be finite and non-negative"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        let mut emit = |path: String, component: &str, value: f64| {
            if bad_magnitude(value) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    path,
                    format!("{component} is {value} J — not a physical energy"),
                    "use a finite, non-negative energy for every component",
                ));
            }
        };
        for level in arch.levels() {
            let path = level_path(arch, level);
            if level.kind().is_storage() {
                emit(path.clone(), "read energy", level.read_energy().joules());
                emit(path, "write energy", level.write_energy().joules());
            } else if level.kind().is_converter() {
                emit(path, "convert energy", level.convert_energy().joules());
            } else {
                emit(path, "per-MAC energy", arch.mac_energy().joules());
            }
        }
        for cost in arch.per_cycle_costs() {
            emit(
                format!("{}/{}", arch.name(), cost.name),
                "per-cycle energy",
                cost.energy_per_cycle.joules(),
            );
        }
    }
}

/// `L0102`: the clock is non-positive or non-finite.
///
/// Throughput and static-energy accounting both divide by the clock, so
/// a zero or NaN clock turns every derived figure into garbage.
pub struct BadClock;

impl Lint for BadClock {
    fn code(&self) -> &'static str {
        "L0102"
    }

    fn summary(&self) -> &'static str {
        "the clock must be a positive, finite frequency"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        let hz = arch.clock().hertz();
        if !hz.is_finite() || hz <= 0.0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                arch.name(),
                format!("clock is {hz} Hz — cycle time and static energy are undefined"),
                "set a positive, finite clock on ArchBuilder::new",
            ));
        }
    }
}

/// `L0103`: a tensor crosses the electrical/optical boundary between
/// its outermost storage home and the compute level, but no converter
/// keeping that tensor prices the crossing.
///
/// This is the paper's headline modeling trap: DAC/ADC/modulator energy
/// dominates photonic accelerators, so an unpriced crossing silently
/// drops the dominant term. Passive optical elements (star couplers)
/// are fine *as long as* some converter on the tensor's path carries a
/// positive conversion energy.
pub struct UnpricedBoundary;

impl Lint for UnpricedBoundary {
    fn code(&self) -> &'static str {
        "L0103"
    }

    fn summary(&self) -> &'static str {
        "electrical/optical crossings need a positively-priced converter"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        let compute_optical = arch.compute_level().domain().is_optical();
        for tensor in TensorKind::ALL {
            let Some(home) = arch
                .levels()
                .iter()
                .find(|l| l.kind().is_storage() && l.keep().contains(tensor))
            else {
                continue;
            };
            if home.domain().is_optical() == compute_optical {
                continue;
            }
            let priced = arch.levels().iter().any(|l| {
                l.kind().is_converter()
                    && l.keep().contains(tensor)
                    && l.convert_energy().joules() > 0.0
            });
            if !priced {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    arch.name(),
                    format!(
                        "{tensor} moves between {} storage `{}` and the {} compute level \
                         with no positively-priced converter on its path",
                        home.domain(),
                        home.name(),
                        arch.compute_level().domain()
                    ),
                    "add a converter level keeping this tensor with a nonzero convert energy",
                ));
            }
        }
    }
}

/// `L0104`: a bounded storage level cannot hold even one element of a
/// tensor it claims to keep.
///
/// The mapper would reject every tiling at such a level; catching it
/// statically names the level instead of failing mid-sweep with a
/// generic "no legal mapping".
pub struct TinyCapacity;

impl Lint for TinyCapacity {
    fn code(&self) -> &'static str {
        "L0104"
    }

    fn summary(&self) -> &'static str {
        "bounded storage must fit at least one element of each kept tensor"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        for level in arch.levels() {
            let Some(bits) = level.capacity_bits() else {
                continue;
            };
            let too_wide: Vec<String> = TensorKind::ALL
                .into_iter()
                .filter(|t| level.keep().contains(*t) && u64::from(arch.word_bits_of(*t)) > bits)
                .map(|t| t.to_string())
                .collect();
            if !too_wide.is_empty() {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    level_path(arch, level),
                    format!(
                        "capacity of {bits} bits cannot hold one element of kept tensor(s) {}",
                        too_wide.join(", ")
                    ),
                    "raise capacity_bits or stop keeping the tensor at this level",
                ));
            }
        }
    }
}

/// `L0105`: a fan-out configuration that can never matter.
///
/// Either a degenerate size-1 fan-out carries dimension restrictions
/// (dead configuration — probably a typo for a real fan-out), or a real
/// fan-out lists unit-stride dimensions it does not allow (the
/// requirement can never gate anything).
pub struct DeadFanout;

impl Lint for DeadFanout {
    fn code(&self) -> &'static str {
        "L0105"
    }

    fn summary(&self) -> &'static str {
        "fan-out restrictions must be able to take effect"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        for level in arch.levels() {
            let fanout = level.fanout();
            let restricted =
                fanout.allowed() != DimSet::all() || !fanout.unit_stride_dims().is_empty();
            if fanout.size() == 1 && restricted {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    level_path(arch, level),
                    "size-1 fan-out carries dimension restrictions that can never apply"
                        .to_string(),
                    "give the fan-out a size > 1 or drop the allow/unit-stride restrictions",
                ));
            } else if fanout.size() > 1 {
                let orphaned: DimSet = fanout
                    .unit_stride_dims()
                    .iter()
                    .filter(|d| !fanout.allowed().contains(*d))
                    .collect();
                if !orphaned.is_empty() {
                    out.push(Diagnostic::new(
                        self.code(),
                        Severity::Warn,
                        level_path(arch, level),
                        format!(
                            "unit-stride requirement on {orphaned} is dead: those dimensions \
                             are not in the allowed set {}",
                            fanout.allowed()
                        ),
                        "require unit stride only for dimensions the fan-out allows",
                    ));
                }
            }
        }
    }
}

/// `L0106`: a converter that costs nothing in any ledger — zero
/// conversion energy, zero area and zero static power.
///
/// A deliberately passive element (a star coupler) still has area; a
/// converter with no footprint at all is almost certainly an unfinished
/// spec whose E/O pricing was never filled in.
pub struct InertConverter;

impl Lint for InertConverter {
    fn code(&self) -> &'static str {
        "L0106"
    }

    fn summary(&self) -> &'static str {
        "converters should cost something in at least one ledger"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        for level in arch.levels() {
            if level.kind().is_converter()
                && level.convert_energy().joules() == 0.0
                && level.area().square_meters() == 0.0
                && level.static_power().watts() == 0.0
            {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    level_path(arch, level),
                    "converter has zero conversion energy, zero area and zero static power"
                        .to_string(),
                    "price the conversion, or give the passive element its real area/power",
                ));
            }
        }
    }
}

/// `L0107`: a storage level whose reads and writes are both free.
///
/// Free storage makes the mapper's buffer-vs-traffic trade-off
/// degenerate: any amount of traffic at that level costs nothing, so
/// energy comparisons across architectures quietly lose a term.
pub struct FreeStorage;

impl Lint for FreeStorage {
    fn code(&self) -> &'static str {
        "L0107"
    }

    fn summary(&self) -> &'static str {
        "storage levels should price reads or writes"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(arch) = target.arch else { return };
        for level in arch.levels() {
            if level.kind().is_storage()
                && level.read_energy().joules() == 0.0
                && level.write_energy().joules() == 0.0
            {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warn,
                    level_path(arch, level),
                    "storage level charges nothing for reads or writes".to_string(),
                    "set read/write energies, or model the level as a converter if it only \
                     transduces",
                ));
            }
        }
    }
}
