//! Serving-schedule rules (`L04xx`): request-mix and scheduler knobs
//! checked before a continuous-batching study runs.

use crate::registry::Lint;
use crate::{Diagnostic, LintTarget, Severity};
use lumen_workload::ArrivalProcess;

/// `L0401`: a schedule with zero decode slots.
///
/// `BatchSchedule::build` panics on it; the lint reports the mix by
/// name instead.
pub struct ZeroCapacity;

impl Lint for ZeroCapacity {
    fn code(&self) -> &'static str {
        "L0401"
    }

    fn summary(&self) -> &'static str {
        "schedules need at least one decode slot"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        if serving.capacity == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                format!("serving/{}", serving.mix.name()),
                "batch capacity is 0; no request can ever be admitted".to_string(),
                "give the scheduler at least one decode slot",
            ));
        }
    }
}

/// `L0402`: the KV rounding bucket does not fit the mix.
///
/// A zero bucket makes attend-length rounding undefined, and a bucket
/// larger than the mix's longest sequence rounds *every* step up to a
/// length no request reaches — all schedules degenerate to one padded
/// bucket and the bucketing measures nothing but padding.
pub struct KvBucketMismatch;

impl Lint for KvBucketMismatch {
    fn code(&self) -> &'static str {
        "L0402"
    }

    fn summary(&self) -> &'static str {
        "the KV bucket must be positive and no larger than the mix's longest sequence"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let path = format!("serving/{}", serving.mix.name());
        if serving.kv_bucket == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                path,
                "KV bucket is 0; attend-length rounding is undefined".to_string(),
                "use a positive bucket (a power of two near the typical context works well)",
            ));
            return;
        }
        let longest = serving
            .mix
            .requests()
            .iter()
            .map(|r| r.prompt + r.output)
            .max()
            .unwrap_or(0);
        if serving.kv_bucket > longest {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                path,
                format!(
                    "KV bucket {} exceeds the mix's longest sequence ({longest} tokens); \
                     every step pads to a length no request reaches",
                    serving.kv_bucket
                ),
                "shrink the bucket to at most the longest prompt+output in the mix",
            ));
        }
    }
}

/// `L0403`: the arrival process offers more decode work than the
/// scheduler can serve.
///
/// Each admitted request occupies a slot for (at least) its output
/// tokens, so the offered decode load is `mean arrival rate × mean
/// output length` slot-steps per step. When that exceeds the batch
/// capacity the queue grows without bound and tail latencies diverge —
/// the study still runs (every request eventually drains because the
/// mix is finite), but its percentiles measure the backlog, not the
/// steady state.
pub struct OfferedLoadExceedsCapacity;

impl Lint for OfferedLoadExceedsCapacity {
    fn code(&self) -> &'static str {
        "L0403"
    }

    fn summary(&self) -> &'static str {
        "the offered decode load should not exceed the batch capacity"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let Some(rate) = serving.arrival.and_then(ArrivalProcess::mean_rate) else {
            return;
        };
        if serving.mix.is_empty() || serving.capacity == 0 {
            return;
        }
        let mean_output = serving.mix.total_output_tokens() as f64 / serving.mix.len() as f64;
        let offered = rate * mean_output;
        if offered > serving.capacity as f64 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                format!("serving/{}", serving.mix.name()),
                format!(
                    "offered load {offered:.2} slot-steps/step exceeds capacity {}; \
                     the queue grows without bound and tail latency measures backlog",
                    serving.capacity
                ),
                "lower the arrival rate, shorten outputs, or add decode slots",
            ));
        }
    }
}

/// `L0406`: the KV page does not tile the hardware bucket.
///
/// Paged-vs-bucketed comparisons lean on the soundness bound *bucketed
/// ≥ paged*, which only holds when the page divides the bucket (every
/// bucketed attend length is then a whole number of pages). A zero
/// page is an outright error — `PageTable::new` panics on it.
pub struct PageTileMismatch;

impl Lint for PageTileMismatch {
    fn code(&self) -> &'static str {
        "L0406"
    }

    fn summary(&self) -> &'static str {
        "the KV page must be positive and divide the KV bucket"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let Some(page) = serving.kv_page else {
            return;
        };
        let path = format!("serving/{}", serving.mix.name());
        if page == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                path,
                "KV page is 0; a page must cover at least one token".to_string(),
                "use a positive page (a small power of two, e.g. 16)",
            ));
            return;
        }
        if serving.kv_bucket > 0 && !serving.kv_bucket.is_multiple_of(page) {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                path,
                format!(
                    "KV page {page} does not divide the hardware bucket {}; bucketed \
                     accounting is no longer an upper bound on paged residency",
                    serving.kv_bucket
                ),
                "pick a page that tiles the bucket (bucket % page == 0)",
            ));
        }
    }
}

/// `L0407`: the KV page is so coarse the study mostly measures
/// fragmentation.
///
/// Each active request wastes up to `page − 1` allocated-but-unused
/// tokens (its last, partially-filled page). When the page is a large
/// fraction of the mix's mean sequence length that waste dominates the
/// residency the paged study was meant to trim, and the configuration
/// behaves like the bucket padding it is supposed to replace.
pub struct FragmentationHeavyPage;

impl Lint for FragmentationHeavyPage {
    fn code(&self) -> &'static str {
        "L0407"
    }

    fn summary(&self) -> &'static str {
        "the KV page should be small relative to the mix's mean sequence"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let Some(page) = serving.kv_page else {
            return;
        };
        if page == 0 || serving.mix.is_empty() {
            return;
        }
        let total: u64 = serving
            .mix
            .requests()
            .iter()
            .map(|r| (r.prompt + r.output) as u64)
            .sum();
        let mean_seq = total as f64 / serving.mix.len() as f64;
        // Worst-case per-request waste approaches one page; flag pages
        // above a quarter of the mean sequence, where that waste is a
        // double-digit share of the average request's whole residency.
        if page as f64 > mean_seq / 4.0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                format!("serving/{}", serving.mix.name()),
                format!(
                    "KV page {page} exceeds a quarter of the mix's mean sequence \
                     ({mean_seq:.0} tokens); up to one page per request sits allocated \
                     but unused, so the study mostly measures fragmentation"
                ),
                "shrink the page (or grow the sequences) until page <= mean/4",
            ));
        }
    }
}

/// `L0404`: a request does not fit the model's context window.
///
/// A request whose prompt plus output exceeds the declared context
/// window would attend beyond positions the model was trained for; the
/// schedule happily charges the work, so the study silently models an
/// impossible deployment.
pub struct PromptExceedsContext;

impl Lint for PromptExceedsContext {
    fn code(&self) -> &'static str {
        "L0404"
    }

    fn summary(&self) -> &'static str {
        "every request must fit the model's context window"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let Some(max_context) = serving.max_context else {
            return;
        };
        let worst = serving
            .mix
            .requests()
            .iter()
            .map(|r| r.prompt + r.output)
            .max()
            .unwrap_or(0);
        if worst > max_context {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                format!("serving/{}", serving.mix.name()),
                format!(
                    "a request reaches {worst} tokens but the model's context window \
                     is {max_context}"
                ),
                "trim the mix's prompts/outputs or serve a longer-context model",
            ));
        }
    }
}

/// `L0408`: a router with no instances to route to.
///
/// `Fleet::try_uniform` rejects a zero-instance fleet with a typed
/// error; the lint reports the same contradiction at pre-flight, with
/// the router and stream named, so a capacity sweep that computed its
/// instance count (e.g. from a budget) fails loudly before dispatch.
pub struct RouterTargetsNoInstances;

impl Lint for RouterTargetsNoInstances {
    fn code(&self) -> &'static str {
        "L0408"
    }

    fn summary(&self) -> &'static str {
        "a fleet router needs at least one instance"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(fleet) = target.fleet else {
            return;
        };
        if fleet.instances == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                format!("fleet/{}/{}", fleet.router, fleet.stream.mix.name()),
                format!(
                    "router {} targets zero instances; every request routes nowhere",
                    fleet.router
                ),
                "provision at least one instance before routing a stream",
            ));
        }
    }
}

/// `L0409`: the stream offers more decode work than the whole fleet can
/// serve.
///
/// The fleet analogue of `L0403`: the offered decode load is `mean
/// arrival rate × mean output length` slot-steps per step, and the
/// serving capacity is now the *sum* of every instance's decode slots.
/// When the offered load exceeds that aggregate no router can help —
/// queues grow on every instance and fleet percentiles measure backlog.
/// Adding instances is the fix the capacity planner automates.
pub struct FleetOverload;

impl Lint for FleetOverload {
    fn code(&self) -> &'static str {
        "L0409"
    }

    fn summary(&self) -> &'static str {
        "the offered load should not exceed the fleet's aggregate capacity"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(fleet) = target.fleet else {
            return;
        };
        let stream = &fleet.stream;
        let Some(rate) = stream.arrival.and_then(ArrivalProcess::mean_rate) else {
            return;
        };
        if stream.mix.is_empty() || fleet.aggregate_capacity == 0 {
            return;
        }
        let mean_output = stream.mix.total_output_tokens() as f64 / stream.mix.len() as f64;
        let offered = rate * mean_output;
        if offered > fleet.aggregate_capacity as f64 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                format!("fleet/{}/{}", fleet.router, fleet.stream.mix.name()),
                format!(
                    "offered load {offered:.2} slot-steps/step exceeds the fleet's \
                     aggregate capacity {} across {} instance(s); queues grow on every \
                     instance regardless of routing",
                    fleet.aggregate_capacity, fleet.instances
                ),
                "add instances, lower the arrival rate, or shorten outputs",
            ));
        }
    }
}
