//! Serving-schedule rules (`L04xx`): request-mix and scheduler knobs
//! checked before a continuous-batching study runs.

use crate::registry::Lint;
use crate::{Diagnostic, LintTarget, Severity};

/// `L0401`: a schedule with zero decode slots.
///
/// `BatchSchedule::build` panics on it; the lint reports the mix by
/// name instead.
pub struct ZeroCapacity;

impl Lint for ZeroCapacity {
    fn code(&self) -> &'static str {
        "L0401"
    }

    fn summary(&self) -> &'static str {
        "schedules need at least one decode slot"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        if serving.capacity == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Error,
                format!("serving/{}", serving.mix.name()),
                "batch capacity is 0; no request can ever be admitted".to_string(),
                "give the scheduler at least one decode slot",
            ));
        }
    }
}

/// `L0402`: the KV rounding bucket does not fit the mix.
///
/// A zero bucket makes attend-length rounding undefined, and a bucket
/// larger than the mix's longest sequence rounds *every* step up to a
/// length no request reaches — all schedules degenerate to one padded
/// bucket and the bucketing measures nothing but padding.
pub struct KvBucketMismatch;

impl Lint for KvBucketMismatch {
    fn code(&self) -> &'static str {
        "L0402"
    }

    fn summary(&self) -> &'static str {
        "the KV bucket must be positive and no larger than the mix's longest sequence"
    }

    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let Some(serving) = target.serving else {
            return;
        };
        let path = format!("serving/{}", serving.mix.name());
        if serving.kv_bucket == 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                path,
                "KV bucket is 0; attend-length rounding is undefined".to_string(),
                "use a positive bucket (a power of two near the typical context works well)",
            ));
            return;
        }
        let longest = serving
            .mix
            .requests()
            .iter()
            .map(|r| r.prompt + r.output)
            .max()
            .unwrap_or(0);
        if serving.kv_bucket > longest {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Warn,
                path,
                format!(
                    "KV bucket {} exceeds the mix's longest sequence ({longest} tokens); \
                     every step pads to a length no request reaches",
                    serving.kv_bucket
                ),
                "shrink the bucket to at most the longest prompt+output in the mix",
            ));
        }
    }
}
