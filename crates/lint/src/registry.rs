//! The [`Lint`] trait and the rule registry that drives a run.

use crate::{Diagnostic, LintConfig, LintTarget, Report};

/// One static-analysis rule.
///
/// A rule inspects whatever facets of the [`LintTarget`] it understands
/// and pushes zero or more [`Diagnostic`]s. Rules must be pure
/// (inspection only, no evaluation) and must emit their own `code()` on
/// every diagnostic they push.
pub trait Lint {
    /// The stable `L####` code this rule emits.
    fn code(&self) -> &'static str;

    /// One-line description of the invariant checked.
    fn summary(&self) -> &'static str;

    /// Runs the rule over `target`, appending findings to `out`.
    fn check(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of rules, run together over one target.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> LintRegistry {
        LintRegistry { lints: Vec::new() }
    }

    /// The registry with every built-in rule registered.
    pub fn with_default_lints() -> LintRegistry {
        LintRegistry {
            lints: crate::rules::default_lints(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn register(mut self, lint: Box<dyn Lint>) -> LintRegistry {
        self.lints.push(lint);
        self
    }

    /// The registered rules.
    pub fn lints(&self) -> &[Box<dyn Lint>] {
        &self.lints
    }

    /// The registered codes, in registration order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.code()).collect()
    }

    /// Runs every rule over `target` with the default configuration.
    pub fn run(&self, target: &LintTarget<'_>) -> Report {
        self.run_with(target, &LintConfig::default())
    }

    /// Runs every rule over `target`, applying `config` to each finding.
    pub fn run_with(&self, target: &LintTarget<'_>, config: &LintConfig) -> Report {
        let mut raw = Vec::new();
        for lint in &self.lints {
            lint.check(target, &mut raw);
        }
        let kept = raw
            .into_iter()
            .filter_map(|d| config.apply(d))
            .collect::<Vec<_>>();
        Report::from_diagnostics(kept)
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        LintRegistry::with_default_lints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    struct Always(&'static str, Severity);

    impl Lint for Always {
        fn code(&self) -> &'static str {
            self.0
        }
        fn summary(&self) -> &'static str {
            "always fires"
        }
        fn check(&self, _target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new(self.0, self.1, "here", "fired", "n/a"));
        }
    }

    #[test]
    fn empty_registry_is_silent() {
        assert!(LintRegistry::new().run(&LintTarget::new()).is_empty());
    }

    #[test]
    fn config_filters_and_escalates() {
        let registry = LintRegistry::new()
            .register(Box::new(Always("L9001", Severity::Warn)))
            .register(Box::new(Always("L9002", Severity::Warn)));
        let report = registry.run_with(
            &LintTarget::new(),
            &LintConfig::new().allow("L9001").deny("L9002"),
        );
        assert_eq!(report.diagnostics().len(), 1);
        assert_eq!(report.diagnostics()[0].code, "L9002");
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn default_lints_have_unique_codes() {
        let registry = LintRegistry::with_default_lints();
        let mut codes = registry.codes();
        let n = codes.len();
        assert!(n >= 12, "need at least 12 rules, have {n}");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate lint codes registered");
    }

    #[test]
    fn default_lints_pass_the_empty_target() {
        let report = LintRegistry::with_default_lints().run(&LintTarget::new());
        assert!(report.is_empty(), "{report}");
    }
}
