//! Per-code allow/deny configuration.

use crate::{Diagnostic, Severity};
use std::collections::BTreeSet;

/// Filters and escalates diagnostics after the rules have run.
///
/// Applied per finding: allowed codes are dropped, denied codes are
/// escalated to [`Severity::Error`], and `deny_warnings` escalates every
/// surviving warning. Allow wins over deny for the same code (an
/// explicitly silenced rule stays silent).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    allowed: BTreeSet<String>,
    denied: BTreeSet<String>,
    deny_warnings: bool,
}

impl LintConfig {
    /// The empty configuration: every diagnostic passes through at its
    /// rule's severity.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Silences a code (builder style).
    #[must_use]
    pub fn allow(mut self, code: impl Into<String>) -> LintConfig {
        self.allowed.insert(code.into());
        self
    }

    /// Escalates a code to [`Severity::Error`] (builder style).
    #[must_use]
    pub fn deny(mut self, code: impl Into<String>) -> LintConfig {
        self.denied.insert(code.into());
        self
    }

    /// Escalates all warnings to errors (builder style) — the
    /// `--deny warnings` CI posture.
    #[must_use]
    pub fn deny_warnings(mut self) -> LintConfig {
        self.deny_warnings = true;
        self
    }

    /// Whether findings for `code` are silenced.
    pub fn is_allowed(&self, code: &str) -> bool {
        self.allowed.contains(code)
    }

    /// Applies the configuration to one finding: `None` if silenced,
    /// otherwise the (possibly escalated) diagnostic.
    pub fn apply(&self, mut diagnostic: Diagnostic) -> Option<Diagnostic> {
        if self.is_allowed(diagnostic.code) {
            return None;
        }
        if self.denied.contains(diagnostic.code)
            || (self.deny_warnings && diagnostic.severity == Severity::Warn)
        {
            diagnostic.severity = Severity::Error;
        }
        Some(diagnostic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn(code: &'static str) -> Diagnostic {
        Diagnostic::new(code, Severity::Warn, "p", "m", "h")
    }

    #[test]
    fn empty_config_passes_through() {
        let d = LintConfig::new().apply(warn("L0105")).unwrap();
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn allow_silences() {
        assert!(LintConfig::new()
            .allow("L0105")
            .apply(warn("L0105"))
            .is_none());
    }

    #[test]
    fn deny_escalates() {
        let d = LintConfig::new()
            .deny("L0105")
            .apply(warn("L0105"))
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn deny_warnings_escalates_all_warns() {
        let cfg = LintConfig::new().deny_warnings();
        assert_eq!(cfg.apply(warn("L0105")).unwrap().severity, Severity::Error);
        let info = Diagnostic::new("L0001", Severity::Info, "p", "m", "h");
        assert_eq!(cfg.apply(info).unwrap().severity, Severity::Info);
    }

    #[test]
    fn allow_wins_over_deny() {
        let cfg = LintConfig::new().allow("L0105").deny("L0105");
        assert!(cfg.apply(warn("L0105")).is_none());
    }
}
