//! What a lint run inspects.
//!
//! A [`LintTarget`] bundles up to four model facets — architecture,
//! network, mapping strategy and serving schedule — all optional, so a
//! caller can lint exactly what it has. Rules skip facets that are
//! absent; a target with no facets produces an empty report.

use lumen_arch::Architecture;
use lumen_mapper::search::SearchConfig;
use lumen_workload::{ArrivalProcess, Network, RequestMix, ServingScenario};

/// Facts about a mapping strategy that lints can inspect without the
/// strategy type itself.
///
/// `MappingStrategy` lives in `lumen-core`, which depends on this crate
/// for the pre-flight hook; to avoid a cycle, core distills the strategy
/// into this value (`lumen_core::strategy_facts`) before handing it to
/// the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyFacts {
    /// Human-readable strategy description (used in diagnostic paths).
    pub label: String,
    /// Whether the strategy's cache fingerprint hashes a closure
    /// *address* rather than content — unsound to persist or share
    /// across processes.
    pub address_fingerprinted: bool,
    /// The random-search configuration, when the strategy searches.
    pub search: Option<SearchConfig>,
}

/// A serving schedule to lint: the request mix plus the two scheduler
/// knobs that shape it.
#[derive(Debug, Clone)]
pub struct ServingSpec<'a> {
    /// The traffic to serve.
    pub mix: &'a RequestMix,
    /// Decode slots available per step.
    pub capacity: usize,
    /// KV attend-length rounding quantum (elements).
    pub kv_bucket: usize,
    /// Tokens per KV page when the study runs paged residency; `None`
    /// for the legacy bucket-padded accounting.
    pub kv_page: Option<usize>,
    /// The arrival process feeding the scheduler, when open-loop.
    pub arrival: Option<&'a ArrivalProcess>,
    /// The served model's context window (tokens), when declared.
    pub max_context: Option<usize>,
}

impl<'a> ServingSpec<'a> {
    /// The borrow-view of a validated [`ServingScenario`] — the one
    /// construction path serving lints inspect. The scenario has already
    /// rejected contradictions at `build()`, so the lints add judgment
    /// calls (load vs capacity, page vs bucket fit), not re-validation.
    pub fn from_scenario(scenario: &'a ServingScenario) -> ServingSpec<'a> {
        ServingSpec {
            mix: scenario.mix(),
            capacity: scenario.capacity(),
            kv_bucket: scenario.kv_bucket(),
            kv_page: scenario.kv_page(),
            arrival: Some(scenario.arrival()),
            max_context: scenario.max_context(),
        }
    }
}

/// A fleet to lint: the per-instance serving view plus the fleet-level
/// shape the routers operate on.
#[derive(Debug, Clone)]
pub struct FleetSpec<'a> {
    /// The global stream the fleet serves, as a serving spec.
    pub stream: ServingSpec<'a>,
    /// Number of instances the router targets.
    pub instances: usize,
    /// Total decode slots across the fleet.
    pub aggregate_capacity: usize,
    /// The routing discipline's display name (for diagnostic paths).
    pub router: &'a str,
}

/// The model facets one lint run inspects; all optional.
#[derive(Debug, Clone, Default)]
pub struct LintTarget<'a> {
    /// Architecture under check.
    pub arch: Option<&'a Architecture>,
    /// Workload under check.
    pub network: Option<&'a Network>,
    /// Mapping strategy under check (pre-distilled facts).
    pub strategy: Option<&'a StrategyFacts>,
    /// Serving schedule under check.
    pub serving: Option<&'a ServingSpec<'a>>,
    /// Fleet under check.
    pub fleet: Option<&'a FleetSpec<'a>>,
}

impl<'a> LintTarget<'a> {
    /// An empty target (nothing to lint).
    pub fn new() -> LintTarget<'a> {
        LintTarget::default()
    }

    /// Adds an architecture (builder style).
    #[must_use]
    pub fn with_arch(mut self, arch: &'a Architecture) -> LintTarget<'a> {
        self.arch = Some(arch);
        self
    }

    /// Adds a network (builder style).
    #[must_use]
    pub fn with_network(mut self, network: &'a Network) -> LintTarget<'a> {
        self.network = Some(network);
        self
    }

    /// Adds strategy facts (builder style).
    #[must_use]
    pub fn with_strategy(mut self, facts: &'a StrategyFacts) -> LintTarget<'a> {
        self.strategy = Some(facts);
        self
    }

    /// Adds a serving spec (builder style).
    #[must_use]
    pub fn with_serving(mut self, serving: &'a ServingSpec<'a>) -> LintTarget<'a> {
        self.serving = Some(serving);
        self
    }

    /// Adds a fleet spec (builder style).
    #[must_use]
    pub fn with_fleet(mut self, fleet: &'a FleetSpec<'a>) -> LintTarget<'a> {
        self.fleet = Some(fleet);
        self
    }
}
