//! Static pre-flight analysis of models: find misconfigurations before
//! they become plausible-but-wrong numbers.
//!
//! Architecture-level energy modeling stands or falls on model validity:
//! an unpriced electrical/optical boundary or an inconsistent KV-cache
//! annotation does not crash a sweep, it just skews every figure built
//! on it. This crate inspects architectures, workloads, mapping
//! strategies and serving schedules *without evaluating them* and emits
//! structured [`Diagnostic`]s with stable `L####` codes, so problems
//! surface before the first layer is mapped.
//!
//! The pieces:
//!
//! - [`Diagnostic`] / [`Severity`]: one finding — code, severity, model
//!   path, message, help.
//! - [`Lint`] + [`LintRegistry`]: the rule trait and the runner;
//!   [`LintRegistry::with_default_lints`] registers the built-in set
//!   (see [`rules`] for the catalog).
//! - [`LintConfig`]: per-code allow/deny plus `--deny warnings`.
//! - [`LintTarget`]: what to inspect — any subset of architecture,
//!   network, strategy facts and serving spec.
//! - [`Report`]: stably-ordered findings with text and JSON renderers.
//!
//! # Examples
//!
//! ```
//! use lumen_lint::{LintRegistry, LintTarget};
//! use lumen_workload::networks;
//!
//! let net = networks::by_name("resnet18").unwrap();
//! let report = LintRegistry::with_default_lints()
//!     .run(&LintTarget::new().with_network(&net));
//! assert!(report.is_clean());
//! ```

mod config;
mod diagnostic;
mod registry;
mod report;
pub mod rules;
mod target;

pub use config::LintConfig;
pub use diagnostic::{Diagnostic, Severity};
pub use registry::{Lint, LintRegistry};
pub use report::Report;
pub use rules::{arch_error_diagnostic, default_lints};
pub use target::{FleetSpec, LintTarget, ServingSpec, StrategyFacts};
