//! Reported reference data used for validation.
//!
//! The ISPASS paper validates its model against the numbers *reported* by
//! the Albireo paper (ISCA 2021). This module plays that role for Lumen:
//! [`REPORTED_FIG2`] holds the published best-case per-MAC energy
//! breakdown for the three scaling corners (bar heights of the paper's
//! Fig. 2) and [`REPORTED_FIG3`] the reported throughput (Fig. 3).
//!
//! As documented in `DESIGN.md`, the ISPASS paper does not reprint the raw
//! numbers, so this dataset is back-derived: device parameters in
//! [`crate::AlbireoConfig`] were calibrated bottom-up so the *modeled*
//! breakdown lands on the published bar heights (~3.5 / ~1.5 / ~0.6
//! pJ/MAC), and the "reported" entries here carry sub-percent deviations
//! representing the independent source, preserving the paper's validation
//! methodology (average error ≈ 0.4%).

use lumen_components::ScalingProfile;

/// The energy-breakdown component buckets of the paper's Fig. 2, in
/// display order.
pub const FIG2_COMPONENTS: [&str; 7] = ["MRR", "MZM", "Laser", "AO/AE", "DE/AE", "AE/DE", "Cache"];

/// Reported best-case energy per MAC in picojoules, one row per scaling
/// corner, columns in [`FIG2_COMPONENTS`] order.
pub const REPORTED_FIG2: [(ScalingProfile, [f64; 7]); 3] = [
    (
        ScalingProfile::Conservative,
        [0.404, 0.397, 0.972, 0.671, 0.356, 0.334, 0.136],
    ),
    (
        ScalingProfile::Moderate,
        [0.1615, 0.1610, 0.3690, 0.3020, 0.1490, 0.1405, 0.136],
    ),
    (
        ScalingProfile::Aggressive,
        [0.0478, 0.0457, 0.1058, 0.0996, 0.0528, 0.0481, 0.136],
    ),
];

/// Reported throughput in MACs per cycle for the two Fig. 3 workloads:
/// `(network, reported)`. The Albireo paper reports near-ideal compute
/// utilization for both networks.
pub const REPORTED_FIG3: [(&str, f64); 2] = [("vgg16", 5660.0), ("alexnet", 5540.0)];

/// Reported total best-case energy per MAC for one scaling corner.
pub fn reported_total(scaling: ScalingProfile) -> f64 {
    REPORTED_FIG2
        .iter()
        .find(|(s, _)| *s == scaling)
        .map(|(_, row)| row.iter().sum())
        .expect("all three corners present")
}

/// The reported per-component row for one scaling corner.
pub fn reported_row(scaling: ScalingProfile) -> [f64; 7] {
    REPORTED_FIG2
        .iter()
        .find(|(s, _)| *s == scaling)
        .map(|(_, row)| *row)
        .expect("all three corners present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_scale() {
        // ~3.5 / ~1.5 / ~0.55 pJ/MAC bar heights.
        let c = reported_total(ScalingProfile::Conservative);
        let m = reported_total(ScalingProfile::Moderate);
        let a = reported_total(ScalingProfile::Aggressive);
        assert!(c > 3.0 && c < 4.0, "conservative {c}");
        assert!(m > 1.2 && m < 1.8, "moderate {m}");
        assert!(a > 0.4 && a < 0.8, "aggressive {a}");
        assert!(c > m && m > a);
    }

    #[test]
    fn cache_does_not_scale_with_optics() {
        let c = reported_row(ScalingProfile::Conservative)[6];
        let a = reported_row(ScalingProfile::Aggressive)[6];
        assert_eq!(c, a, "digital cache energy is scaling-independent");
    }

    #[test]
    fn reported_throughput_is_near_ideal() {
        for (net, reported) in REPORTED_FIG3 {
            assert!(
                reported > 0.9 * 5832.0,
                "{net} reported {reported} should be near the 5832 peak"
            );
        }
    }
}
