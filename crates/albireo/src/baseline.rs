//! A digital-electrical baseline accelerator for photonic-vs-electronic
//! comparison.
//!
//! The paper motivates photonics by the energy of digital data movement
//! and MACs; this module builds the natural control: a DE-only systolic
//! array with the *same* peak parallelism, global buffer and DRAM as the
//! modeled Albireo, computing with conventional 8-bit digital MACs and no
//! cross-domain converters. Comparing the two isolates what the optical
//! domain actually buys (and costs) at each scaling corner.

use lumen_arch::{ArchBuilder, Architecture, Domain, Fanout};
use lumen_components::{DigitalMac, Dram, DramKind, NocLink, Sram};
use lumen_core::{MappingStrategy, System};
use lumen_units::Frequency;
use lumen_workload::{Dim, DimSet, TensorSet};
use std::sync::Arc;

/// Generator for the digital baseline.
///
/// # Examples
///
/// ```
/// use lumen_albireo::DigitalBaseline;
///
/// let system = DigitalBaseline::new().build_system();
/// assert_eq!(system.arch().peak_parallelism(), 5832);
/// ```
#[derive(Debug, Clone)]
pub struct DigitalBaseline {
    clusters: usize,
    lanes: usize,
    columns: usize,
    glb_mebibytes: usize,
    dram: DramKind,
    clock: Frequency,
    word_bits: u32,
}

impl DigitalBaseline {
    /// A baseline matched to the base Albireo: 8 clusters × 27 lanes × 27
    /// columns = 5832 MACs/cycle at 1 GHz (digital arrays clock lower than
    /// photonic symbol rates), with the same 4 MiB buffer and DDR4 DRAM.
    pub fn new() -> DigitalBaseline {
        DigitalBaseline {
            clusters: 8,
            lanes: 27,
            columns: 27,
            glb_mebibytes: 4,
            dram: DramKind::Ddr4,
            clock: Frequency::from_gigahertz(1.0),
            word_bits: 8,
        }
    }

    /// Peak MACs per cycle.
    pub fn peak_parallelism(&self) -> u64 {
        (self.clusters * self.lanes * self.columns) as u64
    }

    /// Builds the DE-only hierarchy: DRAM → global buffer → cluster
    /// scratchpads → a lanes × columns MAC array per cluster.
    pub fn build_arch(&self) -> Architecture {
        let dram = Dram::new(self.dram, self.word_bits);
        let glb_bits = self.glb_mebibytes as u64 * 1024 * 1024 * 8;
        let glb = Sram::new(glb_bits, 256)
            .with_banks(32)
            .with_energy_coefficients(4.0, 0.04);
        let spad = Sram::new(64 * 1024 * 8, 64); // 64 KiB per cluster
        let link = NocLink::new(self.word_bits, 2.0);
        let mac = DigitalMac::new(self.word_bits);

        ArchBuilder::new("digital-baseline", self.clock)
            .word_bits(self.word_bits)
            .storage("dram", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(dram.access_energy())
            .write_energy(dram.access_energy())
            .done()
            .storage("glb", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(glb.read_energy_per_bit() * self.word_bits as f64)
            .write_energy(glb.write_energy_per_bit() * self.word_bits as f64)
            .capacity_bits(glb_bits)
            .fanout(Fanout::new(self.clusters).allow(DimSet::from_dims(&[Dim::M, Dim::P])))
            .done()
            .storage("spad", Domain::DigitalElectrical, TensorSet::all())
            .read_energy(
                spad.read_energy_per_bit() * self.word_bits as f64 + link.transmit_energy(),
            )
            .write_energy(spad.write_energy_per_bit() * self.word_bits as f64)
            .capacity_bits(64 * 1024 * 8)
            .fanout(
                Fanout::new(self.lanes * self.columns).allow(DimSet::from_dims(&[
                    Dim::M,
                    Dim::C,
                    Dim::R,
                    Dim::S,
                    Dim::Q,
                ])),
            )
            .done()
            .compute("mac", Domain::DigitalElectrical, mac.mac_energy())
            .build()
            .expect("digital baseline is structurally valid")
    }

    /// Builds the system with a capacity-aware greedy dataflow (spatial
    /// packing, batch at the global buffer, weight loops at compute).
    ///
    /// The dataflow is a parameterless pure function, so the strategy is
    /// keyed on a version tag alone: every `DigitalBaseline` system
    /// shares one evaluation-cache fingerprint.
    pub fn build_system(&self) -> System {
        System::new(
            self.build_arch(),
            MappingStrategy::custom_keyed(
                lumen_workload::fnv1a(b"digital-baseline-dataflow-v1", &[]),
                Arc::new(baseline_mapping),
            ),
        )
    }
}

impl Default for DigitalBaseline {
    fn default() -> Self {
        DigitalBaseline::new()
    }
}

fn baseline_mapping(arch: &Architecture, layer: &lumen_workload::Layer) -> lumen_mapper::Mapping {
    use lumen_mapper::search::{greedy_spatial, TemporalPlan, DEFAULT_SPATIAL_PRIORITY};
    let (base, leftover) = greedy_spatial(arch, layer, &DEFAULT_SPATIAL_PRIORITY);
    let pe = arch.levels().len() - 1;
    // Capacity-aware cascade, most reuse first. The batch always sits at
    // the global buffer (so weights leave DRAM once per batch); the
    // scratchpad keeps as much of the weight working set as fits.
    let plans = [
        // Whole per-cluster weight slice resident in the scratchpad.
        TemporalPlan {
            assignments: vec![
                (1, vec![Dim::N]),
                (2, vec![Dim::P, Dim::Q]),
                (pe, vec![Dim::M, Dim::C, Dim::R, Dim::S]),
            ],
            default_level: 2,
        },
        // Only one filter window per lane resident; weights stream from
        // the global buffer per output position (classic weight-streaming
        // systolic behaviour).
        TemporalPlan {
            assignments: vec![
                (1, vec![Dim::N]),
                (2, vec![Dim::M, Dim::P, Dim::Q, Dim::C]),
                (pe, vec![Dim::R, Dim::S]),
            ],
            default_level: 2,
        },
        // Activation-heavy layers: keep a row strip (not the full image)
        // in the global buffer, weights fully resident.
        TemporalPlan {
            assignments: vec![
                (1, vec![Dim::N, Dim::P]),
                (2, vec![Dim::M, Dim::Q, Dim::C]),
                (pe, vec![Dim::R, Dim::S]),
            ],
            default_level: 2,
        },
        // Large layers: tile output channels at the global buffer so only
        // an M-slice of the weights is resident at a time.
        TemporalPlan {
            assignments: vec![
                (1, vec![Dim::M, Dim::N, Dim::P]),
                (2, vec![Dim::Q, Dim::C]),
                (pe, vec![Dim::R, Dim::S]),
            ],
            default_level: 2,
        },
        // Everything streamed from the global buffer.
        TemporalPlan::all_at(1),
    ];
    let mut last = None;
    for plan in plans {
        let mapping = plan.apply(base.clone(), &leftover);
        if lumen_mapper::analyze(arch, layer, &mapping).is_ok() {
            return mapping;
        }
        last = Some(mapping);
    }
    last.expect("plan cascade is nonempty")
}

/// One row of the photonic-vs-digital comparison.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Workload name.
    pub network: String,
    /// Digital-baseline energy per MAC (pJ).
    pub digital_pj_per_mac: f64,
    /// Photonic (Albireo) energy per MAC at the given corner (pJ).
    pub photonic_pj_per_mac: f64,
    /// Digital throughput (MACs/cycle × clock), in GMAC/s.
    pub digital_gmacs: f64,
    /// Photonic throughput in GMAC/s.
    pub photonic_gmacs: f64,
}

impl BaselineComparison {
    /// Photonic energy advantage (digital / photonic; >1 favors photonics).
    pub fn energy_advantage(&self) -> f64 {
        self.digital_pj_per_mac / self.photonic_pj_per_mac
    }

    /// Photonic throughput advantage.
    pub fn throughput_advantage(&self) -> f64 {
        self.photonic_gmacs / self.digital_gmacs
    }
}

/// Compares full-system (accelerator + DRAM) energy and throughput of the
/// digital baseline against Albireo at one scaling corner, per workload.
pub fn compare_with_digital(
    scaling: crate::ScalingProfile,
) -> Result<Vec<BaselineComparison>, lumen_core::SystemError> {
    use lumen_core::NetworkOptions;
    use lumen_workload::networks;

    let digital = DigitalBaseline::new().build_system();
    let photonic = crate::AlbireoConfig::new(scaling).build_system();
    let mut rows = Vec::new();
    for name in networks::NAMES {
        let net = networks::by_name(name).expect("built-in network");
        let d = digital.evaluate_network(&net, &NetworkOptions::baseline())?;
        let p = photonic.evaluate_network(&net, &NetworkOptions::baseline())?;
        rows.push(BaselineComparison {
            network: name.to_string(),
            digital_pj_per_mac: d.energy_per_mac().picojoules(),
            photonic_pj_per_mac: p.energy_per_mac().picojoules(),
            digital_gmacs: d.throughput_macs_per_cycle() * digital.arch().clock().gigahertz(),
            photonic_gmacs: p.throughput_macs_per_cycle() * photonic.arch().clock().gigahertz(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScalingProfile;

    #[test]
    fn baseline_matches_albireo_peak() {
        let baseline = DigitalBaseline::new();
        assert_eq!(baseline.peak_parallelism(), 5832);
        assert_eq!(baseline.build_arch().peak_parallelism(), 5832);
    }

    #[test]
    fn baseline_has_no_converters() {
        let arch = DigitalBaseline::new().build_arch();
        assert!(arch.converter_levels().is_empty());
        assert!(arch
            .levels()
            .iter()
            .all(|l| l.domain() == Domain::DigitalElectrical));
    }

    #[test]
    fn baseline_evaluates_all_networks() {
        use lumen_core::NetworkOptions;
        use lumen_workload::networks;
        let system = DigitalBaseline::new().build_system();
        for name in networks::NAMES {
            let net = networks::by_name(name).unwrap();
            let eval = system
                .evaluate_network(&net, &NetworkOptions::baseline())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(eval.energy.total().millijoules() > 0.0);
        }
    }

    #[test]
    fn aggressive_photonics_beat_digital_on_energy_for_convs() {
        let rows = compare_with_digital(ScalingProfile::Aggressive).unwrap();
        let vgg = rows.iter().find(|r| r.network == "vgg16").unwrap();
        // Conv-dominated workloads: the scaled photonic system wins on
        // energy per MAC (the paper's motivating claim).
        assert!(
            vgg.energy_advantage() > 1.0,
            "photonic advantage {:.2}x",
            vgg.energy_advantage()
        );
        // And on raw throughput: 5 GHz symbol rate vs 1 GHz digital clock.
        assert!(vgg.throughput_advantage() > 1.0);
    }

    #[test]
    fn digital_baseline_is_utilization_robust() {
        // The flexible MAC array tolerates AlexNet's shapes far better
        // than the photonic fabric: its utilization advantage shows up as
        // a smaller throughput edge for photonics on AlexNet than VGG.
        let rows = compare_with_digital(ScalingProfile::Aggressive).unwrap();
        let vgg = rows.iter().find(|r| r.network == "vgg16").unwrap();
        let alex = rows.iter().find(|r| r.network == "alexnet").unwrap();
        assert!(alex.throughput_advantage() < vgg.throughput_advantage());
    }
}
