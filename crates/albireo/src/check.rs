//! Static pre-flight checks over the case study's own inventory.
//!
//! The paper's figures compare the photonic Albireo against the digital
//! baseline across every built-in network and both device-scaling
//! corners; this module lints exactly that matrix, so a misconfigured
//! corner or a malformed built-in network fails `lumen check` (and the
//! CI `check` job) before it can skew a figure.

use crate::{AlbireoConfig, DigitalBaseline, ScalingProfile};
use lumen_core::{strategy_facts, System};
use lumen_lint::{LintConfig, LintRegistry, LintTarget, Report};
use lumen_workload::{networks, Network};

/// Built-in workloads the check matrix covers: the full figure inventory
/// plus the decode-phase step (which has its own study and therefore
/// stays out of [`networks::NAMES`]).
pub fn check_networks() -> Vec<Network> {
    let mut nets: Vec<Network> = networks::NAMES
        .iter()
        .map(|name| networks::by_name(name).expect("inventory name resolves"))
        .collect();
    nets.push(networks::by_name("gpt2-small-decode").expect("decode alias resolves"));
    nets
}

/// Lints one system × network pair: architecture, strategy facts and
/// the network, under the default rule set.
pub fn check_system(system: &System, network: &Network) -> Report {
    check_system_with(system, network, &LintConfig::default())
}

/// [`check_system`] with a caller-supplied allow/deny configuration
/// (the CLI's `--allow`/`--deny` flags flow through here).
pub fn check_system_with(system: &System, network: &Network, config: &LintConfig) -> Report {
    let facts = strategy_facts(system.strategy());
    let target = LintTarget::new()
        .with_arch(system.arch())
        .with_strategy(&facts)
        .with_network(network);
    LintRegistry::with_default_lints().run_with(&target, config)
}

/// Lints one scaling corner: the Albireo system at `scaling` and the
/// digital baseline, each against every [`check_networks`] workload.
pub fn check_corner(scaling: ScalingProfile) -> Report {
    let photonic = AlbireoConfig::new(scaling).build_system();
    let digital = DigitalBaseline::new().build_system();
    let mut report = Report::default();
    for network in check_networks() {
        for system in [&photonic, &digital] {
            report.merge(check_system(system, &network));
        }
    }
    report
}

/// Lints the whole matrix: both scaling corners × both system families
/// × every built-in workload.
pub fn check_all() -> Report {
    let mut report = Report::default();
    for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
        report.merge(check_corner(scaling));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_corners_lint_completely_clean() {
        // Not just error-free: warning-free, so the CI `check` job can
        // run with `--deny warnings` and any new finding is a regression.
        for scaling in [ScalingProfile::Conservative, ScalingProfile::Aggressive] {
            let report = check_corner(scaling);
            assert!(report.is_empty(), "{scaling:?}:\n{report}");
        }
    }

    #[test]
    fn full_matrix_is_clean() {
        let report = check_all();
        assert!(report.is_clean() && report.is_empty(), "{report}");
    }

    #[test]
    fn check_networks_covers_the_inventory_plus_decode() {
        let nets = check_networks();
        assert_eq!(nets.len(), networks::NAMES.len() + 1);
    }
}
