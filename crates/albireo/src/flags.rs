//! Typed flag parsing for the `lumen serving` and `lumen fleet`
//! subcommands.
//!
//! The CLI binary used to hand-validate flag combinations with ad-hoc
//! string checks ("--shared-prefix needs --kv-page", and so on),
//! re-deriving rules the serving layer already owns. This module lowers
//! every flag combination to one [`ServingScenarioBuilder`] run, so
//! contradictions come back as the serving layer's own typed
//! [`ServingError`]s, wrapped in [`FlagError`] next to the purely
//! syntactic failures (unparseable numbers, unknown names). It lives in
//! the library — not the binary — so the flag-combination matrix is
//! testable without spawning processes.
//!
//! [`ServingScenarioBuilder`]: lumen_workload::ServingScenarioBuilder

use crate::experiments;
use lumen_workload::{AdmissionPolicy, ArrivalProcess, FleetRouter, ServingError, ServingScenario};
use std::fmt;

/// What a `lumen serving` invocation resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingPlan {
    /// No serving flags: the legacy closed-loop capacity sweep over the
    /// three mixes.
    ClosedLoopStudy,
    /// `--arrival` / `--policy`: one open-loop SLO scenario.
    Scenario(ServingScenario),
    /// `--kv-page [--shared-prefix]`: the paged-residency study, with
    /// the scenario carrying the page table and shared prefix.
    Paged(ServingScenario),
}

/// A `lumen fleet` invocation: the fleet shape plus, in search mode,
/// the SLO to plan capacity against.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Instances to provision (`--instances`, default
    /// [`experiments::FLEET_INSTANCES`]).
    pub instances: usize,
    /// Routing discipline (`--router`, default round-robin).
    pub router: FleetRouter,
    /// The offered arrival stream (`--arrival`, default
    /// [`experiments::fleet_arrival`]).
    pub arrival: ArrivalProcess,
    /// The p99 TTFT target in milliseconds when `--slo p99-ttft:MS`
    /// asked for search mode instead of a fixed-size plan.
    pub slo_p99_ttft_ms: Option<f64>,
}

/// Why a serving/fleet flag set was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FlagError {
    /// A flag's value failed to parse as the expected shape.
    InvalidValue {
        /// The flag, e.g. `--kv-page`.
        flag: &'static str,
        /// What the flag wanted, e.g. "a token count".
        expected: &'static str,
        /// What it got.
        value: String,
    },
    /// An arrival process name outside the supported set.
    UnknownArrival(String),
    /// An admission policy name outside the supported set.
    UnknownPolicy(String),
    /// A router name outside the supported set.
    UnknownRouter(String),
    /// An SLO spec that is not `p99-ttft:<ms>`.
    UnknownSlo(String),
    /// `--kv-page` combined with `--arrival` or `--policy`: the paged
    /// study is closed-loop by construction.
    PagedOpenLoop,
    /// The combination parsed but failed scenario validation.
    Scenario(ServingError),
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::InvalidValue {
                flag,
                expected,
                value,
            } => {
                write!(f, "{flag} expects {expected}, got `{value}`")
            }
            FlagError::UnknownArrival(spec) => write!(
                f,
                "unknown arrival process `{spec}` \
                 (expected closed-loop, poisson[:rate], bursty or diurnal)"
            ),
            FlagError::UnknownPolicy(spec) => write!(
                f,
                "unknown admission policy `{spec}` (expected fifo, shortest-prompt or slo)"
            ),
            FlagError::UnknownRouter(spec) => write!(
                f,
                "unknown router `{spec}` \
                 (expected round-robin, join-shortest-queue or least-loaded-kv)"
            ),
            FlagError::UnknownSlo(spec) => {
                write!(f, "unknown slo `{spec}` (expected p99-ttft:<ms>)")
            }
            FlagError::PagedOpenLoop => write!(
                f,
                "--kv-page runs the closed-loop paged study; drop --arrival/--policy"
            ),
            FlagError::Scenario(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlagError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServingError> for FlagError {
    fn from(e: ServingError) -> FlagError {
        FlagError::Scenario(e)
    }
}

/// The value following `flag`, when present.
fn option_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_count(flag: &'static str, expected: &'static str, raw: &str) -> Result<usize, FlagError> {
    raw.parse().map_err(|_| FlagError::InvalidValue {
        flag,
        expected,
        value: raw.to_string(),
    })
}

/// Parses `--arrival`: a named process, with `poisson` taking an
/// optional `:rate` suffix. Seeds match the `serving_slo_study`
/// scenarios so CLI runs land on the study's golden-pinned traffic.
///
/// # Errors
///
/// [`FlagError::UnknownArrival`] for an unrecognized name,
/// [`FlagError::InvalidValue`] for an unparseable rate, and the typed
/// [`ServingError`] for a non-finite or negative one.
pub fn parse_arrival(spec: &str) -> Result<ArrivalProcess, FlagError> {
    match spec {
        "closed-loop" => Ok(ArrivalProcess::ClosedLoop),
        "bursty" => Ok(ArrivalProcess::bursty(0.02, 48, 6, 0xB125_7EED)),
        "diurnal" => Ok(ArrivalProcess::diurnal(0.05, 0.5, 96, 0xFEED_F00D)),
        _ => {
            let rate = match spec.strip_prefix("poisson") {
                Some("") => 0.5,
                Some(rest) => {
                    let raw = rest
                        .strip_prefix(':')
                        .ok_or_else(|| FlagError::UnknownArrival(spec.to_string()))?;
                    raw.parse::<f64>().map_err(|_| FlagError::InvalidValue {
                        flag: "--arrival poisson",
                        expected: "a rate",
                        value: raw.to_string(),
                    })?
                }
                None => return Err(FlagError::UnknownArrival(spec.to_string())),
            };
            Ok(ArrivalProcess::try_poisson(rate, 0xFEED_F00D)?)
        }
    }
}

/// Parses `--policy`: which queued request a free decode slot admits.
///
/// # Errors
///
/// [`FlagError::UnknownPolicy`] for an unrecognized name.
pub fn parse_policy(spec: &str) -> Result<AdmissionPolicy, FlagError> {
    match spec {
        "fifo" => Ok(AdmissionPolicy::Fifo),
        "shortest-prompt" => Ok(AdmissionPolicy::ShortestPrompt),
        "slo" => Ok(experiments::slo_policy()),
        _ => Err(FlagError::UnknownPolicy(spec.to_string())),
    }
}

/// Parses `--router`: how the fleet assigns arriving requests.
///
/// # Errors
///
/// [`FlagError::UnknownRouter`] for an unrecognized name.
pub fn parse_router(spec: &str) -> Result<FleetRouter, FlagError> {
    match spec {
        "round-robin" => Ok(FleetRouter::RoundRobin),
        "join-shortest-queue" | "jsq" => Ok(FleetRouter::JoinShortestQueue),
        "least-loaded-kv" | "llk" => Ok(FleetRouter::LeastLoadedKv),
        _ => Err(FlagError::UnknownRouter(spec.to_string())),
    }
}

/// Parses `--slo p99-ttft:MS` into the millisecond target.
///
/// # Errors
///
/// [`FlagError::UnknownSlo`] for any other metric name and
/// [`FlagError::InvalidValue`] for a non-positive or unparseable
/// target.
pub fn parse_slo(spec: &str) -> Result<f64, FlagError> {
    let raw = spec
        .strip_prefix("p99-ttft:")
        .ok_or_else(|| FlagError::UnknownSlo(spec.to_string()))?;
    let ms: f64 = raw.parse().map_err(|_| FlagError::InvalidValue {
        flag: "--slo p99-ttft",
        expected: "milliseconds",
        value: raw.to_string(),
    })?;
    if !ms.is_finite() || ms <= 0.0 {
        return Err(FlagError::InvalidValue {
            flag: "--slo p99-ttft",
            expected: "a positive millisecond target",
            value: raw.to_string(),
        });
    }
    Ok(ms)
}

/// Resolves a `lumen serving` argument list to a plan. Every flag
/// combination that describes a scenario is lowered through
/// [`experiments::slo_scenario`]'s builder knobs in one place;
/// mutually-exclusive combinations come back as typed errors instead of
/// hand-rolled strings.
///
/// # Errors
///
/// [`FlagError::PagedOpenLoop`] for `--kv-page` with
/// `--arrival`/`--policy`; [`FlagError::Scenario`] for combinations the
/// [`ServingScenario`] builder rejects (zero page, shared prefix
/// without pages or longer than the shortest prompt); the parse errors
/// of [`parse_arrival`] and [`parse_policy`].
pub fn parse_serving_flags(args: &[String]) -> Result<ServingPlan, FlagError> {
    let arrival_flag = option_value(args, "--arrival");
    let policy_flag = option_value(args, "--policy");
    let page_flag = option_value(args, "--kv-page");
    let shared_flag = option_value(args, "--shared-prefix");

    if arrival_flag.is_none()
        && policy_flag.is_none()
        && page_flag.is_none()
        && shared_flag.is_none()
    {
        return Ok(ServingPlan::ClosedLoopStudy);
    }
    if page_flag.is_some() && (arrival_flag.is_some() || policy_flag.is_some()) {
        return Err(FlagError::PagedOpenLoop);
    }

    let shared = match shared_flag {
        None => 0,
        Some(raw) => parse_count("--shared-prefix", "a token count", raw)?,
    };
    if let Some(raw) = page_flag {
        let page = parse_count("--kv-page", "a token count", raw)?;
        return Ok(ServingPlan::Paged(experiments::try_paged_slo_scenario(
            page, shared,
        )?));
    }
    let arrival = parse_arrival(arrival_flag.unwrap_or("closed-loop"))?;
    let policy = parse_policy(policy_flag.unwrap_or("fifo"))?;
    // `--shared-prefix` without `--kv-page`: run the same builder the
    // paged path uses so the rejection is the serving layer's typed
    // SharedPrefixRequiresPagedKv, not a bespoke string.
    if shared > 0 {
        let rejected = ServingScenario::builder(experiments::slo_mix(), experiments::SLO_CAPACITY)
            .kv_bucket(experiments::SERVING_KV_BUCKET)
            .shared_prefix(shared)
            .arrival(arrival)
            .policy(policy)
            .prefill_chunk(experiments::SLO_PREFILL_CHUNK)
            .build()
            .expect_err("a shared prefix without a paged layout cannot validate");
        return Err(rejected.into());
    }
    Ok(ServingPlan::Scenario(experiments::slo_scenario(
        arrival, policy,
    )))
}

/// Resolves a `lumen fleet` argument list to a plan.
///
/// # Errors
///
/// [`FlagError::Scenario`] with [`ServingError::EmptyFleet`] for
/// `--instances 0`; the parse errors of [`parse_router`],
/// [`parse_arrival`] and [`parse_slo`]; [`FlagError::InvalidValue`] for
/// an unparseable instance count.
pub fn parse_fleet_flags(args: &[String]) -> Result<FleetPlan, FlagError> {
    let instances = match option_value(args, "--instances") {
        None => experiments::FLEET_INSTANCES,
        Some(raw) => parse_count("--instances", "an instance count", raw)?,
    };
    if instances == 0 {
        return Err(ServingError::EmptyFleet.into());
    }
    let router = match option_value(args, "--router") {
        None => FleetRouter::RoundRobin,
        Some(raw) => parse_router(raw)?,
    };
    let arrival = match option_value(args, "--arrival") {
        None => experiments::fleet_arrival(),
        Some(raw) => parse_arrival(raw)?,
    };
    let slo_p99_ttft_ms = option_value(args, "--slo").map(parse_slo).transpose()?;
    Ok(FleetPlan {
        instances,
        router,
        arrival,
        slo_p99_ttft_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn no_flags_is_the_legacy_study() {
        assert_eq!(
            parse_serving_flags(&args(&["serving"])).unwrap(),
            ServingPlan::ClosedLoopStudy
        );
    }

    #[test]
    fn arrival_and_policy_build_the_slo_scenario() {
        let plan = parse_serving_flags(&args(&[
            "serving",
            "--arrival",
            "poisson:0.5",
            "--policy",
            "slo",
        ]))
        .unwrap();
        let ServingPlan::Scenario(scenario) = plan else {
            panic!("expected a scenario plan");
        };
        assert_eq!(
            scenario,
            experiments::slo_scenario(
                ArrivalProcess::poisson(0.5, 0xFEED_F00D),
                experiments::slo_policy()
            )
        );
    }

    #[test]
    fn kv_page_builds_the_paged_scenario() {
        let plan = parse_serving_flags(&args(&[
            "serving",
            "--kv-page",
            "16",
            "--shared-prefix",
            "40",
        ]))
        .unwrap();
        let ServingPlan::Paged(scenario) = plan else {
            panic!("expected a paged plan");
        };
        assert_eq!(scenario.kv_page(), Some(16));
        assert_eq!(scenario.shared_prefix(), 40);
    }

    #[test]
    fn invalid_combinations_are_typed() {
        assert_eq!(
            parse_serving_flags(&args(&["serving", "--kv-page", "16", "--policy", "slo"])),
            Err(FlagError::PagedOpenLoop)
        );
        assert_eq!(
            parse_serving_flags(&args(&["serving", "--shared-prefix", "40"])),
            Err(FlagError::Scenario(
                ServingError::SharedPrefixRequiresPagedKv
            ))
        );
        assert_eq!(
            parse_serving_flags(&args(&["serving", "--kv-page", "0"])),
            Err(FlagError::Scenario(ServingError::ZeroKvPage))
        );
        assert!(matches!(
            parse_serving_flags(&args(&[
                "serving",
                "--kv-page",
                "16",
                "--shared-prefix",
                "999"
            ])),
            Err(FlagError::Scenario(
                ServingError::SharedPrefixExceedsPrompt { .. }
            ))
        ));
    }

    #[test]
    fn fleet_flags_resolve_with_defaults() {
        let plan = parse_fleet_flags(&args(&["fleet"])).unwrap();
        assert_eq!(plan.instances, experiments::FLEET_INSTANCES);
        assert_eq!(plan.router, FleetRouter::RoundRobin);
        assert_eq!(plan.arrival, experiments::fleet_arrival());
        assert_eq!(plan.slo_p99_ttft_ms, None);
    }

    #[test]
    fn fleet_flags_parse_search_mode() {
        let plan = parse_fleet_flags(&args(&[
            "fleet",
            "--instances",
            "2",
            "--router",
            "jsq",
            "--arrival",
            "bursty",
            "--slo",
            "p99-ttft:250",
        ]))
        .unwrap();
        assert_eq!(plan.instances, 2);
        assert_eq!(plan.router, FleetRouter::JoinShortestQueue);
        assert_eq!(plan.slo_p99_ttft_ms, Some(250.0));
    }

    #[test]
    fn fleet_rejections_are_typed() {
        assert_eq!(
            parse_fleet_flags(&args(&["fleet", "--instances", "0"])),
            Err(FlagError::Scenario(ServingError::EmptyFleet))
        );
        assert_eq!(
            parse_fleet_flags(&args(&["fleet", "--router", "random"])),
            Err(FlagError::UnknownRouter("random".into()))
        );
        assert_eq!(
            parse_fleet_flags(&args(&["fleet", "--slo", "p50-tbt:10"])),
            Err(FlagError::UnknownSlo("p50-tbt:10".into()))
        );
        assert_eq!(
            parse_fleet_flags(&args(&["fleet", "--slo", "p99-ttft:-5"])),
            Err(FlagError::InvalidValue {
                flag: "--slo p99-ttft",
                expected: "a positive millisecond target",
                value: "-5".into(),
            })
        );
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let cases = vec![
            FlagError::InvalidValue {
                flag: "--kv-page",
                expected: "a token count",
                value: "x".into(),
            },
            FlagError::UnknownArrival("steady".into()),
            FlagError::UnknownPolicy("lifo".into()),
            FlagError::UnknownRouter("random".into()),
            FlagError::UnknownSlo("p50".into()),
            FlagError::PagedOpenLoop,
            FlagError::Scenario(ServingError::EmptyFleet),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(
                !first.is_uppercase(),
                "message should start lowercase or with a flag: {msg}"
            );
        }
    }
}
