//! # lumen-albireo
//!
//! The paper's case study: an architecture-level model of the **Albireo**
//! photonic CNN accelerator (Shiflett et al., ISCA 2021) built on the
//! Lumen modeling stack, plus drivers that regenerate every figure of the
//! ISPASS 2024 evaluation.
//!
//! ## The modeled system
//!
//! Albireo moves data through three domains (Fig. 1 of the paper):
//! digital-electrical DRAM + global buffer, analog-electrical DACs and
//! accumulators, and an analog-optical multiply fabric (Mach-Zehnder input
//! modulators, star-coupler broadcast, microring weight banks,
//! photodiodes). [`AlbireoConfig`] generates the hierarchy with three
//! device-scaling corners ([`ScalingProfile`]) and the paper's Fig. 5
//! reuse knobs:
//!
//! * `weight_reuse` (**WR**) — optical multipliers sharing one converted
//!   weight (the `AE/AO Multiply*` block),
//! * `input_reuse` (**IR**) — multipliers sharing one modulated input
//!   (the `AO*` block),
//! * `output_reuse` (**OR**) — analog partial sums merged before one
//!   detector + ADC chain (the `AE*` block).
//!
//! ## Experiments
//!
//! | paper artifact | function |
//! |---|---|
//! | Fig. 2 energy-breakdown validation | [`experiments::fig2_energy_breakdown`] |
//! | Fig. 3 throughput (ideal/reported/modeled) | [`experiments::fig3_throughput`] |
//! | Fig. 4 full-system memory exploration | [`experiments::fig4_memory_exploration`] |
//! | Fig. 5 reuse-factor exploration | [`experiments::fig5_reuse_exploration`] |
//! | Transformer study (beyond the paper) | [`experiments::transformer_study`] |
//! | Decode study (beyond the paper) | [`experiments::decode_study`] |
//!
//! # Examples
//!
//! ```
//! use lumen_albireo::{AlbireoConfig, ScalingProfile};
//!
//! let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
//! let layer = lumen_albireo::reference_layer();
//! let eval = system.evaluate_layer(&layer).unwrap();
//! // Best-case conservative Albireo lands near 3.5 pJ/MAC.
//! let pj = eval.energy_per_mac().picojoules();
//! assert!(pj > 2.0 && pj < 5.0, "got {pj}");
//! ```

mod baseline;
pub mod check;
mod config;
mod dataflow;
pub mod experiments;
pub mod flags;
pub mod reference;

pub use baseline::{compare_with_digital, BaselineComparison, DigitalBaseline};
pub use config::{AlbireoConfig, WeightReuse};
pub use dataflow::albireo_mapping;
pub use lumen_components::ScalingProfile;

use lumen_workload::Layer;

/// The best-case steady-state layer used for per-MAC energy validation
/// (Fig. 2): a unit-stride 3×3 convolution whose dimensions exactly fill
/// the base Albireo's spatial fabric, so utilization is 1.0 and the
/// per-MAC figures are the architecture's intrinsic best case.
pub fn reference_layer() -> Layer {
    // M = clusters(8) x PCUs(9) = 72 lanes x 8 temporal = 576.
    // C = accumulation(3) x 32 temporal = 96.
    // Q = q-window(3) x 75 temporal = 225; R = S = 3 fill the kernel fanout.
    Layer::conv2d("best-case-conv", 1, 576, 96, 8, 225, 3, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_layer_fully_utilizes_base_albireo() {
        let system = AlbireoConfig::new(ScalingProfile::Conservative).build_system();
        let eval = system.evaluate_layer(&reference_layer()).unwrap();
        assert!(
            (eval.analysis.utilization - 1.0).abs() < 1e-9,
            "utilization {}",
            eval.analysis.utilization
        );
        assert!((eval.analysis.padding_factor - 1.0).abs() < 1e-9);
    }
}
