//! The Albireo dataflow: how layers map onto the photonic fabric.
//!
//! Spatial assignment mirrors the hardware wiring:
//!
//! * clusters parallelize output channels (then output rows),
//! * the weight-sharing column window parallelizes `Q` (stride-1 only),
//! * PCU lanes parallelize more output channels (input broadcast),
//! * analog accumulation parallelizes input channels,
//! * the 3×3 kernel fabric parallelizes `R`/`S`.
//!
//! Temporal placement is capacity-aware: the preferred plan keeps a whole
//! layer's working set (weights + one image's activations) resident in
//! the global buffer with the batch loop above it — weights are then
//! fetched from DRAM once per *batch*, which is exactly the paper's
//! batching lever. If the working set does not fit (VGG-scale layers),
//! progressively more loops move up to the global buffer.

use lumen_arch::Architecture;
use lumen_mapper::{analyze, Mapping, MappingError};
use lumen_workload::{Dim, Layer};

/// Builds the Albireo mapping for `layer`.
///
/// `clusters`, `qwin`, `ir`, `or` and `kernel` must match the fan-outs of
/// `arch` (the [`crate::AlbireoConfig`] wires this up).
///
/// The returned mapping is always structurally legal; if even the most
/// conservative temporal plan violates a capacity bound, that plan is
/// returned anyway and evaluation surfaces the capacity error.
pub fn albireo_mapping(
    arch: &Architecture,
    layer: &Layer,
    clusters: usize,
    qwin: usize,
    ir: usize,
    or: usize,
    kernel: (usize, usize),
) -> Mapping {
    let glb = arch.level_index("glb").expect("albireo has a glb level");
    let wdac = arch
        .level_index("weight-dac")
        .expect("albireo has a weight dac");
    let mzm = arch
        .level_index("input-mzm")
        .expect("albireo has an input modulator");
    let pd = arch
        .level_index("output-pd")
        .expect("albireo has a photodiode");
    let star = arch
        .level_index("star-coupler")
        .expect("albireo has a star coupler");
    let pe = arch.levels().len() - 1;

    let shape = layer.shape();
    let (m, c, p, q) = (shape[Dim::M], shape[Dim::C], shape[Dim::P], shape[Dim::Q]);
    let (r, s, n) = (shape[Dim::R], shape[Dim::S], shape[Dim::N]);

    // --- Spatial assignment (hardware wiring) ---
    // Clusters can parallelize output channels or output rows; choose the
    // split that minimizes ceil-padding over the M x P subspace.
    let (m_clusters, p_clusters) = best_cluster_split(clusters, m, p, ir);
    let q_window = if layer.is_unit_stride() {
        q.min(qwin)
    } else {
        1
    };
    let m_pcu = m.div_ceil(m_clusters).min(ir);
    let c_accum = c.min(or);
    let r_kernel = r.min(kernel.0);
    let s_kernel = s.min(kernel.1);
    // 1x1 / FC shapes leave kernel lanes idle; one row of the fabric (3
    // lanes) can be repurposed as extra analog input-channel reduction,
    // but the column structure prevents using the rest.
    let kernel_spare = (kernel.0 * kernel.1) / (r_kernel * s_kernel);
    let c_kernel = c.div_ceil(c_accum).min(kernel_spare).clamp(1, 3);

    let mut base = Mapping::new(arch.levels().len());
    base.push_spatial(glb, Dim::M, m_clusters);
    base.push_spatial(glb, Dim::P, p_clusters);
    base.push_spatial(wdac, Dim::Q, q_window);
    base.push_spatial(mzm, Dim::M, m_pcu);
    base.push_spatial(pd, Dim::C, c_accum);
    base.push_spatial(star, Dim::R, r_kernel);
    base.push_spatial(star, Dim::S, s_kernel);
    base.push_spatial(star, Dim::C, c_kernel);

    // --- Temporal leftovers ---
    let left = |total: usize, spatial: usize| total.div_ceil(spatial);
    let m_left = left(m, m_clusters * m_pcu);
    let c_left = left(c, c_accum * c_kernel);
    let p_left = left(p, p_clusters);
    let q_left = left(q, q_window);
    let r_left = left(r, r_kernel);
    let s_left = left(s, s_kernel);

    // Plans, most reuse first. Each entry: (dims at glb, dims at pe),
    // outermost-first within each level.
    type PlanDims<'a> = &'a [(Dim, usize)];
    let plans: [(PlanDims<'_>, PlanDims<'_>); 4] = [
        // A: whole layer resident in glb; batch above -> weights from
        // DRAM once per batch.
        (
            &[(Dim::N, n)],
            &[
                (Dim::M, m_left),
                (Dim::P, p_left),
                (Dim::Q, q_left),
                (Dim::C, c_left),
                (Dim::R, r_left),
                (Dim::S, s_left),
            ],
        ),
        // B: output channels tiled at glb (weight tiles resident).
        (
            &[(Dim::N, n), (Dim::M, m_left)],
            &[
                (Dim::P, p_left),
                (Dim::Q, q_left),
                (Dim::C, c_left),
                (Dim::R, r_left),
                (Dim::S, s_left),
            ],
        ),
        // C: activations also tiled at glb.
        (
            &[
                (Dim::N, n),
                (Dim::M, m_left),
                (Dim::P, p_left),
                (Dim::Q, q_left),
            ],
            &[(Dim::C, c_left), (Dim::R, r_left), (Dim::S, s_left)],
        ),
        // D: everything streamed (always fits).
        (
            &[
                (Dim::N, n),
                (Dim::M, m_left),
                (Dim::P, p_left),
                (Dim::Q, q_left),
                (Dim::C, c_left),
                (Dim::R, r_left),
                (Dim::S, s_left),
            ],
            &[],
        ),
    ];

    let mut last = None;
    for (glb_dims, pe_dims) in plans {
        let mut mapping = base.clone();
        for &(d, bound) in glb_dims {
            mapping.push_temporal(glb, d, bound);
        }
        for &(d, bound) in pe_dims {
            mapping.push_temporal(pe, d, bound);
        }
        match analyze(arch, layer, &mapping) {
            Ok(_) => return mapping,
            Err(MappingError::CapacityExceeded { .. }) => {
                last = Some(mapping);
                continue;
            }
            // Any other error is structural and will not improve with a
            // different temporal plan; surface it via evaluation.
            Err(_) => return mapping,
        }
    }
    last.expect("plan list is nonempty")
}

/// Chooses how many clusters parallelize `M` vs `P`, minimizing the
/// ceil-padding over the M×P subspace (PCU lanes downstream also take M).
fn best_cluster_split(clusters: usize, m: usize, p: usize, ir: usize) -> (usize, usize) {
    // Prefer M-heavy splits on ties: output-channel clusters multicast
    // inputs and keep the sliding window wide, both of which save
    // conversion energy.
    let mut best = (m.min(clusters), 1);
    let mut best_waste = f64::INFINITY;
    let mut m_c = clusters;
    loop {
        let p_c = (clusters / m_c).min(p);
        let m_spatial = m_c * m.div_ceil(m_c).min(ir);
        let pad_m = (m.div_ceil(m_spatial) * m_spatial) as f64 / m as f64;
        let pad_p = (p.div_ceil(p_c) * p_c) as f64 / p as f64;
        let waste = pad_m * pad_p;
        if m_c <= m && waste < best_waste - 1e-12 {
            best_waste = waste;
            best = (m_c, p_c);
        }
        if m_c == 1 {
            break;
        }
        m_c /= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlbireoConfig, ScalingProfile};
    use lumen_workload::{networks, TensorKind};

    fn arch() -> Architecture {
        AlbireoConfig::new(ScalingProfile::Conservative).build_arch()
    }

    fn map(layer: &Layer) -> (Architecture, Mapping) {
        let a = arch();
        let m = albireo_mapping(&a, layer, 8, 3, 9, 3, (3, 3));
        (a, m)
    }

    #[test]
    fn maps_every_layer_of_all_networks() {
        let a = arch();
        for net in [networks::alexnet(), networks::vgg16(), networks::resnet18()] {
            for layer in net.layers() {
                let m = albireo_mapping(&a, layer, 8, 3, 9, 3, (3, 3));
                let analysis = analyze(&a, layer, &m)
                    .unwrap_or_else(|e| panic!("layer {} failed: {e}", layer.name()));
                assert_eq!(analysis.macs, layer.macs());
            }
        }
    }

    #[test]
    fn maps_every_layer_of_all_transformers() {
        let a = arch();
        for net in [
            networks::bert_base(),
            networks::gpt2_small(),
            networks::vit_b16(),
        ] {
            for layer in net.layers() {
                let m = albireo_mapping(&a, layer, 8, 3, 9, 3, (3, 3));
                let analysis = analyze(&a, layer, &m)
                    .unwrap_or_else(|e| panic!("layer {} failed: {e}", layer.name()));
                assert_eq!(analysis.macs, layer.macs());
            }
        }
    }

    #[test]
    fn matmul_layer_underutilizes_like_fc() {
        // A BERT-shaped projection matmul idles the kernel fabric and the
        // Q window, like FC layers: the photonic fabric's weakness on
        // GEMM-shaped work.
        let mm = Layer::matmul("proj", 1, 768, 768, 128);
        let (a, m) = map(&mm);
        let analysis = analyze(&a, &mm, &m).unwrap();
        assert!(
            analysis.utilization < 0.15,
            "matmul should badly underutilize: {}",
            analysis.utilization
        );
        let wdac = a.level_index("weight-dac").unwrap();
        assert_eq!(m.level(wdac).spatial_product(), 1, "q-window idle (Q=1)");
    }

    #[test]
    fn strided_layer_loses_column_window() {
        let alexnet = networks::alexnet();
        let conv1 = &alexnet.layers()[0]; // 11x11 stride 4
        let (a, m) = map(conv1);
        let wdac = a.level_index("weight-dac").unwrap();
        assert_eq!(m.level(wdac).spatial_product(), 1, "q-window idle");
        let analysis = analyze(&a, conv1, &m).unwrap();
        assert!(
            analysis.utilization < 0.45,
            "strided conv1 underutilizes: {}",
            analysis.utilization
        );
    }

    #[test]
    fn fc_layer_severely_underutilizes() {
        let fc = Layer::fully_connected("fc", 1, 4096, 4096);
        let (a, m) = map(&fc);
        let analysis = analyze(&a, &fc, &m).unwrap();
        assert!(
            analysis.utilization < 0.15,
            "fc should badly underutilize (~11%): {}",
            analysis.utilization
        );
    }

    #[test]
    fn unit_stride_conv_fills_the_fabric() {
        let layer = crate::reference_layer();
        let (a, m) = map(&layer);
        let analysis = analyze(&a, &layer, &m).unwrap();
        assert!((analysis.utilization - 1.0).abs() < 1e-9);
        assert_eq!(m.total_spatial_product(), a.peak_parallelism());
    }

    #[test]
    fn weights_fetched_once_per_batch_when_resident() {
        // ResNet block conv (fits in glb): plan A -> DRAM weight reads are
        // batch-independent.
        let layer = networks::resnet18().layers()[1].clone();
        let a = arch();
        let m1 = albireo_mapping(&a, &layer, 8, 3, 9, 3, (3, 3));
        let b = layer.clone().with_batch(16);
        let m16 = albireo_mapping(&a, &b, 8, 3, 9, 3, (3, 3));
        let a1 = analyze(&a, &layer, &m1).unwrap();
        let a16 = analyze(&a, &b, &m16).unwrap();
        let w1 = a1.level(0).reads[TensorKind::Weight];
        let w16 = a16.level(0).reads[TensorKind::Weight];
        assert!(
            (w16 - w1).abs() / w1 < 0.01,
            "total weight DRAM traffic independent of batch: {w1} vs {w16}"
        );
    }

    #[test]
    fn conversion_counts_match_reuse_factors() {
        // Fully-utilized reference layer: conversions per padded MAC are
        // 1/WR (weights), 1/IR (inputs), 1/(OR*kernel) (outputs).
        let layer = crate::reference_layer();
        let (a, m) = map(&layer);
        let analysis = analyze(&a, &layer, &m).unwrap();
        let padded = analysis.padded_macs as f64;
        let conv = |name: &str, t: TensorKind| {
            analysis.level(a.level_index(name).unwrap()).conversions[t] / padded
        };
        assert!((conv("weight-dac", TensorKind::Weight) - 1.0 / 3.0).abs() < 1e-9);
        // Inputs are shared across the IR=9 PCU lanes *and* across the 3x3
        // kernel window (one sample feeds 9 filter positions, minus the
        // window halo): for this layer the window sharing factor is
        // 9 * (8*75) / (10*77) ≈ 7.01, so conversions are 1/(9 * 7.01).
        let window_share = 9.0 * (8.0 * 75.0) / (10.0 * 77.0);
        let expected_input = 1.0 / (9.0 * window_share);
        assert!((conv("input-dac", TensorKind::Input) - expected_input).abs() < 1e-9);
        assert!((conv("input-mzm", TensorKind::Input) - expected_input).abs() < 1e-9);
        assert!((conv("output-adc", TensorKind::Output) - 1.0 / 27.0).abs() < 1e-9);
        assert!((conv("output-pd", TensorKind::Output) - 1.0 / 27.0).abs() < 1e-9);
    }

    #[test]
    fn vgg_large_layers_fall_back_to_tiled_plans() {
        // VGG fc6 weights (~103M elements) cannot sit in a 4 MiB glb; the
        // dataflow must still produce a mapping that analyzes cleanly.
        let fc6 = networks::vgg16()
            .layers()
            .iter()
            .find(|l| l.name() == "fc6")
            .unwrap()
            .clone();
        let (a, m) = map(&fc6);
        assert!(analyze(&a, &fc6, &m).is_ok());
    }
}
